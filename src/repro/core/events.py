"""Query events (Definition 3.2).

The paper assumes query events of the form ``t ∈ R`` — a low-complexity
Boolean test on the current database state.  :class:`TupleIn` implements
exactly that form; boolean combinations and a non-emptiness test are
provided as conservative extensions (they are still low-complexity
Boolean queries, which is all Definition 3.2 requires).
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, Sequence

from repro.errors import ReproError
from repro.relational.database import Database


class QueryEvent:
    """Base class of query events: a Boolean test on a database state."""

    def holds(self, db: Database) -> bool:
        """Decide the event on one database state."""
        raise NotImplementedError

    def __and__(self, other: "QueryEvent") -> "QueryEvent":
        return AndEvent(self, other)

    def __or__(self, other: "QueryEvent") -> "QueryEvent":
        return OrEvent(self, other)

    def __invert__(self) -> "QueryEvent":
        return NotEvent(self)

    def __call__(self, db: Database) -> bool:
        return self.holds(db)


class TupleIn(QueryEvent):
    """The paper's canonical event ``t ∈ R``.

    Examples
    --------
    >>> from repro.relational import Relation, Database
    >>> event = TupleIn("C", ("v",))
    >>> event.holds(Database({"C": Relation(("I",), [("v",)])}))
    True
    """

    def __init__(self, relation: str, row: Sequence[Any]):
        self.relation = relation
        self.row = tuple(row)

    def holds(self, db: Database) -> bool:
        return self.relation in db and self.row in db[self.relation]

    def __repr__(self) -> str:
        return f"{self.row!r} ∈ {self.relation}"


class ExpressionEvent(QueryEvent):
    """``result of a Boolean algebra query is non-empty``.

    Definition 3.2 allows any *low-complexity Boolean relational
    database query* as the event; this realises that generality: the
    event holds on a state iff the given **deterministic** algebra
    expression evaluates to a non-empty relation there.  (Typically the
    expression projects to zero columns, making it a genuine Boolean
    query: {()} = true, {} = false.)

    Examples
    --------
    >>> from repro.relational import Database, Relation, ValueEq, project, rel, select
    >>> event = ExpressionEvent(project(select(rel("C"), ValueEq("I", "v")), ))
    >>> event.holds(Database({"C": Relation(("I",), [("v",)])}))
    True
    """

    def __init__(self, expression):
        from repro.errors import AlgebraError

        if not expression.is_deterministic():
            raise AlgebraError(
                "query events must be deterministic Boolean queries; "
                "the expression contains repair-key"
            )
        self.expression = expression

    def holds(self, db: Database) -> bool:
        from repro.relational.algebra import evaluate

        return len(evaluate(self.expression, db)) > 0

    def __repr__(self) -> str:
        return f"{self.expression!r} ≠ ∅"


class RelationNonEmpty(QueryEvent):
    """``R ≠ ∅`` — true when the relation holds at least one tuple."""

    def __init__(self, relation: str):
        self.relation = relation

    def holds(self, db: Database) -> bool:
        return self.relation in db and len(db[self.relation]) > 0

    def __repr__(self) -> str:
        return f"{self.relation} ≠ ∅"


class AndEvent(QueryEvent):
    """Conjunction of two events."""

    def __init__(self, left: QueryEvent, right: QueryEvent):
        self.left = left
        self.right = right

    def holds(self, db: Database) -> bool:
        return self.left.holds(db) and self.right.holds(db)

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


class OrEvent(QueryEvent):
    """Disjunction of two events."""

    def __init__(self, left: QueryEvent, right: QueryEvent):
        self.left = left
        self.right = right

    def holds(self, db: Database) -> bool:
        return self.left.holds(db) or self.right.holds(db)

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


class NotEvent(QueryEvent):
    """Negation of an event."""

    def __init__(self, inner: QueryEvent):
        self.inner = inner

    def holds(self, db: Database) -> bool:
        return not self.inner.holds(db)

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


# ---------------------------------------------------------------------------
# Text form: "relation(value, ...)" plus and/or/not — shared by the
# CLI and the service
# ---------------------------------------------------------------------------

_EVENT_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\((.*)\)\s*$")
_RATIONAL_RE = re.compile(r"^[+-]?\d+/\d+$")
_NUMBER_RE = re.compile(r"^[+-]?\d+(\.\d+)?$")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def parse_event(text: str) -> QueryEvent:
    """Parse an event expression over ground atoms.

    An atom is ``relation(value, ...)``; atoms combine with ``and``,
    ``or``, ``not`` and parentheses (``not`` binds tightest, then
    ``and``, then ``or`` — the usual precedence), so compound events
    like ``C(b) and D(a)`` travel through the CLI and the service wire
    format, not just the Python API.

    Values parse like datalog constants: integers stay exact ints,
    decimals and ``p/q`` strings become :class:`fractions.Fraction`,
    ``'quoted strings'`` lose their quotes, and barewords stay strings.

    Examples
    --------
    >>> event = parse_event("c(w)")
    >>> event.relation, event.row
    ('c', ('w',))
    >>> parse_event("C(b) and not D(a)")
    (('b',) ∈ C ∧ ¬('a',) ∈ D)
    """
    tokens = _tokenize_event(text)
    event, position = _parse_or(tokens, 0, text)
    if position != len(tokens):
        raise ReproError(
            f"cannot parse event {text!r}: unexpected "
            f"{tokens[position][1]!r} after a complete event"
        )
    return event


def _parse_atom(text: str) -> TupleIn:
    match = _EVENT_RE.match(text)
    if match is None:  # pragma: no cover - the tokenizer pre-shapes atoms
        raise ReproError(
            f"cannot parse event {text!r}; expected relation(value, ...)"
        )
    relation, inner = match.groups()
    values: list[Any] = []
    if inner.strip():
        for raw in _split_event_arguments(inner):
            values.append(_parse_event_value(raw.strip()))
    return TupleIn(relation, tuple(values))


_Token = tuple[str, str]  # (kind, text); kinds: atom, and, or, not, (, )


def _tokenize_event(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in "()":
            tokens.append((char, char))
            index += 1
            continue
        match = _IDENT_RE.match(text, index)
        if match is None:
            raise ReproError(
                f"cannot parse event {text!r}; expected "
                "relation(value, ...), optionally combined with "
                "'and', 'or', 'not'"
            )
        word = match.group()
        if word in ("and", "or", "not"):
            # Reserved combinators, even directly before '('.
            tokens.append((word, word))
            index = match.end()
            continue
        rest = match.end()
        while rest < length and text[rest].isspace():
            rest += 1
        if rest < length and text[rest] == "(":
            # An atom: consume the balanced argument list (quotes may
            # hold parentheses).
            depth = 0
            in_quote = False
            end = rest
            while end < length:
                inner_char = text[end]
                if inner_char == "'":
                    in_quote = not in_quote
                elif not in_quote and inner_char == "(":
                    depth += 1
                elif not in_quote and inner_char == ")":
                    depth -= 1
                    if depth == 0:
                        break
                end += 1
            if depth != 0:
                raise ReproError(
                    f"cannot parse event {text!r}: unbalanced "
                    f"parentheses in atom starting at {word!r}"
                )
            tokens.append(("atom", text[index : end + 1]))
            index = end + 1
        else:
            raise ReproError(
                f"cannot parse event {text!r}: bare word {word!r}; "
                "expected relation(value, ...)"
            )
    if not tokens:
        raise ReproError("cannot parse an empty event")
    return tokens


def _parse_or(tokens: list[_Token], position: int, text: str
              ) -> tuple[QueryEvent, int]:
    event, position = _parse_and(tokens, position, text)
    while position < len(tokens) and tokens[position][0] == "or":
        right, position = _parse_and(tokens, position + 1, text)
        event = OrEvent(event, right)
    return event, position


def _parse_and(tokens: list[_Token], position: int, text: str
               ) -> tuple[QueryEvent, int]:
    event, position = _parse_factor(tokens, position, text)
    while position < len(tokens) and tokens[position][0] == "and":
        right, position = _parse_factor(tokens, position + 1, text)
        event = AndEvent(event, right)
    return event, position


def _parse_factor(tokens: list[_Token], position: int, text: str
                  ) -> tuple[QueryEvent, int]:
    if position >= len(tokens):
        raise ReproError(f"cannot parse event {text!r}: unexpected end")
    kind, token_text = tokens[position]
    if kind == "not":
        inner, position = _parse_factor(tokens, position + 1, text)
        return NotEvent(inner), position
    if kind == "(":
        event, position = _parse_or(tokens, position + 1, text)
        if position >= len(tokens) or tokens[position][0] != ")":
            raise ReproError(
                f"cannot parse event {text!r}: missing closing parenthesis"
            )
        return event, position + 1
    if kind == "atom":
        return _parse_atom(token_text), position + 1
    raise ReproError(
        f"cannot parse event {text!r}: unexpected {token_text!r}"
    )


def event_atoms(event: QueryEvent) -> list[TupleIn]:
    """The ``t ∈ R`` leaves of an event expression, left to right."""
    if isinstance(event, TupleIn):
        return [event]
    if isinstance(event, NotEvent):
        return event_atoms(event.inner)
    if isinstance(event, (AndEvent, OrEvent)):
        return event_atoms(event.left) + event_atoms(event.right)
    return []


def event_relations(event: QueryEvent) -> set[str]:
    """Every relation name an event expression reads."""
    if isinstance(event, (TupleIn, RelationNonEmpty)):
        return {event.relation}
    if isinstance(event, ExpressionEvent):
        from repro.analysis.graph import expression_references

        return {ref for ref, _pos, _prob in
                expression_references(event.expression)}
    if isinstance(event, NotEvent):
        return event_relations(event.inner)
    if isinstance(event, (AndEvent, OrEvent)):
        return event_relations(event.left) | event_relations(event.right)
    return set()


def _split_event_arguments(inner: str) -> list[str]:
    parts: list[str] = []
    in_quote = False
    current = ""
    for char in inner:
        if char == "'":
            in_quote = not in_quote
            current += char
        elif char == "," and not in_quote:
            parts.append(current)
            current = ""
        else:
            current += char
    parts.append(current)
    return parts


def _parse_event_value(raw: str) -> Any:
    if raw.startswith("'") and raw.endswith("'") and len(raw) >= 2:
        return raw[1:-1]
    if _RATIONAL_RE.match(raw):
        try:
            return Fraction(raw)
        except ZeroDivisionError as error:
            raise ReproError(
                f"invalid rational {raw!r} in event: zero denominator"
            ) from error
    if _NUMBER_RE.match(raw):
        return Fraction(raw) if "." in raw else int(raw)
    return raw
