"""Query events (Definition 3.2).

The paper assumes query events of the form ``t ∈ R`` — a low-complexity
Boolean test on the current database state.  :class:`TupleIn` implements
exactly that form; boolean combinations and a non-emptiness test are
provided as conservative extensions (they are still low-complexity
Boolean queries, which is all Definition 3.2 requires).
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, Sequence

from repro.errors import ReproError
from repro.relational.database import Database


class QueryEvent:
    """Base class of query events: a Boolean test on a database state."""

    def holds(self, db: Database) -> bool:
        """Decide the event on one database state."""
        raise NotImplementedError

    def __and__(self, other: "QueryEvent") -> "QueryEvent":
        return AndEvent(self, other)

    def __or__(self, other: "QueryEvent") -> "QueryEvent":
        return OrEvent(self, other)

    def __invert__(self) -> "QueryEvent":
        return NotEvent(self)

    def __call__(self, db: Database) -> bool:
        return self.holds(db)


class TupleIn(QueryEvent):
    """The paper's canonical event ``t ∈ R``.

    Examples
    --------
    >>> from repro.relational import Relation, Database
    >>> event = TupleIn("C", ("v",))
    >>> event.holds(Database({"C": Relation(("I",), [("v",)])}))
    True
    """

    def __init__(self, relation: str, row: Sequence[Any]):
        self.relation = relation
        self.row = tuple(row)

    def holds(self, db: Database) -> bool:
        return self.relation in db and self.row in db[self.relation]

    def __repr__(self) -> str:
        return f"{self.row!r} ∈ {self.relation}"


class ExpressionEvent(QueryEvent):
    """``result of a Boolean algebra query is non-empty``.

    Definition 3.2 allows any *low-complexity Boolean relational
    database query* as the event; this realises that generality: the
    event holds on a state iff the given **deterministic** algebra
    expression evaluates to a non-empty relation there.  (Typically the
    expression projects to zero columns, making it a genuine Boolean
    query: {()} = true, {} = false.)

    Examples
    --------
    >>> from repro.relational import Database, Relation, ValueEq, project, rel, select
    >>> event = ExpressionEvent(project(select(rel("C"), ValueEq("I", "v")), ))
    >>> event.holds(Database({"C": Relation(("I",), [("v",)])}))
    True
    """

    def __init__(self, expression):
        from repro.errors import AlgebraError

        if not expression.is_deterministic():
            raise AlgebraError(
                "query events must be deterministic Boolean queries; "
                "the expression contains repair-key"
            )
        self.expression = expression

    def holds(self, db: Database) -> bool:
        from repro.relational.algebra import evaluate

        return len(evaluate(self.expression, db)) > 0

    def __repr__(self) -> str:
        return f"{self.expression!r} ≠ ∅"


class RelationNonEmpty(QueryEvent):
    """``R ≠ ∅`` — true when the relation holds at least one tuple."""

    def __init__(self, relation: str):
        self.relation = relation

    def holds(self, db: Database) -> bool:
        return self.relation in db and len(db[self.relation]) > 0

    def __repr__(self) -> str:
        return f"{self.relation} ≠ ∅"


class AndEvent(QueryEvent):
    """Conjunction of two events."""

    def __init__(self, left: QueryEvent, right: QueryEvent):
        self.left = left
        self.right = right

    def holds(self, db: Database) -> bool:
        return self.left.holds(db) and self.right.holds(db)

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


class OrEvent(QueryEvent):
    """Disjunction of two events."""

    def __init__(self, left: QueryEvent, right: QueryEvent):
        self.left = left
        self.right = right

    def holds(self, db: Database) -> bool:
        return self.left.holds(db) or self.right.holds(db)

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


class NotEvent(QueryEvent):
    """Negation of an event."""

    def __init__(self, inner: QueryEvent):
        self.inner = inner

    def holds(self, db: Database) -> bool:
        return not self.inner.holds(db)

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


# ---------------------------------------------------------------------------
# Text form: "relation(value, ...)" — shared by the CLI and the service
# ---------------------------------------------------------------------------

_EVENT_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\((.*)\)\s*$")
_RATIONAL_RE = re.compile(r"^[+-]?\d+/\d+$")
_NUMBER_RE = re.compile(r"^[+-]?\d+(\.\d+)?$")


def parse_event(text: str) -> TupleIn:
    """Parse a ground event atom like ``c(w, 3, '1/2 beer')``.

    Values parse like datalog constants: integers stay exact ints,
    decimals and ``p/q`` strings become :class:`fractions.Fraction`,
    ``'quoted strings'`` lose their quotes, and barewords stay strings.

    Examples
    --------
    >>> parse_event("c(w)").relation, parse_event("c(w)").row
    ('c', ('w',))
    """
    match = _EVENT_RE.match(text)
    if match is None:
        raise ReproError(
            f"cannot parse event {text!r}; expected relation(value, ...)"
        )
    relation, inner = match.groups()
    values: list[Any] = []
    if inner.strip():
        for raw in _split_event_arguments(inner):
            values.append(_parse_event_value(raw.strip()))
    return TupleIn(relation, tuple(values))


def _split_event_arguments(inner: str) -> list[str]:
    parts: list[str] = []
    in_quote = False
    current = ""
    for char in inner:
        if char == "'":
            in_quote = not in_quote
            current += char
        elif char == "," and not in_quote:
            parts.append(current)
            current = ""
        else:
            current += char
    parts.append(current)
    return parts


def _parse_event_value(raw: str) -> Any:
    if raw.startswith("'") and raw.endswith("'") and len(raw) >= 2:
        return raw[1:-1]
    if _RATIONAL_RE.match(raw):
        try:
            return Fraction(raw)
        except ZeroDivisionError as error:
            raise ReproError(
                f"invalid rational {raw!r} in event: zero denominator"
            ) from error
    if _NUMBER_RE.match(raw):
        return Fraction(raw) if "." in raw else int(raw)
    return raw
