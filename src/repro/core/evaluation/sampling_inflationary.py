"""Randomized absolute approximation for inflationary queries (Thm 4.3).

Each sample (i) fixes the pc-table valuation once (Section 3.2
semantics), then (ii) repeatedly applies the transition kernel, making
one probabilistic choice per repair-key application, until a fixpoint is
reached, and (iii) reports whether the query event holds there.  The
estimate is the fraction of satisfying samples; the Chernoff bound gives
the sample count ``m ≥ ln(1/δ) / (4ε²)`` for an (ε, δ) guarantee.

Fixpoint detection: a state is a fixpoint iff the support of Q(state) is
{state}.  A sampled step that returns the same state is *not* proof of a
fixpoint (Example 3.6), so when that happens the evaluator verifies the
state by exact enumeration of its one transition (cached per state).
For datalog-style kernels built from ``R ∪ f(C − C_old)`` patterns the
verification is cheap — at the fixpoint all repair-key inputs are empty,
so the enumeration has a single world.  An optional ``stall_threshold``
mode replaces verification with "k consecutive unchanged steps", the
cheap heuristic; it can terminate early on adversarial kernels and is
off by default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, TypeVar

from repro.core.evaluation.results import SamplingResult
from repro.core.queries import InflationaryQuery
from repro.errors import EvaluationError
from repro.obs.trace import phase_scope, tracer_of
from repro.probability.chernoff import hoeffding_sample_count, paper_sample_count
from repro.probability.distribution import Distribution
from repro.probability.rng import RngLike, make_rng
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.perf.cache import TransitionCache
    from repro.perf.parallel import ParallelConfig
    from repro.runtime.context import RunContext

S = TypeVar("S", bound=Hashable)

#: Default hard limit on kernel applications within a single sample.
DEFAULT_MAX_STEPS = 100_000


def sample_fixpoint(
    step: Callable[[S], S],
    is_fixpoint: Callable[[S], bool],
    initial: S,
    max_steps: int = DEFAULT_MAX_STEPS,
    stall_threshold: int | None = None,
    context: "RunContext | None" = None,
) -> tuple[S, int]:
    """Run one probabilistic computation to its fixpoint.

    ``step`` draws one successor; ``is_fixpoint`` is the (possibly
    expensive) exact check, consulted only when a step leaves the state
    unchanged.  With ``stall_threshold=k`` the exact check is replaced
    by "k consecutive unchanged steps".  Returns ``(fixpoint, steps)``.
    """
    state = initial
    stalled = 0
    for steps in range(max_steps):
        if context is not None:
            context.tick_steps()
        successor = step(state)
        if successor == state:
            if stall_threshold is None:
                if is_fixpoint(state):
                    return state, steps
                stalled = 0
            else:
                stalled += 1
                if stalled >= stall_threshold:
                    return state, steps
        else:
            stalled = 0
        state = successor
    raise EvaluationError(
        f"no fixpoint reached within {max_steps} kernel applications; "
        "is the query really inflationary and terminating?"
    )


def evaluate_inflationary_sampling(
    query: InflationaryQuery,
    initial: Database,
    epsilon: float = 0.05,
    delta: float = 0.05,
    samples: int | None = None,
    rng: RngLike = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    stall_threshold: int | None = None,
    use_paper_bound: bool = True,
    context: "RunContext | None" = None,
    cache_size: int | None = None,
    parallel: "ParallelConfig | None" = None,
    cache: "TransitionCache | None" = None,
    backend: str | None = None,
) -> SamplingResult:
    """The Theorem 4.3 sampler: a randomized absolute (ε, δ)-approximation
    running in time polynomial in the database size.

    Parameters
    ----------
    samples:
        Override the planned sample count (``epsilon``/``delta`` are
        then recorded as ``None`` — the guarantee is whatever the
        Hoeffding bound gives for that count).
    use_paper_bound:
        Plan samples with the paper's ``ln(1/δ)/(4ε²)`` constant
        (default) or the tight two-sided Hoeffding constant.
    stall_threshold:
        See :func:`sample_fixpoint`.
    cache_size:
        Bound the fixpoint-verification memo with an LRU
        :class:`~repro.perf.cache.TransitionCache` of this size (and
        surface hit/miss counters on the run report).  Sampling steps
        stay on the polynomial ``sample_transition`` path, so the RNG
        stream — and hence the estimate for a given seed — is
        unchanged; only the exact one-state verification rows are
        memoized.
    parallel:
        A :class:`~repro.perf.parallel.ParallelConfig`; ``workers=N``
        splits the planned trials over a process pool with
        deterministic per-worker seeds (``workers=1`` keeps this
        sequential path bit-identically), pro-rated budgets, and
        cancellation propagation.
    cache:
        A pre-built fixpoint-verification memo shared across runs (the
        :class:`~repro.service.EngineSession` pattern); overrides
        ``cache_size``.  It must have been built on the **pc-free**
        kernel (``kernel.without_pc_tables().cached()``), because the
        fixpoint check enumerates the fixed kernel.  The estimate for a
        given seed is unchanged either way (sampling stays on
        ``sample_transition``).  Ignored with ``parallel`` workers
        (caches cannot cross process boundaries; workers get private
        caches of the same capacity).
    backend:
        ``"frozenset"`` (default) or ``"columnar"`` — see
        :mod:`repro.core.evaluation.backend`.  Estimates are
        bit-identical for a fixed seed; pc-table programs fall back to
        the frozenset path with a recorded reason (valuations are
        instantiated per sample on frozenset relations).
    """
    from repro.core.evaluation.backend import resolve_backend

    query.kernel.check_schema(initial)
    generator = make_rng(rng)
    effective_backend = "frozenset"
    if parallel is None or not parallel.enabled:
        query, initial, effective_backend = resolve_backend(
            query, initial, backend, context=context, cache=cache
        )
    kernel = query.kernel
    fixed_kernel = kernel.without_pc_tables()

    if samples is None:
        planner = paper_sample_count if use_paper_bound else hoeffding_sample_count
        planned = planner(epsilon, delta)
        recorded_epsilon, recorded_delta = epsilon, delta
    else:
        planned = samples
        recorded_epsilon = recorded_delta = None

    if parallel is not None and parallel.enabled and planned > 1:
        if cache is not None:
            cache_size = cache.maxsize
            cache = None
            if context is not None:
                context.record_event(
                    "shared transition cache cannot cross process "
                    "boundaries: workers use private caches"
                )
        return _inflationary_sampling_parallel(
            query,
            initial,
            planned=planned,
            epsilon=recorded_epsilon,
            delta=recorded_delta,
            generator=generator,
            max_steps=max_steps,
            stall_threshold=stall_threshold,
            cache_size=cache_size,
            parallel=parallel,
            context=context,
            backend=backend,
        )

    row_cache = cache
    if row_cache is None and cache_size is not None:
        from repro.perf.cache import TransitionCache

        # The memo must enumerate the *fixed* kernel (pc-table choices
        # are made once per sample, outside the fixpoint iteration).
        row_cache = TransitionCache(fixed_kernel, maxsize=cache_size)
    if row_cache is not None and context is not None:
        context.attach_cache(row_cache)

    fixpoint_cache: dict[Database, bool] = {}

    def is_fixpoint(state: Database) -> bool:
        cached = fixpoint_cache.get(state)
        if cached is None:
            row = (
                row_cache.transition(state)
                if row_cache is not None
                else fixed_kernel.transition(state)
            )
            cached = row == Distribution.point(state)
            fixpoint_cache[state] = cached
        return cached

    def one_sample() -> tuple[bool, int]:
        world = initial
        if kernel.pc_tables is not None:
            valuation = kernel.pc_tables.sample_valuation(generator)
            world = initial.with_relations(
                {
                    name: table.instantiate(valuation)
                    for name, table in kernel.pc_tables.tables.items()
                }
            )
        fixpoint, steps = sample_fixpoint(
            lambda state: fixed_kernel.sample_transition(state, generator),
            is_fixpoint,
            world,
            max_steps=max_steps,
            stall_threshold=stall_threshold,
            context=context,
        )
        return query.event.holds(fixpoint), steps

    tracer = tracer_of(context)
    positive = 0
    total_steps = 0
    with phase_scope(context, "sample", planned=planned):
        for index in range(1, planned + 1):
            satisfied, steps = one_sample()
            positive += satisfied
            total_steps += steps
            if tracer.enabled:
                tracer.event(
                    "sample", index=index, hit=bool(satisfied),
                    positive=positive, steps=steps,
                )

    details: dict = {
        "mean_steps_per_sample": total_steps / planned,
        "fixpoint_cache_size": len(fixpoint_cache),
    }
    if effective_backend != "frozenset":
        details["backend"] = effective_backend
    if row_cache is not None:
        details["cache"] = row_cache.stats()
    return SamplingResult(
        estimate=positive / planned,
        samples=planned,
        positive=positive,
        epsilon=recorded_epsilon,
        delta=recorded_delta,
        method="thm-4.3",
        details=details,
    )


def _inflationary_sampling_parallel(
    query: InflationaryQuery,
    initial: Database,
    planned: int,
    epsilon: float | None,
    delta: float | None,
    generator,
    max_steps: int,
    stall_threshold: int | None,
    cache_size: int | None,
    parallel: "ParallelConfig",
    context: "RunContext | None",
    backend: str | None = None,
) -> SamplingResult:
    """Theorem 4.3 trials over a worker pool (seed-stable, budgeted)."""
    from repro.perf.parallel import (
        _run_inflationary_trials,
        merge_tallies,
        prorated_budgets,
        run_worker_pool,
        split_trials,
        worker_seeds,
    )

    workers = min(parallel.workers, planned)
    seeds = worker_seeds(generator, workers)
    counts = split_trials(planned, workers)
    budgets = prorated_budgets(context, workers)
    profiled = bool(tracer_of(context).enabled)
    tasks = [
        {
            "query": query,
            "initial": initial,
            "samples": count,
            "seed": seed,
            "max_steps": max_steps,
            "stall_threshold": stall_threshold,
            "cache_size": cache_size,
            "budget": budget,
            "backend": backend,
            "profile": profiled,
        }
        for count, seed, budget in zip(counts, seeds, budgets)
        if count > 0
    ]
    with phase_scope(context, "sample", planned=planned, workers=workers):
        tallies = run_worker_pool(
            _run_inflationary_trials, tasks, parallel, context
        )
        merged = merge_tallies(tallies)
    details: dict = {
        "mean_steps_per_sample": merged.get("total_steps", 0) / planned,
        "workers": workers,
    }
    if context is not None:
        context.absorb_usage(steps=merged["steps"])
        if merged.get("cache"):
            context.record_cache_stats(merged["cache"])
    if merged.get("cache"):
        details["cache"] = merged["cache"]
    return SamplingResult(
        estimate=merged["positive"] / planned,
        samples=planned,
        positive=merged["positive"],
        epsilon=epsilon,
        delta=delta,
        method="thm-4.3",
        details=details,
    )
