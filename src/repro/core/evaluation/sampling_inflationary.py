"""Randomized absolute approximation for inflationary queries (Thm 4.3).

Each sample (i) fixes the pc-table valuation once (Section 3.2
semantics), then (ii) repeatedly applies the transition kernel, making
one probabilistic choice per repair-key application, until a fixpoint is
reached, and (iii) reports whether the query event holds there.  The
estimate is the fraction of satisfying samples; the Chernoff bound gives
the sample count ``m ≥ ln(1/δ) / (4ε²)`` for an (ε, δ) guarantee.

Fixpoint detection: a state is a fixpoint iff the support of Q(state) is
{state}.  A sampled step that returns the same state is *not* proof of a
fixpoint (Example 3.6), so when that happens the evaluator verifies the
state by exact enumeration of its one transition (cached per state).
For datalog-style kernels built from ``R ∪ f(C − C_old)`` patterns the
verification is cheap — at the fixpoint all repair-key inputs are empty,
so the enumeration has a single world.  An optional ``stall_threshold``
mode replaces verification with "k consecutive unchanged steps", the
cheap heuristic; it can terminate early on adversarial kernels and is
off by default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, TypeVar

from repro.core.evaluation.results import SamplingResult
from repro.core.queries import InflationaryQuery
from repro.errors import EvaluationError
from repro.probability.chernoff import hoeffding_sample_count, paper_sample_count
from repro.probability.distribution import Distribution
from repro.probability.rng import RngLike, make_rng
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext

S = TypeVar("S", bound=Hashable)

#: Default hard limit on kernel applications within a single sample.
DEFAULT_MAX_STEPS = 100_000


def sample_fixpoint(
    step: Callable[[S], S],
    is_fixpoint: Callable[[S], bool],
    initial: S,
    max_steps: int = DEFAULT_MAX_STEPS,
    stall_threshold: int | None = None,
    context: "RunContext | None" = None,
) -> tuple[S, int]:
    """Run one probabilistic computation to its fixpoint.

    ``step`` draws one successor; ``is_fixpoint`` is the (possibly
    expensive) exact check, consulted only when a step leaves the state
    unchanged.  With ``stall_threshold=k`` the exact check is replaced
    by "k consecutive unchanged steps".  Returns ``(fixpoint, steps)``.
    """
    state = initial
    stalled = 0
    for steps in range(max_steps):
        if context is not None:
            context.tick_steps()
        successor = step(state)
        if successor == state:
            if stall_threshold is None:
                if is_fixpoint(state):
                    return state, steps
                stalled = 0
            else:
                stalled += 1
                if stalled >= stall_threshold:
                    return state, steps
        else:
            stalled = 0
        state = successor
    raise EvaluationError(
        f"no fixpoint reached within {max_steps} kernel applications; "
        "is the query really inflationary and terminating?"
    )


def evaluate_inflationary_sampling(
    query: InflationaryQuery,
    initial: Database,
    epsilon: float = 0.05,
    delta: float = 0.05,
    samples: int | None = None,
    rng: RngLike = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    stall_threshold: int | None = None,
    use_paper_bound: bool = True,
    context: "RunContext | None" = None,
) -> SamplingResult:
    """The Theorem 4.3 sampler: a randomized absolute (ε, δ)-approximation
    running in time polynomial in the database size.

    Parameters
    ----------
    samples:
        Override the planned sample count (``epsilon``/``delta`` are
        then recorded as ``None`` — the guarantee is whatever the
        Hoeffding bound gives for that count).
    use_paper_bound:
        Plan samples with the paper's ``ln(1/δ)/(4ε²)`` constant
        (default) or the tight two-sided Hoeffding constant.
    stall_threshold:
        See :func:`sample_fixpoint`.
    """
    kernel = query.kernel
    kernel.check_schema(initial)
    fixed_kernel = kernel.without_pc_tables()
    generator = make_rng(rng)

    if samples is None:
        planner = paper_sample_count if use_paper_bound else hoeffding_sample_count
        planned = planner(epsilon, delta)
        recorded_epsilon, recorded_delta = epsilon, delta
    else:
        planned = samples
        recorded_epsilon = recorded_delta = None

    fixpoint_cache: dict[Database, bool] = {}

    def is_fixpoint(state: Database) -> bool:
        cached = fixpoint_cache.get(state)
        if cached is None:
            cached = fixed_kernel.transition(state) == Distribution.point(state)
            fixpoint_cache[state] = cached
        return cached

    def one_sample() -> tuple[bool, int]:
        world = initial
        if kernel.pc_tables is not None:
            valuation = kernel.pc_tables.sample_valuation(generator)
            world = initial.with_relations(
                {
                    name: table.instantiate(valuation)
                    for name, table in kernel.pc_tables.tables.items()
                }
            )
        fixpoint, steps = sample_fixpoint(
            lambda state: fixed_kernel.sample_transition(state, generator),
            is_fixpoint,
            world,
            max_steps=max_steps,
            stall_threshold=stall_threshold,
            context=context,
        )
        return query.event.holds(fixpoint), steps

    positive = 0
    total_steps = 0
    for _ in range(planned):
        satisfied, steps = one_sample()
        positive += satisfied
        total_steps += steps

    return SamplingResult(
        estimate=positive / planned,
        samples=planned,
        positive=positive,
        epsilon=recorded_epsilon,
        delta=recorded_delta,
        method="thm-4.3",
        details={
            "mean_steps_per_sample": total_steps / planned,
            "fixpoint_cache_size": len(fixpoint_cache),
        },
    )
