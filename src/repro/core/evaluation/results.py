"""Result types returned by the query evaluators.

Exact evaluators return :class:`ExactResult` with an exact rational
probability; sampling evaluators return :class:`SamplingResult` with the
estimate and the (ε, δ) guarantee it was planned for.  Both carry a
``details`` mapping with algorithm-specific diagnostics (state counts,
mixing times, per-world breakdowns) consumed by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Mapping


@dataclass(frozen=True)
class ExactResult:
    """An exactly computed query probability.

    Attributes
    ----------
    probability:
        The query result, as an exact rational.
    states_explored:
        Number of distinct states the algorithm expanded (computation
        tree states for inflationary queries, Markov-chain states for
        forever-queries).
    method:
        Which algorithm produced the result (e.g. ``"prop-4.4"``).
    details:
        Extra diagnostics (chain classification, world counts, ...).
    """

    probability: Fraction
    states_explored: int
    method: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError(f"probability {self.probability} outside [0, 1]")


@dataclass(frozen=True)
class SamplingResult:
    """A Monte-Carlo estimate of a query probability.

    Attributes
    ----------
    estimate:
        The empirical probability (successes / samples).
    samples:
        Number of independent samples drawn.
    positive:
        Number of samples on which the event held.
    epsilon / delta:
        The additive accuracy and failure probability the sample count
        was planned for (``None`` when the caller fixed ``samples``
        directly).
    method:
        Which algorithm produced the result (e.g. ``"thm-4.3"``).
    details:
        Extra diagnostics (burn-in, mixing time, steps per sample, ...).
    """

    estimate: float
    samples: int
    positive: int
    epsilon: float | None
    delta: float | None
    method: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError("a sampling result needs at least one sample")
        if not 0 <= self.positive <= self.samples:
            raise ValueError("positive count outside [0, samples]")
