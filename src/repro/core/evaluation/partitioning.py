"""The Section 5.1 partitioning optimisation.

Large queries often consist of independent parts: the derivation of one
tuple never changes the probability of deriving another.  The paper's
pre-processing discovers this independence with provenance, splits the
database into dependency classes, evaluates the query on each class
separately, and recombines:

    Pr(event) = 1 − Π_classes Pr(event does not hold | class alone).

Each class's Markov chain is over a fragment of the database, so its
state space is roughly the |classes|-th root of the joint one — an
exponential saving when the work genuinely decomposes (benchmark A1).

pc-tables participate: c-table entries sharing a random variable are
mutually dependent, and each class keeps only the variables its entries
mention.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING

from repro.core.chain_builder import DEFAULT_MAX_STATES
from repro.core.evaluation.exact_noninflationary import evaluate_forever_exact
from repro.core.evaluation.provenance import (
    TupleId,
    evaluate_with_provenance,
    initial_provenance,
)
from repro.core.evaluation.results import ExactResult
from repro.core.queries import ForeverQuery
from repro.ctables.pctable import CTable, PCDatabase
from repro.errors import EvaluationError
from repro.relational.database import Database
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext

#: Safety cap on the inflationary provenance iteration.
DEFAULT_MAX_PROVENANCE_ITERATIONS = 10_000


class _UnionFind:
    """Union-find over hashable items, creating singletons on demand."""

    def __init__(self) -> None:
        self._parent: dict[TupleId, TupleId] = {}

    def find(self, item: TupleId) -> TupleId:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, left: TupleId, right: TupleId) -> None:
        self._parent[self.find(left)] = self.find(right)

    def classes(self) -> list[frozenset[TupleId]]:
        buckets: dict[TupleId, set[TupleId]] = {}
        for item in self._parent:
            buckets.setdefault(self.find(item), set()).add(item)
        return [frozenset(members) for members in buckets.values()]


def _pc_tuple_ids(pcdb: PCDatabase) -> tuple[dict[str, Relation], _UnionFind]:
    """All-candidate relations for the pc-tables plus variable couplings."""
    relations: dict[str, Relation] = {}
    uf = _UnionFind()
    for name, table in pcdb.tables.items():
        relations[name] = Relation(table.columns, [row for row, _cond in table.entries])
        by_variable: dict[str, TupleId] = {}
        for row, cond in table.entries:
            tid: TupleId = (name, row)
            uf.find(tid)
            for variable in cond.variables():
                if variable in by_variable:
                    uf.union(tid, by_variable[variable])
                else:
                    by_variable[variable] = tid
    return relations, uf


def compute_partition(
    query: ForeverQuery,
    initial: Database,
    max_iterations: int = DEFAULT_MAX_PROVENANCE_ITERATIONS,
) -> list[frozenset[TupleId]]:
    """The dependency classes of the base tuples (Section 5.1).

    Runs the kernel inflationarily with provenance (repair-key keeps all
    candidates), to a fixpoint; every identifier set that labels some
    derivable tuple couples its members into one class.  Overlapping
    sets are merged (union-find), yielding a genuine partition — a
    conservative refinement of the paper's "maximal identifier sets".
    """
    kernel = query.kernel
    uf = _UnionFind()

    state = initial
    if kernel.pc_tables is not None:
        pc_relations, pc_uf = _pc_tuple_ids(kernel.pc_tables)
        uf = pc_uf
        state = state.with_relations(pc_relations)
    kernel.check_schema(state)

    provenance = initial_provenance(state)
    for tuple_ids in provenance.values():
        for ids in tuple_ids.values():
            for tid in ids:
                uf.find(tid)

    def couple(ids: frozenset[TupleId]) -> None:
        ids_list = sorted(ids)
        for other in ids_list[1:]:
            uf.union(ids_list[0], other)

    for _ in range(max_iterations):
        changed = False
        updates: dict[str, Relation] = {}
        for name in sorted(kernel.queries):
            result, result_prov = evaluate_with_provenance(
                kernel.queries[name], state, provenance
            )
            old = state[name]
            grown = old.union(result) if old.columns == result.columns else result
            updates[name] = grown
            target = provenance.setdefault(name, {})
            for row, ids in result_prov.items():
                previous = target.get(row)
                if previous is None:
                    target[row] = ids
                    changed = True
                elif not ids <= previous:
                    # A re-derivation from other tuples: the tuple's
                    # presence couples both derivations' sources.
                    target[row] = previous | ids
                    changed = True
                couple(target[row])
        new_state = state.with_relations(updates)
        if not changed and new_state == state:
            break
        state = new_state
    else:
        raise EvaluationError(
            f"provenance iteration did not reach a fixpoint within "
            f"{max_iterations} rounds"
        )

    return uf.classes()


def _restrict_database(
    initial: Database, keep: frozenset[TupleId], pc_names: frozenset[str]
) -> Database:
    restricted = {}
    for name in initial.names():
        relation = initial[name]
        if name in pc_names:
            # pc relations are re-instantiated by the kernel; start empty.
            restricted[name] = Relation.empty(relation.columns)
        else:
            rows = [row for row in relation if (name, row) in keep]
            restricted[name] = Relation(relation.columns, rows)
    return Database(restricted)


def _restrict_pc(pcdb: PCDatabase, keep: frozenset[TupleId]) -> PCDatabase | None:
    tables = {}
    variables_used: set[str] = set()
    for name, table in pcdb.tables.items():
        entries = [
            (row, cond) for row, cond in table.entries if (name, row) in keep
        ]
        tables[name] = CTable(table.columns, entries)
        for _row, cond in entries:
            variables_used |= cond.variables()
    variables = {v: pcdb.variables[v] for v in sorted(variables_used)}
    return PCDatabase(tables, variables)


def evaluate_forever_partitioned(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
) -> ExactResult:
    """Exact forever-query evaluation through the Section 5.1 partition.

    Evaluates the query on each dependency class alone and combines the
    per-class miss probabilities multiplicatively.  Agrees exactly with
    :func:`~repro.core.evaluation.exact_noninflationary.evaluate_forever_exact`
    (benchmark A1 verifies this) while exploring the *sum* rather than
    the *product* of the per-class state spaces.
    """
    from repro.core.interpretation import Interpretation

    kernel = query.kernel
    classes = compute_partition(query, initial)
    pc_names = frozenset(kernel.pc_relation_names())

    miss = Fraction(1)
    total_states = 0
    class_details = []
    for dependency_class in classes:
        restricted_db = _restrict_database(initial, dependency_class, pc_names)
        if kernel.pc_tables is not None:
            restricted_kernel = Interpretation(
                kernel.queries, pc_tables=_restrict_pc(kernel.pc_tables, dependency_class)
            )
            # Seed the pc relations with one instantiation so schemas check.
            pc = restricted_kernel.pc_tables
            seed = {
                name: table.instantiate(
                    {v: next(iter(pc.variables[v])) for v in table.variables()}
                )
                for name, table in pc.tables.items()
            }
            restricted_db = restricted_db.with_relations(seed)
        else:
            restricted_kernel = kernel
        restricted_query = ForeverQuery(restricted_kernel, query.event)
        result = evaluate_forever_exact(
            restricted_query, restricted_db, max_states=max_states, context=context
        )
        miss *= 1 - result.probability
        total_states += result.states_explored
        class_details.append(
            {"class_size": len(dependency_class), "states": result.states_explored}
        )

    return ExactResult(
        probability=1 - miss,
        states_explored=total_states,
        method="sec-5.1-partitioned",
        details={"classes": len(classes), "per_class": class_details},
    )
