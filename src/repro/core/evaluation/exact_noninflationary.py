"""Exact evaluation of non-inflationary queries (Prop 5.4 / Thm 5.5).

The kernel and the initial database induce a finite Markov chain over
database states (Section 3.1).  This evaluator materialises the
reachable chain exactly, then:

* if the chain is irreducible (hence, being finite, positively
  recurrent), computes the unique stationary distribution by exact
  Gaussian elimination and sums the weights of the event states —
  Proposition 5.4;
* otherwise computes the SCC condensation, the exact absorption
  probability of each leaf component, and the per-leaf stationary
  distribution — Theorem 5.5 (see :mod:`repro.markov.absorption` for
  the path-enumeration → linear-system substitution note).

The returned probability is the paper's Definition 3.2 Cesàro limit
exactly, periodic chains included.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.chain_builder import DEFAULT_MAX_STATES, build_state_chain
from repro.core.evaluation.results import ExactResult
from repro.core.queries import ForeverQuery
from repro.markov.absorption import long_run_event_probability
from repro.markov.analysis import classify
from repro.obs.trace import phase_scope, tracer_of
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.perf.cache import TransitionCache
    from repro.runtime.context import RunContext


def evaluate_forever_exact(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
    cache: "TransitionCache | None" = None,
    backend: str | None = None,
) -> ExactResult:
    """Exact result of a forever-query.

    ``backend="columnar"`` builds the chain over interned columnar
    states (see :mod:`repro.core.evaluation.backend`); the probability
    is an exact :class:`~fractions.Fraction` either way and identical
    between backends.

    Raises :class:`~repro.errors.StateSpaceLimitExceeded` when the
    reachable chain outgrows ``max_states`` (it can be exponential in
    the database size); fall back to
    :func:`repro.core.evaluation.sampling_noninflationary.evaluate_forever_mcmc`
    in that case.

    ``cache`` (a :class:`~repro.perf.cache.TransitionCache` built on
    the same kernel) memoizes transition rows across chain builds, so a
    warm cache — e.g. the one a long-lived
    :class:`~repro.service.EngineSession` keeps — skips the algebra
    evaluation for every remembered state.

    Examples
    --------
    >>> from repro.relational import Relation, rel, repair_key, project, rename, join
    >>> from repro.core.interpretation import Interpretation
    >>> from repro.core.events import TupleIn
    >>> db = Database({
    ...     "C": Relation(("I",), [("a",)]),
    ...     "E": Relation(("I", "J", "P"), [("a", "b", 1), ("b", "a", 1)]),
    ... })
    >>> walk = rename(project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I")
    >>> q = ForeverQuery(Interpretation({"C": walk}), TupleIn("C", ("b",)))
    >>> evaluate_forever_exact(q, db).probability
    Fraction(1, 2)
    """
    from repro.core.evaluation.backend import resolve_backend

    query, initial, effective_backend = resolve_backend(
        query, initial, backend, context=context, cache=cache
    )
    with phase_scope(context, "chain-build") as scope:
        chain = build_state_chain(
            query.kernel, initial, max_states=max_states, context=context,
            cache=cache,
        )
        scope.annotate(states=chain.size)
    if context is not None:
        context.check()
    with phase_scope(context, "solve", states=chain.size):
        probability = long_run_event_probability(
            chain, initial, query.event.holds, tracer=tracer_of(context)
        )
        structure = classify(chain)
    method = "prop-5.4" if structure["irreducible"] else "thm-5.5"
    if effective_backend != "frozenset":
        structure = {**structure, "backend": effective_backend}
    return ExactResult(
        probability=probability,
        states_explored=chain.size,
        method=method,
        details=structure,
    )
