"""Query-evaluation algorithms (Sections 4 and 5 of the paper)."""

from repro.core.evaluation.exact_inflationary import (
    absorption_event_probability,
    evaluate_inflationary_exact,
)
from repro.core.evaluation.exact_noninflationary import evaluate_forever_exact
from repro.core.evaluation.lumped import evaluate_forever_lumped
from repro.core.evaluation.numeric_noninflationary import (
    NumericResult,
    evaluate_forever_numeric,
)
from repro.core.evaluation.passage import (
    event_expected_hitting_time,
    event_hitting_probability,
    event_hitting_time_distribution,
    forever_state_distribution,
    inflationary_fixpoint_distribution,
)
from repro.core.evaluation.partitioning import (
    compute_partition,
    evaluate_forever_partitioned,
)
from repro.core.evaluation.provenance import (
    evaluate_with_provenance,
    initial_provenance,
)
from repro.core.evaluation.results import ExactResult, SamplingResult
from repro.core.evaluation.series import (
    event_occupancy_series,
    event_probability_series,
    query_pc_database,
)
from repro.core.evaluation.sampling_inflationary import (
    evaluate_inflationary_sampling,
    sample_fixpoint,
)
from repro.core.evaluation.sampling_noninflationary import (
    adaptive_burn_in,
    computed_burn_in,
    evaluate_forever_mcmc,
)

__all__ = [
    "ExactResult",
    "NumericResult",
    "SamplingResult",
    "absorption_event_probability",
    "adaptive_burn_in",
    "compute_partition",
    "computed_burn_in",
    "evaluate_forever_exact",
    "evaluate_forever_lumped",
    "evaluate_forever_mcmc",
    "evaluate_forever_numeric",
    "evaluate_forever_partitioned",
    "evaluate_inflationary_exact",
    "evaluate_inflationary_sampling",
    "evaluate_with_provenance",
    "event_expected_hitting_time",
    "event_hitting_probability",
    "event_hitting_time_distribution",
    "event_occupancy_series",
    "event_probability_series",
    "forever_state_distribution",
    "inflationary_fixpoint_distribution",
    "initial_provenance",
    "query_pc_database",
    "sample_fixpoint",
]
