"""Forever-query evaluation through state-space lumping (optimization).

Builds the database-state chain, computes the coarsest strong lumping
that respects the query event (and the start state), and evaluates the
long-run probability on the quotient — exactly the same answer as
:func:`~repro.core.evaluation.exact_noninflationary.evaluate_forever_exact`
(ablation A7 asserts this) on a chain that can be much smaller when the
database has symmetries (indistinguishable walkers, automorphic graph
parts).

This addresses the paper's closing future-work item ("generic
optimization techniques for query evaluation") with the classical
chain-level technique.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.chain_builder import DEFAULT_MAX_STATES, build_state_chain
from repro.core.evaluation.results import ExactResult
from repro.core.queries import ForeverQuery
from repro.markov.lumping import lumped_event_probability
from repro.obs.trace import phase_scope
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.perf.cache import TransitionCache
    from repro.runtime.context import RunContext


def evaluate_forever_lumped(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
    cache: "TransitionCache | None" = None,
    backend: str | None = None,
) -> ExactResult:
    """Exact forever-query result via the event-respecting quotient.

    ``states_explored`` reports the *quotient* size; the full chain is
    still constructed (the saving is in the linear-algebra phase, which
    dominates for large chains — see benchmark A7).  ``cache`` (a
    :class:`~repro.perf.cache.TransitionCache` on the same kernel)
    memoizes transition rows across builds, e.g. across the requests of
    one :class:`~repro.service.EngineSession`.

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    >>> evaluate_forever_lumped(query, db).probability
    Fraction(1, 4)
    """
    from repro.core.evaluation.backend import resolve_backend

    query, initial, effective_backend = resolve_backend(
        query, initial, backend, context=context, cache=cache
    )
    with phase_scope(context, "chain-build") as scope:
        chain = build_state_chain(
            query.kernel, initial, max_states=max_states, context=context,
            cache=cache,
        )
        scope.annotate(states=chain.size)
    if context is not None:
        context.check()
    with phase_scope(context, "solve", states=chain.size) as scope:
        probability, quotient_size = lumped_event_probability(
            chain, initial, query.event.holds
        )
        scope.annotate(quotient_states=quotient_size)
    details = {"full_states": chain.size, "quotient_states": quotient_size}
    if effective_backend != "frozenset":
        details["backend"] = effective_backend
    return ExactResult(
        probability=probability,
        states_explored=quotient_size,
        method="lumped",
        details=details,
    )
