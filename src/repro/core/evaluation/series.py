"""Finite-horizon (transient) analysis of forever-loops.

Definition 3.2's result is a limit; these helpers compute the exact
finite-time quantities that converge to it, which is what one plots to
*see* the convergence (e.g. the Theorem 5.1 occupancy curves, or the
burn-in bias of an under-mixed sampler):

* :func:`event_probability_series` — Pr[event holds at step t], exactly,
  for t = 0..horizon;
* :func:`event_occupancy_series` — the running Cesàro average
  (1/t)·Σ_{k≤t} Pr[event at step k], the quantity inside the
  Definition 3.2 limit.

Also here: :func:`query_pc_database` — one-shot possible-worlds
evaluation of an algebra query over a pc-table database (the
non-recursive Section 2.2 setting).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.chain_builder import DEFAULT_MAX_STATES, build_state_chain
from repro.core.queries import ForeverQuery
from repro.ctables.pctable import PCDatabase
from repro.errors import EvaluationError
from repro.probability.distribution import Distribution, as_fraction
from repro.relational.algebra import Expression
from repro.relational.database import Database
from repro.relational.prob_eval import enumerate_worlds
from repro.relational.relation import Relation


def event_probability_series(
    query: ForeverQuery,
    initial: Database,
    horizon: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> list[Fraction]:
    """Exact Pr[event at step t] for t = 0, 1, ..., horizon.

    Entry 0 is the event's value on the initial state (0 or 1); for an
    ergodic kernel the series converges to the Definition 3.2 result.

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(3), "n0", "n1")
    >>> event_probability_series(query, db, 2)
    [Fraction(0, 1), Fraction(1, 2), Fraction(1, 2)]
    """
    if horizon < 0:
        raise EvaluationError("horizon must be non-negative")
    chain = build_state_chain(query.kernel, initial, max_states=max_states)
    current: Distribution[Database] = Distribution.point(initial)
    series = [as_fraction(current.probability_of(query.event.holds))]
    for _ in range(horizon):
        current = chain.step_distribution(current)
        series.append(as_fraction(current.probability_of(query.event.holds)))
    return series


def event_occupancy_series(
    query: ForeverQuery,
    initial: Database,
    horizon: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> list[Fraction]:
    """The running time-average of the event probability — the inner
    quantity of Definition 3.2's limit — for t = 1, ..., horizon.

    Entry t−1 is ``(1/t) Σ_{k=1..t} Pr[event at step k]`` (the paper's
    average starts after the first transition).
    """
    if horizon < 1:
        raise EvaluationError("occupancy needs at least one step")
    pointwise = event_probability_series(
        query, initial, horizon, max_states=max_states
    )
    averages: list[Fraction] = []
    running = Fraction(0)
    for t, value in enumerate(pointwise[1:], start=1):
        running += value
        averages.append(running / t)
    return averages


def query_pc_database(
    expr: Expression, pcdb: PCDatabase
) -> Distribution[Relation]:
    """Possible-worlds result of an algebra query over a pc-database.

    The non-recursive Section 2.2 setting: the pc-table valuation is
    drawn once, the (possibly repair-key-bearing) query is evaluated in
    that world, and the two layers of choice compose.  Worlds with
    equal result relations merge.

    Examples
    --------
    >>> from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
    >>> from repro.relational import rel, project
    >>> pcdb = PCDatabase(
    ...     {"A": CTable(("L",), [(("t",), var_eq("x", 1))])},
    ...     {"x": boolean_variable()},
    ... )
    >>> worlds = query_pc_database(project(rel("A"), "L"), pcdb)
    >>> len(worlds)
    2
    """
    return pcdb.possible_worlds().bind(lambda world: enumerate_worlds(expr, world))
