"""Execution-backend selection for the evaluators.

Every evaluator entry point takes a ``backend`` argument:

* ``"frozenset"`` (default) — the original interpreter over
  :class:`~repro.relational.database.Database` states;
* ``"columnar"`` — compile the program with :mod:`repro.kernel` and run
  on interned integer-ID arrays.  Results (including sampled
  trajectories under a fixed seed) are bit-identical to the frozenset
  backend; only the speed differs.

:func:`resolve_backend` performs the swap at the evaluator entry.  It
*falls back* to the frozenset path — recording why on the run context
and in the global :func:`fallback_total` counter (exported by the
service metrics endpoint as ``repro_kernel_fallback_total``) — when

* the program is kernel-ineligible (pc-tables, opaque
  :class:`~repro.relational.predicates.RowPredicate` selections,
  foreign event types) — the static analyzer flags these as ``PH005``;
* checkpointing is configured (walker snapshots serialise frozenset
  states);
* a pre-built :class:`~repro.perf.cache.TransitionCache` bound to the
  frozenset kernel was supplied (a cache serves exactly one kernel
  object).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.errors import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext

#: Recognised execution backends.
BACKENDS = ("frozenset", "columnar")

_fallback_lock = threading.Lock()
_fallback_total = 0
_fallback_reasons: dict[str, int] = {}


def record_fallback(reason: str, context: "RunContext | None" = None) -> None:
    """Count one columnar → frozenset fallback (and note it on the run)."""
    global _fallback_total
    with _fallback_lock:
        _fallback_total += 1
        _fallback_reasons[reason] = _fallback_reasons.get(reason, 0) + 1
    if context is not None:
        context.record_event(f"columnar backend fallback: {reason}")


def fallback_total() -> int:
    """Process-wide count of columnar → frozenset fallbacks."""
    return _fallback_total


def fallback_reasons() -> dict[str, int]:
    """Fallback counts grouped by reason."""
    with _fallback_lock:
        return dict(_fallback_reasons)


def check_backend(backend: str | None) -> str:
    """Validate and normalise a backend name."""
    if backend is None:
        return "frozenset"
    if backend not in BACKENDS:
        raise EvaluationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def resolve_backend(
    query,
    initial,
    backend: str | None,
    context: "RunContext | None" = None,
    checkpointing: bool = False,
    cache: Any = None,
):
    """Swap a query/initial pair onto the requested backend.

    Returns ``(query, initial, effective_backend)``.  With
    ``backend="columnar"`` the returned query is the compiled
    counterpart (same class, kernel and event replaced) and ``initial``
    the interned :class:`~repro.kernel.ColumnarDatabase`; on any
    fallback condition the originals come back with
    ``effective_backend == "frozenset"`` and the reason recorded.
    """
    backend = check_backend(backend)
    if backend == "frozenset":
        return query, initial, "frozenset"
    from repro.kernel import CompiledKernel, KernelCompileError, compile_query

    if isinstance(query.kernel, CompiledKernel):
        # Already compiled upstream (e.g. by an EngineSession).
        return query, initial, "columnar"
    if checkpointing:
        record_fallback(
            "checkpoint/resume serialises frozenset walker states", context
        )
        return query, initial, "frozenset"
    if cache is not None:
        record_fallback(
            "a pre-built transition cache is bound to the frozenset kernel",
            context,
        )
        return query, initial, "frozenset"
    try:
        compiled = compile_query(query, initial)
    except KernelCompileError as error:
        record_fallback(str(error), context)
        return query, initial, "frozenset"
    return compiled.query, compiled.initial, "columnar"
