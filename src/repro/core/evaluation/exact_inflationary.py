"""Exact evaluation of inflationary queries (Proposition 4.4).

The algorithm traverses the tree of possible computations down to all
fixpoints, accumulating the probability of the query event holding at
the fixpoint.  Because the state strictly grows along every non-trivial
step (Definition 3.4), the state graph with self-loops removed is a
finite DAG, so a memoised traversal visits each state once.

Self-loops of probability < 1 need care (Example 3.6: a repair-key may
re-choose a tuple that is already present, leaving the state unchanged
without being a fixpoint; such non-terminating paths have probability
tending to zero).  Conditioning on eventually leaving the state — i.e.
renormalising the non-self transition probabilities by 1/(1 − p_self) —
is exact, because on a finite inflationary lattice eventual absorption
into a fixpoint has probability one.

pc-tables attached to the kernel are handled per Section 3.2: the
probabilistic choice of their tuples happens *once*, before iteration —
the evaluator enumerates the valuations (exactly the PSPACE iteration of
the Proposition 4.4 proof) and runs the fixpoint traversal in each
world.
"""

from __future__ import annotations

import sys
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Hashable, TypeVar

from repro.core.evaluation.results import ExactResult
from repro.core.queries import InflationaryQuery
from repro.errors import EvaluationError, StateSpaceLimitExceeded
from repro.obs.trace import phase_scope, tracer_of
from repro.probability.distribution import Distribution, as_fraction
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext

S = TypeVar("S", bound=Hashable)

#: Default cap on the number of distinct computation-tree states.
DEFAULT_MAX_STATES = 100_000


def absorption_event_probability(
    transition: Callable[[S], Distribution[S]],
    event: Callable[[S], bool],
    initial: S,
    max_states: int = DEFAULT_MAX_STATES,
    check_growth: Callable[[S, S], None] | None = None,
    context: "RunContext | None" = None,
) -> tuple[Fraction, int]:
    """Probability that ``event`` holds at the absorbing fixpoint.

    Generic over the state type: the datalog engine reuses this with
    its machine states.  ``transition`` must define an absorbing process
    on a finite DAG-up-to-self-loops (which inflationary semantics
    guarantees); ``check_growth(state, successor)`` may raise to enforce
    it.  Returns ``(probability, states_visited)``.
    """
    pending = object()  # marks states currently on the exploration stack
    memo: dict[S, object] = {}
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:

        def probability(state: S) -> Fraction:
            cached = memo.get(state)
            if cached is pending:
                raise EvaluationError(
                    "cycle detected in inflationary computation tree — "
                    "the transition kernel is not inflationary"
                )
            if cached is not None:
                return cached  # type: ignore[return-value]
            if len(memo) >= max_states:
                raise StateSpaceLimitExceeded(
                    f"inflationary computation tree exceeds max_states="
                    f"{max_states} ({len(memo)} states memoised)",
                    details={"max_states": max_states, "states_memoised": len(memo)},
                )
            memo[state] = pending
            if context is not None:
                context.tick_states()
            row = transition(state)
            self_probability = as_fraction(row.probability(state))
            successors = [
                (target, as_fraction(weight))
                for target, weight in row.items()
                if target != state
            ]
            if not successors:
                result = Fraction(1) if event(state) else Fraction(0)
            else:
                if check_growth is not None:
                    for target, _weight in successors:
                        check_growth(state, target)
                total = Fraction(0)
                for target, weight in successors:
                    total += weight * probability(target)
                result = total / (1 - self_probability)
            memo[state] = result
            return result

        answer = probability(initial)
    finally:
        sys.setrecursionlimit(old_limit)
    return answer, len(memo)


def evaluate_inflationary_exact(
    query: InflationaryQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
) -> ExactResult:
    """Exact result of an inflationary query (Proposition 4.4).

    Enumerates the pc-table valuations (when present), then traverses
    the computation tree of each world with memoisation.

    Examples
    --------
    >>> from repro.relational import Relation, rel
    >>> from repro.core.interpretation import Interpretation
    >>> from repro.core.events import TupleIn
    >>> db = Database({"C": Relation(("I",), [("a",)])})
    >>> q = InflationaryQuery(Interpretation({"C": rel("C")}), TupleIn("C", ("a",)))
    >>> evaluate_inflationary_exact(q, db).probability
    Fraction(1, 1)
    """
    kernel = query.kernel
    kernel.check_schema(initial)
    fixed_kernel = kernel.without_pc_tables()

    def world_probability(world_db: Database) -> tuple[Fraction, int]:
        return absorption_event_probability(
            fixed_kernel.transition,
            query.event.holds,
            world_db,
            max_states=max_states,
            check_growth=query.check_step,
            context=context,
        )

    tracer = tracer_of(context)
    if kernel.pc_tables is None:
        with phase_scope(context, "solve") as scope:
            probability, states = world_probability(initial)
            scope.annotate(states=states)
        return ExactResult(
            probability=probability,
            states_explored=states,
            method="prop-4.4",
            details={"pc_worlds": 1},
        )

    pc = kernel.pc_tables
    names = sorted(pc.tables)
    variable_names = pc.variable_names()
    total = Fraction(0)
    total_states = 0
    worlds = 0
    with phase_scope(context, "solve") as scope:
        for values, weight in pc.valuation_distribution().items():
            if context is not None:
                context.check()
            valuation = dict(zip(variable_names, values))
            world_db = initial.with_relations(
                {name: pc.tables[name].instantiate(valuation) for name in names}
            )
            probability, states = world_probability(world_db)
            total += as_fraction(weight) * probability
            total_states += states
            worlds += 1
            if tracer.enabled:
                tracer.event(
                    "pc-world", world=worlds, states=states,
                    weight=float(weight),
                )
        scope.annotate(pc_worlds=worlds, states=total_states)
    return ExactResult(
        probability=total,
        states_explored=total_states,
        method="prop-4.4",
        details={"pc_worlds": worlds},
    )
