"""Provenance tracking for the Section 5.1 partitioning optimisation.

The paper's pre-processing stage assigns each base tuple a singleton
identifier set, evaluates all rules inflationarily (ignoring the
probabilistic choices) while propagating identifiers — a derived tuple
gets the union of the identifiers of the tuples used to derive it — and
then reads the dependency classes off the resulting identifier sets.

This module implements the identifier propagation for full algebra
expressions.  Design choices (all *conservative*: they can only merge
classes, never split dependent tuples apart, so partitioned evaluation
stays correct):

* projection / union collisions take the union of the contributing
  identifier sets;
* a tuple surviving a difference additionally depends on everything the
  subtracted side could derive (negation reads the right side's
  content);
* ``repair-key`` keeps *all* rows (any of them could be chosen) and
  merges the identifiers of each key group — whether one group member
  is chosen is determined jointly with its siblings, so they are
  mutually dependent.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import AlgebraError
from repro.relational.algebra import (
    Difference,
    Expression,
    ExtendedProject,
    Literal,
    NaturalJoin,
    Product,
    Project,
    Rename,
    RelationRef,
    RepairKey,
    Select,
    Union,
)
from repro.relational.database import Database
from repro.relational.relation import Relation, Row

#: A base-tuple identifier: (relation name, row).
TupleId = tuple[str, Row]
#: Identifier sets attached to the rows of one relation.
ProvMap = dict[Row, frozenset[TupleId]]

_EMPTY: frozenset[TupleId] = frozenset()


def initial_provenance(db: Database) -> dict[str, ProvMap]:
    """Singleton identifier sets for every base tuple of ``db``."""
    return {
        name: {row: frozenset({(name, row)}) for row in db[name]}
        for name in db.names()
    }


def _merge(target: ProvMap, row: Row, ids: frozenset[TupleId]) -> None:
    target[row] = target.get(row, _EMPTY) | ids


def evaluate_with_provenance(
    expr: Expression,
    db: Database,
    provenance: Mapping[str, ProvMap],
) -> tuple[Relation, ProvMap]:
    """Evaluate ``expr`` with repair-key read as "keep everything",
    returning the result relation and per-row identifier sets."""
    if isinstance(expr, RelationRef):
        relation = db[expr.name]
        known = provenance.get(expr.name, {})
        return relation, {row: known.get(row, _EMPTY) for row in relation}

    if isinstance(expr, Literal):
        return expr.relation, {row: _EMPTY for row in expr.relation}

    if isinstance(expr, Select):
        child, child_prov = evaluate_with_provenance(expr.child, db, provenance)
        cols = child.columns
        kept = [
            row for row in child if expr.predicate.evaluate(dict(zip(cols, row)))
        ]
        return Relation(cols, kept), {row: child_prov[row] for row in kept}

    if isinstance(expr, Project):
        child, child_prov = evaluate_with_provenance(expr.child, db, provenance)
        indices = [child.column_index(c) for c in expr.columns]
        out_prov: ProvMap = {}
        for row in child:
            image = tuple(row[i] for i in indices)
            _merge(out_prov, image, child_prov[row])
        return Relation(expr.columns, out_prov.keys()), out_prov

    if isinstance(expr, Rename):
        child, child_prov = evaluate_with_provenance(expr.child, db, provenance)
        out_cols = tuple(expr.mapping.get(c, c) for c in child.columns)
        return Relation(out_cols, child.rows), dict(child_prov)

    if isinstance(expr, ExtendedProject):
        child, child_prov = evaluate_with_provenance(expr.child, db, provenance)
        sources = []
        for _name, (kind, value) in expr.outputs:
            if kind == "col":
                sources.append(("col", child.column_index(value)))
            else:
                sources.append(("const", value))
        out_cols = tuple(name for name, _source in expr.outputs)
        out_prov: ProvMap = {}
        for row in child:
            image = tuple(
                row[value] if kind == "col" else value for kind, value in sources
            )
            _merge(out_prov, image, child_prov[row])
        return Relation(out_cols, out_prov.keys()), out_prov

    if isinstance(expr, Union):
        left, left_prov = evaluate_with_provenance(expr.left, db, provenance)
        right, right_prov = evaluate_with_provenance(expr.right, db, provenance)
        out_prov = dict(left_prov)
        for row, ids in right_prov.items():
            _merge(out_prov, row, ids)
        return left.union(right), out_prov

    if isinstance(expr, Difference):
        left, left_prov = evaluate_with_provenance(expr.left, db, provenance)
        right, right_prov = evaluate_with_provenance(expr.right, db, provenance)
        negative: frozenset[TupleId] = _EMPTY
        for ids in right_prov.values():
            negative |= ids
        survivors = left.difference(right)
        return survivors, {row: left_prov[row] | negative for row in survivors}

    if isinstance(expr, (Product, NaturalJoin)):
        left, left_prov = evaluate_with_provenance(expr.left, db, provenance)
        right, right_prov = evaluate_with_provenance(expr.right, db, provenance)
        if isinstance(expr, Product):
            shared: list[str] = []
        else:
            shared = [c for c in left.columns if c in right.columns]
        out_cols = left.columns + tuple(
            c for c in right.columns if c not in left.columns
        )
        lidx = [left.column_index(c) for c in shared]
        ridx = [right.column_index(c) for c in shared]
        rkeep = [i for i, c in enumerate(right.columns) if c not in left.columns]
        out_prov = {}
        for lrow in left:
            lkey = tuple(lrow[i] for i in lidx)
            for rrow in right:
                if tuple(rrow[i] for i in ridx) != lkey:
                    continue
                combined = lrow + tuple(rrow[i] for i in rkeep)
                _merge(out_prov, combined, left_prov[lrow] | right_prov[rrow])
        return Relation(out_cols, out_prov.keys()), out_prov

    if isinstance(expr, RepairKey):
        child, child_prov = evaluate_with_provenance(expr.child, db, provenance)
        key_idx = [child.column_index(c) for c in expr.key]
        groups: dict[tuple, frozenset[TupleId]] = {}
        for row in child:
            gkey = tuple(row[i] for i in key_idx)
            groups[gkey] = groups.get(gkey, _EMPTY) | child_prov[row]
        out_prov = {
            row: groups[tuple(row[i] for i in key_idx)] for row in child
        }
        return child, out_prov

    raise AlgebraError(f"cannot track provenance through {expr!r}")
