"""Float64 forever-query evaluation for larger chains.

Same structure as
:func:`repro.core.evaluation.exact_noninflationary.evaluate_forever_exact`
(build the database-state chain, absorb into leaf SCCs, per-leaf
stationary distributions), but the linear systems are solved in float64
via numpy instead of exact rationals.  Use when the chain has hundreds
to thousands of states — the exact solver's rational arithmetic becomes
the bottleneck well before the chain construction does (benchmark A4
quantifies the crossover).

The result is returned as a :class:`SamplingResult`-free plain
:class:`NumericResult` with an estimated numerical-error bound of the
solver (not a statistical guarantee — the computation is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.chain_builder import DEFAULT_MAX_STATES, build_state_chain
from repro.core.queries import ForeverQuery
from repro.markov.analysis import classify
from repro.markov.numeric import long_run_event_probability_float
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext


@dataclass(frozen=True)
class NumericResult:
    """A deterministically computed float64 query probability."""

    probability: float
    states_explored: int
    method: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")


def evaluate_forever_numeric(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
) -> NumericResult:
    """Float64 result of a forever-query (Prop 5.4 / Thm 5.5 structure).

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    >>> round(evaluate_forever_numeric(query, db).probability, 9)
    0.25
    """
    chain = build_state_chain(
        query.kernel, initial, max_states=max_states, context=context
    )
    if context is not None:
        context.check()
    probability = long_run_event_probability_float(
        chain, initial, query.event.holds
    )
    structure = classify(chain)
    method = "prop-5.4-float" if structure["irreducible"] else "thm-5.5-float"
    return NumericResult(
        probability=probability,
        states_explored=chain.size,
        method=method,
        details=structure,
    )
