"""Mixing-time-based sampling for forever-queries (Theorem 5.6).

On an ergodic chain the state after t(ε_mix) steps is ε_mix-close (in
total variation) to stationary regardless of the start state.  The
Theorem 5.6 sampler therefore runs the kernel for a burn-in of t(ε_mix)
steps, records whether the event holds, restarts, and averages: the
estimate is within ε_mix + ε_sample of the true stationary event
probability with confidence 1 − δ, in time polynomial in the database
size and the mixing time.

The burn-in can be supplied by the caller (the honest setting when the
chain is too large to materialise), computed exactly from the explicit
chain (small chains; used to validate the method), or estimated by the
convergence heuristic the paper sketches in Section 5.1
(:func:`adaptive_burn_in` — "computing intermediate probabilities up
until convergence" over an ensemble of parallel walks).
"""

from __future__ import annotations

from repro.core.chain_builder import build_state_chain
from repro.core.evaluation.results import SamplingResult
from repro.core.queries import ForeverQuery
from repro.errors import EvaluationError
from repro.markov.mixing import mixing_time
from repro.probability.chernoff import hoeffding_sample_count, paper_sample_count
from repro.probability.rng import RngLike, make_rng
from repro.relational.database import Database

#: Default cap for the adaptive-burn-in heuristic.
DEFAULT_ADAPTIVE_MAX_STEPS = 10_000


def computed_burn_in(
    query: ForeverQuery,
    initial: Database,
    mixing_epsilon: float,
    max_states: int,
) -> int:
    """The exact ε-mixing time of the induced chain (requires the chain
    to fit in ``max_states`` and to be ergodic)."""
    chain = build_state_chain(query.kernel, initial, max_states=max_states)
    return mixing_time(chain, epsilon=mixing_epsilon)


def adaptive_burn_in(
    query: ForeverQuery,
    initial: Database,
    rng: RngLike = None,
    walkers: int = 64,
    window: int = 20,
    tolerance: float = 0.02,
    max_steps: int = DEFAULT_ADAPTIVE_MAX_STEPS,
) -> int:
    """Convergence-detection heuristic for implicit (too large) chains.

    Runs ``walkers`` independent walks in lock-step; at each step the
    fraction of walkers satisfying the event is an estimate of
    Pr(event at step t).  When the last ``window`` estimates all lie
    within ``tolerance`` of their mean, the ensemble is declared mixed
    and the current step count returned.

    This is a heuristic (no TV guarantee): slow modes invisible to the
    event can be missed.  Benchmarks compare it against the exact
    mixing time.
    """
    generator = make_rng(rng)
    query.kernel.check_schema(initial)
    states = [initial] * walkers
    history: list[float] = []
    for step in range(1, max_steps + 1):
        states = [
            query.kernel.sample_transition(state, generator) for state in states
        ]
        fraction = sum(query.event.holds(state) for state in states) / walkers
        history.append(fraction)
        if len(history) >= window:
            recent = history[-window:]
            centre = sum(recent) / window
            if all(abs(value - centre) <= tolerance for value in recent):
                return step
    raise EvaluationError(
        f"event frequency did not stabilise within {max_steps} steps; "
        "increase max_steps or tolerance"
    )


def evaluate_forever_mcmc(
    query: ForeverQuery,
    initial: Database,
    epsilon: float = 0.1,
    delta: float = 0.05,
    burn_in: int | None = None,
    samples: int | None = None,
    rng: RngLike = None,
    max_states_for_mixing: int = 5_000,
    use_paper_bound: bool = True,
) -> SamplingResult:
    """The Theorem 5.6 sampler.

    The additive error budget ε is split evenly: the burn-in targets a
    total-variation distance of ε/2 from stationary and the sample count
    targets a Chernoff accuracy of ε/2, so the combined estimate is an
    absolute ε-approximation with confidence 1 − δ.

    Parameters
    ----------
    burn_in:
        Steps per sample before the state is recorded.  When ``None``,
        the exact mixing time t(ε/2) is computed from the explicit chain
        (which must fit in ``max_states_for_mixing`` states and be
        ergodic) — the faithful Theorem 5.6 setting.
    samples:
        Override the planned sample count (ε/δ then recorded as None).
    """
    generator = make_rng(rng)
    query.kernel.check_schema(initial)

    if burn_in is None:
        burn_in = computed_burn_in(
            query, initial, mixing_epsilon=epsilon / 2.0, max_states=max_states_for_mixing
        )
        sample_epsilon = epsilon / 2.0
    else:
        sample_epsilon = epsilon

    if samples is None:
        planner = paper_sample_count if use_paper_bound else hoeffding_sample_count
        planned = planner(sample_epsilon, delta)
        recorded_epsilon, recorded_delta = epsilon, delta
    else:
        planned = samples
        recorded_epsilon = recorded_delta = None

    positive = 0
    for _ in range(planned):
        state = initial
        for _ in range(burn_in):
            state = query.kernel.sample_transition(state, generator)
        positive += query.event.holds(state)

    return SamplingResult(
        estimate=positive / planned,
        samples=planned,
        positive=positive,
        epsilon=recorded_epsilon,
        delta=recorded_delta,
        method="thm-5.6",
        details={"burn_in": burn_in},
    )
