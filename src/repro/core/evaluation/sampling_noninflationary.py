"""Mixing-time-based sampling for forever-queries (Theorem 5.6).

On an ergodic chain the state after t(ε_mix) steps is ε_mix-close (in
total variation) to stationary regardless of the start state.  The
Theorem 5.6 sampler therefore runs the kernel for a burn-in of t(ε_mix)
steps, records whether the event holds, restarts, and averages: the
estimate is within ε_mix + ε_sample of the true stationary event
probability with confidence 1 − δ, in time polynomial in the database
size and the mixing time.

The burn-in can be supplied by the caller (the honest setting when the
chain is too large to materialise), computed exactly from the explicit
chain (small chains; used to validate the method), or estimated by the
convergence heuristic the paper sketches in Section 5.1
(:func:`adaptive_burn_in` — "computing intermediate probabilities up
until convergence" over an ensemble of parallel walks).

Resilience: the sampler is interruptible through an optional
:class:`~repro.runtime.RunContext` (budget + cancellation checked once
per kernel application) and can persist its exact position — partial
tallies, mid-burn-in walker state, and the full RNG state — to a
:class:`~repro.runtime.Checkpoint`, from which a later run resumes
bit-identically (budget/cancellation interruptions stop on step
boundaries; a ``KeyboardInterrupt`` checkpoint is best-effort, since
the signal can land between the draws of a single transition).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.chain_builder import build_state_chain
from repro.core.evaluation.results import SamplingResult
from repro.core.queries import ForeverQuery
from repro.errors import CheckpointError, EvaluationError
from repro.faults import SITE_SAMPLER_SAMPLE, maybe_fire
from repro.markov.mixing import mixing_time
from repro.obs.trace import phase_scope, tracer_of
from repro.probability.chernoff import hoeffding_sample_count, paper_sample_count
from repro.probability.rng import RngLike, make_rng
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.perf.cache import TransitionCache
    from repro.perf.parallel import ParallelConfig
    from repro.runtime.checkpoint import Checkpoint
    from repro.runtime.context import RunContext

#: Default cap for the adaptive-burn-in heuristic.
DEFAULT_ADAPTIVE_MAX_STEPS = 10_000


def _make_cache(
    kernel,
    cache_size: int | None,
    context: "RunContext | None",
    cache: "TransitionCache | None" = None,
):
    """Build (and attach to the context) an optional TransitionCache.

    An explicit ``cache`` wins over ``cache_size``: it is a pre-built —
    possibly already warm — :class:`~repro.perf.cache.TransitionCache`
    shared across runs (the :class:`~repro.service.EngineSession`
    pattern).  It must have been built on the *same* kernel object;
    mixing kernels would silently mix distributions, so that is checked.

    Imported lazily: :mod:`repro.perf` sits above the evaluators in the
    import graph, exactly like :mod:`repro.runtime`.
    """
    if cache is not None:
        if cache.kernel is not kernel:
            raise EvaluationError(
                "the supplied TransitionCache was built for a different "
                "kernel object; a cache serves exactly one kernel"
            )
        if context is not None:
            context.attach_cache(cache)
        return cache
    if cache_size is None:
        return None
    from repro.perf.cache import TransitionCache

    cache = TransitionCache(kernel, maxsize=cache_size)
    if context is not None:
        context.attach_cache(cache)
    return cache


def computed_burn_in(
    query: ForeverQuery,
    initial: Database,
    mixing_epsilon: float,
    max_states: int,
    context: "RunContext | None" = None,
) -> int:
    """The exact ε-mixing time of the induced chain (requires the chain
    to fit in ``max_states`` and to be ergodic)."""
    chain = build_state_chain(
        query.kernel, initial, max_states=max_states, context=context
    )
    return mixing_time(chain, epsilon=mixing_epsilon, context=context)


def adaptive_burn_in(
    query: ForeverQuery,
    initial: Database,
    rng: RngLike = None,
    walkers: int = 64,
    window: int = 20,
    tolerance: float = 0.02,
    max_steps: int = DEFAULT_ADAPTIVE_MAX_STEPS,
    context: "RunContext | None" = None,
    cache_size: int | None = None,
    cache: "TransitionCache | None" = None,
    backend: str | None = None,
) -> int:
    """Convergence-detection heuristic for implicit (too large) chains.

    Runs ``walkers`` independent walks in lock-step; at each step the
    fraction of walkers satisfying the event is an estimate of
    Pr(event at step t).  When the last ``window`` estimates all lie
    within ``tolerance`` of their mean, the ensemble is declared mixed
    and the current step count returned.

    This is a heuristic (no TV guarantee): slow modes invisible to the
    event can be missed.  Benchmarks compare it against the exact
    mixing time.  On non-stabilisation the raised
    :class:`~repro.errors.EvaluationError` carries the tail of the
    frequency ``history`` and the walker count in its ``details`` so
    callers (notably the degradation policy) can diagnose slow modes.
    """
    from repro.core.evaluation.backend import resolve_backend

    generator = make_rng(rng)
    query, initial, _ = resolve_backend(
        query, initial, backend, context=context, cache=cache
    )
    query.kernel.check_schema(initial)
    cache = _make_cache(query.kernel, cache_size, context, cache)
    draw = query.kernel.sample_transition if cache is None else cache.sample
    tracer = tracer_of(context)
    states = [initial] * walkers
    history: list[float] = []
    with phase_scope(context, "plan", walkers=walkers):
        for step in range(1, max_steps + 1):
            if context is not None:
                context.tick_steps(walkers)
            states = [draw(state, generator) for state in states]
            fraction = sum(query.event.holds(state) for state in states) / walkers
            history.append(fraction)
            if tracer.enabled:
                tracer.event("ensemble-step", step=step, fraction=fraction)
            if len(history) >= window:
                recent = history[-window:]
                centre = sum(recent) / window
                if all(abs(value - centre) <= tolerance for value in recent):
                    return step
    tail = history[-2 * window :]
    raise EvaluationError(
        f"event frequency did not stabilise within {max_steps} steps "
        f"({walkers} walkers; last {len(tail)} frequencies: {tail}); "
        "increase max_steps or tolerance",
        details={
            "walkers": walkers,
            "max_steps": max_steps,
            "window": window,
            "tolerance": tolerance,
            "history_tail": tail,
        },
    )


def _load_resume(resume: "Checkpoint | str | Path | None") -> "Checkpoint | None":
    if resume is None:
        return None
    from repro.runtime.checkpoint import KIND_FOREVER_MCMC, Checkpoint, load_checkpoint

    checkpoint = resume if isinstance(resume, Checkpoint) else load_checkpoint(resume)
    if checkpoint.kind != KIND_FOREVER_MCMC:
        raise CheckpointError(
            f"checkpoint kind {checkpoint.kind!r} is not a "
            f"{KIND_FOREVER_MCMC!r} checkpoint"
        )
    return checkpoint


def evaluate_forever_mcmc(
    query: ForeverQuery,
    initial: Database,
    epsilon: float = 0.1,
    delta: float = 0.05,
    burn_in: int | None = None,
    samples: int | None = None,
    rng: RngLike = None,
    max_states_for_mixing: int = 5_000,
    use_paper_bound: bool = True,
    context: "RunContext | None" = None,
    checkpoint_path: str | Path | None = None,
    resume: "Checkpoint | str | Path | None" = None,
    cache_size: int | None = None,
    parallel: "ParallelConfig | None" = None,
    cache: "TransitionCache | None" = None,
    backend: str | None = None,
) -> SamplingResult:
    """The Theorem 5.6 sampler.

    The additive error budget ε is split evenly: the burn-in targets a
    total-variation distance of ε/2 from stationary and the sample count
    targets a Chernoff accuracy of ε/2, so the combined estimate is an
    absolute ε-approximation with confidence 1 − δ.

    Parameters
    ----------
    burn_in:
        Steps per sample before the state is recorded.  When ``None``,
        the exact mixing time t(ε/2) is computed from the explicit chain
        (which must fit in ``max_states_for_mixing`` states and be
        ergodic) — the faithful Theorem 5.6 setting.
    samples:
        Override the planned sample count (ε/δ then recorded as None).
    context:
        Optional :class:`~repro.runtime.RunContext`; each kernel
        application is charged one step, so budgets and cancellation
        interrupt the run with one-transition latency.
    checkpoint_path:
        When set, an interruption (budget, cancellation, or Ctrl-C)
        writes a :class:`~repro.runtime.Checkpoint` here before the
        error propagates; a completed run removes any stale file.
    resume:
        A checkpoint (object or path) from a previous interrupted run.
        The plan (burn-in, sample count, tallies) and the RNG state are
        restored from it, so the resumed run is bit-identical to the
        uninterrupted one; ``epsilon``/``delta``/``samples`` arguments
        are ignored in favour of the checkpointed plan.
    cache_size:
        When set, burn-in steps draw successors from a bounded
        :class:`~repro.perf.cache.TransitionCache` of that size — each
        distinct state's exact row is computed once, then sampling is
        one uniform draw plus a bisection.  Only for kernels with small
        per-state support (the exact row enumerates all worlds), and
        note the RNG stream differs from the uncached sampler (results
        stay deterministic per ``(seed, cache_size)``; the setting is
        recorded in checkpoints so resumes stay bit-identical).
    parallel:
        A :class:`~repro.perf.parallel.ParallelConfig`.  With
        ``workers=N > 1`` the planned samples are fanned out over a
        process pool with deterministic per-worker seeds derived from
        ``rng`` (seed-stable for fixed N); ``workers=1`` keeps this
        historical sequential path bit-identically.  Budgets are
        pro-rated across workers and cancellation propagates.
        Checkpointing needs the single sequential stream, so a
        configured ``checkpoint_path``/``resume`` disables the pool
        (recorded as a context event).
    cache:
        A pre-built :class:`~repro.perf.cache.TransitionCache` on the
        same kernel, shared — and kept warm — across runs (the
        :class:`~repro.service.EngineSession` pattern); overrides
        ``cache_size``.  The RNG-stream caveat of ``cache_size``
        applies.  A shared cache cannot cross process boundaries: with
        ``parallel`` workers, each worker falls back to a private cache
        of the same capacity.  Do not combine with ``resume`` unless
        the interrupted run was itself cached.
    backend:
        ``"frozenset"`` (default) or ``"columnar"`` — see
        :mod:`repro.core.evaluation.backend`.  The columnar backend
        compiles the program to the vectorized integer-ID kernel;
        estimates are bit-identical for a fixed seed.  Parallel workers
        compile in-process (compiled plans do not cross process
        boundaries); ineligible programs, checkpointing, and pre-built
        frozenset caches fall back with a recorded reason.
    """
    from repro.runtime.checkpoint import (
        KIND_FOREVER_MCMC,
        Checkpoint,
        run_fingerprint,
    )

    generator = make_rng(rng)
    query.kernel.check_schema(initial)
    if isinstance(initial, Database):
        fingerprint_db = initial
    else:
        # A pre-compiled columnar pair (EngineSession): fingerprint the
        # externed database — checkpoints always serialise frozenset
        # states, and this path never takes them.
        from repro.kernel import extern_database

        fingerprint_db = extern_database(initial)
    fingerprint = run_fingerprint(
        repr(query.kernel), fingerprint_db, repr(query.event)
    )

    checkpoint = _load_resume(resume)
    if checkpoint is not None:
        checkpoint.verify_fingerprint(fingerprint)
        burn_in = checkpoint.burn_in
        planned = checkpoint.planned
        recorded_epsilon = checkpoint.epsilon
        recorded_delta = checkpoint.delta
        positive = checkpoint.positive
        start_sample = checkpoint.samples_done
        checkpoint.restore_rng(generator)
        resumed_walker = checkpoint.walker_state()
        # The cache setting shapes the RNG stream (one draw per cached
        # step); honour whatever the interrupted run used.
        cache_size = checkpoint.meta.get("cache_size", cache_size)
    else:
        if burn_in is None:
            with phase_scope(context, "plan") as scope:
                burn_in = computed_burn_in(
                    query,
                    initial,
                    mixing_epsilon=epsilon / 2.0,
                    max_states=max_states_for_mixing,
                    context=context,
                )
                scope.annotate(burn_in=burn_in)
            sample_epsilon = epsilon / 2.0
        else:
            sample_epsilon = epsilon

        if samples is None:
            planner = paper_sample_count if use_paper_bound else hoeffding_sample_count
            planned = planner(sample_epsilon, delta)
            recorded_epsilon, recorded_delta = epsilon, delta
        else:
            planned = samples
            recorded_epsilon = recorded_delta = None
        positive = 0
        start_sample = 0
        resumed_walker = None

    if parallel is not None and parallel.enabled:
        if checkpoint_path is not None or resume is not None:
            if context is not None:
                context.record_event(
                    "checkpointing requires the single sequential RNG "
                    "stream: ignoring parallel workers"
                )
        elif planned > 1:
            if cache is not None:
                # A shared cache cannot cross the process boundary;
                # workers build private caches of the same capacity.
                cache_size = cache.maxsize
                cache = None
                if context is not None:
                    context.record_event(
                        "shared transition cache cannot cross process "
                        "boundaries: workers use private caches"
                    )
            return _forever_mcmc_parallel(
                query,
                initial,
                planned=planned,
                burn_in=burn_in,
                epsilon=recorded_epsilon,
                delta=recorded_delta,
                generator=generator,
                cache_size=cache_size,
                parallel=parallel,
                context=context,
                backend=backend,
            )

    from repro.core.evaluation.backend import resolve_backend

    query, initial, effective_backend = resolve_backend(
        query,
        initial,
        backend,
        context=context,
        checkpointing=checkpoint_path is not None or resume is not None,
        cache=cache,
    )
    cache = _make_cache(query.kernel, cache_size, context, cache)
    draw = query.kernel.sample_transition if cache is None else cache.sample
    if cache is not None:
        # The cached/uncached choice shapes the RNG stream; record the
        # effective capacity so a resumed run replays the same stream.
        cache_size = cache.maxsize

    def snapshot(samples_done: int, walker: dict | None) -> Checkpoint:
        return Checkpoint(
            kind=KIND_FOREVER_MCMC,
            samples_done=samples_done,
            positive=positive,
            planned=planned,
            burn_in=burn_in,
            epsilon=recorded_epsilon,
            delta=recorded_delta,
            rng_state=generator.getstate(),
            walker=walker,
            fingerprint=fingerprint,
            meta={"cache_size": cache_size},
        )

    tracer = tracer_of(context)
    sample_index = start_sample
    state = initial
    steps_done = 0
    try:
        with phase_scope(
            context, "sample", planned=planned, burn_in=burn_in
        ):
            while sample_index < planned:
                if resumed_walker is not None:
                    state, steps_done = resumed_walker
                    resumed_walker = None
                else:
                    state = initial
                    steps_done = 0
                while steps_done < burn_in:
                    if context is not None:
                        context.tick_steps()
                    state = draw(state, generator)
                    steps_done += 1
                hit = query.event.holds(state)
                positive += hit
                sample_index += 1
                # Chaos hook: lets the fault harness interrupt mid-run on
                # an exact sample boundary (a global read when inactive).
                maybe_fire(SITE_SAMPLER_SAMPLE, sample=sample_index)
                if tracer.enabled:
                    tracer.event(
                        "sample", index=sample_index, hit=bool(hit),
                        positive=positive,
                    )
    except BaseException:
        if checkpoint_path is not None:
            from repro.io import database_to_json

            walker = None
            if 0 < steps_done < burn_in:
                walker = {
                    "state": database_to_json(state),
                    "steps_done": steps_done,
                }
            snapshot(sample_index, walker).save(checkpoint_path)
        raise

    if checkpoint_path is not None:
        # The run completed; a stale checkpoint must not be resumed.
        Path(checkpoint_path).unlink(missing_ok=True)

    details: dict = {"burn_in": burn_in, "resumed_at": start_sample or None}
    if effective_backend != "frozenset":
        details["backend"] = effective_backend
    if cache is not None:
        details["cache"] = cache.stats()
    return SamplingResult(
        estimate=positive / planned,
        samples=planned,
        positive=positive,
        epsilon=recorded_epsilon,
        delta=recorded_delta,
        method="thm-5.6",
        details=details,
    )


def _forever_mcmc_parallel(
    query: ForeverQuery,
    initial: Database,
    planned: int,
    burn_in: int,
    epsilon: float | None,
    delta: float | None,
    generator,
    cache_size: int | None,
    parallel: "ParallelConfig",
    context: "RunContext | None",
    backend: str | None = None,
) -> SamplingResult:
    """Fan the planned trials out over a worker pool and merge tallies.

    Per-worker seeds are drawn from ``generator`` in worker order, so a
    fixed (seed, workers) pair is reproducible; shares of the step
    budget are pro-rated so the pool can never outspend the budget a
    sequential run honours.
    """
    from repro.perf.parallel import (
        _run_mcmc_trials,
        merge_tallies,
        prorated_budgets,
        run_worker_pool,
        split_trials,
        worker_seeds,
    )

    workers = min(parallel.workers, planned)
    seeds = worker_seeds(generator, workers)
    counts = split_trials(planned, workers)
    budgets = prorated_budgets(context, workers)
    profiled = bool(tracer_of(context).enabled)
    tasks = [
        {
            "query": query,
            "initial": initial,
            "samples": count,
            "burn_in": burn_in,
            "seed": seed,
            "cache_size": cache_size,
            "budget": budget,
            # Compiled plans hold closures and arrays that do not
            # pickle; workers compile in-process from the original.
            "backend": backend,
            # Traced parents ask workers to record spans into a
            # picklable buffer, shipped back and stitched in-trace.
            "profile": profiled,
        }
        for count, seed, budget in zip(counts, seeds, budgets)
        if count > 0
    ]
    with phase_scope(
        context, "sample", planned=planned, burn_in=burn_in, workers=workers
    ):
        tallies = run_worker_pool(_run_mcmc_trials, tasks, parallel, context)
        merged = merge_tallies(tallies)
    details: dict = {"burn_in": burn_in, "resumed_at": None, "workers": workers}
    if context is not None:
        context.absorb_usage(steps=merged["steps"])
        if merged.get("cache"):
            context.record_cache_stats(merged["cache"])
    if merged.get("cache"):
        details["cache"] = merged["cache"]
    return SamplingResult(
        estimate=merged["positive"] / planned,
        samples=planned,
        positive=merged["positive"],
        epsilon=epsilon,
        delta=delta,
        method="thm-5.6",
        details=details,
    )
