"""First-passage queries on forever-loops (library extension).

Definition 3.2 asks for the *long-run* probability of the event; two
natural companion questions fall out of the same chain machinery:

* :func:`event_hitting_probability` — will the forever-loop *ever*
  satisfy the event?  (For inflationary queries this coincides with the
  Definition 3.4 fixpoint semantics when the event is monotone, e.g. a
  ``t ∈ R`` test on a growing relation; for non-inflationary queries it
  can differ arbitrarily from the long-run value: a transient event may
  be hit almost surely yet have long-run probability 0.)
* :func:`event_expected_hitting_time` / :func:`event_hitting_time_distribution`
  — how many kernel applications until the event first holds.

Also here: the full exact distributions the scalar evaluators summarise
— :func:`forever_state_distribution` (long-run occupancy over database
states) and :func:`inflationary_fixpoint_distribution` (distribution
over final databases).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.chain_builder import DEFAULT_MAX_STATES, build_state_chain
from repro.core.queries import ForeverQuery, InflationaryQuery
from repro.markov.absorption import long_run_state_distribution
from repro.markov.passage import (
    expected_hitting_time,
    hitting_probability,
    hitting_time_distribution,
)
from repro.probability.distribution import Distribution, as_fraction
from repro.relational.database import Database


def event_hitting_probability(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
) -> Fraction:
    """Pr[the forever-loop ever reaches a state satisfying the event].

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    >>> event_hitting_probability(query, db)
    Fraction(1, 1)
    """
    chain = build_state_chain(query.kernel, initial, max_states=max_states)
    return hitting_probability(chain, initial, query.event.holds)


def event_expected_hitting_time(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
) -> Fraction:
    """E[kernel applications until the event first holds]."""
    chain = build_state_chain(query.kernel, initial, max_states=max_states)
    return expected_hitting_time(chain, initial, query.event.holds)


def event_hitting_time_distribution(
    query: ForeverQuery,
    initial: Database,
    horizon: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> Distribution[int]:
    """Exact first-hitting-time distribution, truncated at ``horizon``
    (outcome ``horizon + 1`` = "not hit within the horizon")."""
    chain = build_state_chain(query.kernel, initial, max_states=max_states)
    return hitting_time_distribution(chain, initial, query.event.holds, horizon)


def forever_state_distribution(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
) -> Distribution[Database]:
    """The exact long-run occupancy distribution over database states
    (Definition 3.2's Pr(s) for every s at once; transient states are
    dropped from the support)."""
    chain = build_state_chain(query.kernel, initial, max_states=max_states)
    occupancy = long_run_state_distribution(chain, initial)
    return Distribution(
        {state: mass for state, mass in occupancy.items() if mass > 0},
        normalise=False,
    )


def inflationary_fixpoint_distribution(
    query: InflationaryQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
) -> Distribution[Database]:
    """The exact distribution over fixpoint databases of an inflationary
    query (self-loops renormalised away, as in Proposition 4.4).

    pc-tables attached to the kernel are fixed once up front
    (Section 3.2): the returned distribution is the mixture over their
    valuations.

    Examples
    --------
    >>> from repro.workloads import example_36_graph, reachability_query
    >>> query, db = reachability_query(example_36_graph(), "a", "b")
    >>> finals = inflationary_fixpoint_distribution(query, db)
    >>> sorted(float(p) for p in finals.as_floats().values())
    [0.5, 0.5]
    """
    kernel = query.kernel
    kernel.check_schema(initial)
    fixed_kernel = kernel.without_pc_tables()

    def fixpoints_from(world: Database) -> Distribution[Database]:
        outcomes: dict[Database, Fraction] = {}
        memo_guard: set[Database] = set()

        def explore(state: Database, weight: Fraction) -> None:
            row = fixed_kernel.transition(state)
            self_probability = as_fraction(row.probability(state))
            successors = [
                (target, as_fraction(p)) for target, p in row.items() if target != state
            ]
            if not successors:
                outcomes[state] = outcomes.get(state, Fraction(0)) + weight
                return
            if len(memo_guard) > max_states:
                from repro.errors import StateSpaceLimitExceeded

                raise StateSpaceLimitExceeded(
                    f"fixpoint distribution exceeds max_states={max_states}"
                )
            memo_guard.add(state)
            scale = 1 / (1 - self_probability)
            for target, probability in successors:
                query.check_step(state, target)
                explore(target, weight * probability * scale)

        explore(world, Fraction(1))
        return Distribution(outcomes, normalise=False)

    if kernel.pc_tables is None:
        return fixpoints_from(initial)

    pc = kernel.pc_tables
    names = sorted(pc.tables)
    variable_names = pc.variable_names()
    mixture: dict[Database, Fraction] = {}
    for values, weight in pc.valuation_distribution().items():
        valuation = dict(zip(variable_names, values))
        world = initial.with_relations(
            {name: pc.tables[name].instantiate(valuation) for name in names}
        )
        for final, probability in fixpoints_from(world).items():
            mixture[final] = mixture.get(final, Fraction(0)) + as_fraction(weight) * probability
    return Distribution(mixture, normalise=False)
