"""Static checks over probabilistic datalog rule lists.

The analyzer consumes *raw* :class:`~repro.datalog.ast.Rule` sequences
(not a :class:`~repro.datalog.ast.Program`, whose constructor raises on
the first violation) so a single pass can report every problem in the
program at once.  The error-level checks are a superset of what
``Program.__init__`` / ``Rule.validate`` enforce: a rule list with no
error diagnostics constructs a ``Program`` without raising.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import TYPE_CHECKING, Sequence

from repro.analysis.diagnostics import DiagnosticReport, SourceSpan
from repro.analysis.graph import DependencyGraph
from repro.datalog.ast import _ANON_PREFIX, Rule, Var

if TYPE_CHECKING:
    from repro.core.events import QueryEvent
    from repro.ctables.pctable import PCDatabase
    from repro.relational.database import Database
    from repro.relational.relation import Relation

Span = tuple[int, int]


def check_rules(
    rules: Sequence[Rule],
    *,
    source: str | None = None,
    spans: Sequence[Span] | None = None,
    database: "Database | None" = None,
    pc_tables: "PCDatabase | None" = None,
    event: "QueryEvent | None" = None,
) -> DiagnosticReport:
    """Analyze a datalog rule list and return every finding.

    ``spans`` (parallel to ``rules``) and ``source`` attach source
    positions to per-rule diagnostics; database-dependent checks (EDB
    existence, arities, weight-column types, IDB/EDB clashes) only run
    when a ``database`` is supplied.
    """
    report = DiagnosticReport()
    if not rules:
        report.add("PE001", "a program needs at least one rule")
        return report

    rule_spans = _resolve_spans(rules, spans, source)
    for rule, span in zip(rules, rule_spans):
        _check_rule_safety(rule, span, report)

    arities = _check_arities(rules, rule_spans, report)
    idb = {rule.head.predicate for rule in rules}
    base_relations = _base_relations(database, pc_tables)

    if database is not None:
        _check_against_database(
            rules, rule_spans, idb, base_relations, database, report
        )

    if event is not None:
        _check_event(
            rules, rule_spans, idb, arities, base_relations, database, event, report
        )

    _emit_plan_hints(rules, idb, pc_tables, report)
    return report


# -- per-rule safety ----------------------------------------------------------


def _check_rule_safety(
    rule: Rule, span: SourceSpan | None, report: DiagnosticReport
) -> None:
    body_vars = set(rule.body_variables())
    head_vars = set(rule.head_variables())

    unsafe = sorted(head_vars - body_vars)
    if unsafe:
        report.add(
            "SF001",
            f"rule {rule!r} is unsafe: head variables {unsafe!r} are not "
            "bound by any positive body atom",
            span=span,
            subject=rule.head.predicate,
            suggestion=f"bind {', '.join(unsafe)} in a body atom or use constants",
        )

    bad_keys = sorted(rule.key_variables - head_vars)
    if bad_keys:
        report.add(
            "SF003",
            f"rule {rule!r}: key variables {bad_keys!r} are not head variables",
            span=span,
            subject=rule.head.predicate,
            suggestion="key-mark (X*) only variables that occur in the head",
        )

    if rule.weight_variable is not None and rule.weight_variable not in body_vars:
        report.add(
            "SF002",
            f"rule {rule!r}: weight variable {rule.weight_variable!r} is not "
            "bound in the body",
            span=span,
            subject=rule.head.predicate,
            suggestion=f"add a body atom binding {rule.weight_variable}, or "
            "drop @" + rule.weight_variable + " for uniform weighting",
        )

    anonymous = sorted(
        {
            term.name
            for term in rule.head.terms
            if isinstance(term, Var) and term.name.startswith(_ANON_PREFIX)
        }
    )
    if anonymous:
        report.add(
            "SF004",
            f"rule {rule!r}: anonymous variables cannot occur in the head",
            span=span,
            subject=rule.head.predicate,
            suggestion="name the variable and bind it in the body",
        )


# -- program-level structure --------------------------------------------------


def _check_arities(
    rules: Sequence[Rule],
    spans: Sequence[SourceSpan | None],
    report: DiagnosticReport,
) -> dict[str, int]:
    arities: dict[str, int] = {}
    flagged: set[str] = set()
    for rule, span in zip(rules, spans):
        for atom in (rule.head, *rule.body):
            known = arities.setdefault(atom.predicate, atom.arity)
            if known != atom.arity and atom.predicate not in flagged:
                flagged.add(atom.predicate)
                report.add(
                    "AR001",
                    f"predicate {atom.predicate!r} is used with arity "
                    f"{atom.arity} here but arity {known} elsewhere",
                    span=span,
                    subject=atom.predicate,
                    suggestion="use one arity per predicate",
                )
    return arities


def _check_against_database(
    rules: Sequence[Rule],
    spans: Sequence[SourceSpan | None],
    idb: set[str],
    base_relations: dict[str, int],
    database: "Database",
    report: DiagnosticReport,
) -> None:
    seen: set[tuple[str, str]] = set()
    for rule, span in zip(rules, spans):
        head = rule.head.predicate
        if head in base_relations and ("clash", head) not in seen:
            seen.add(("clash", head))
            report.add(
                "SF005",
                f"IDB predicate {head!r} clashes with a database relation "
                "of the same name",
                span=span,
                subject=head,
                suggestion="rename the rule head or the EDB relation",
            )
        for atom in rule.body:
            predicate = atom.predicate
            if predicate in idb or ("edb", predicate) in seen:
                continue
            seen.add(("edb", predicate))
            if predicate not in base_relations:
                report.add(
                    "AR002",
                    f"EDB predicate {predicate!r} is missing from the database",
                    span=span,
                    subject=predicate,
                    suggestion="add the relation to the database or define "
                    "it with rules",
                )
            elif base_relations[predicate] != atom.arity:
                report.add(
                    "AR003",
                    f"EDB predicate {predicate!r} is used with arity "
                    f"{atom.arity} but the database relation has "
                    f"{base_relations[predicate]} columns",
                    span=span,
                    subject=predicate,
                )
        _check_weight_values(rule, span, idb, database, report)


def _check_weight_values(
    rule: Rule,
    span: SourceSpan | None,
    idb: set[str],
    database: "Database",
    report: DiagnosticReport,
) -> None:
    """RK004: every EDB column a ``@P`` weight variable is bound to must
    hold numeric values (weights feed repair-key's choice distribution).
    """
    weight = rule.weight_variable
    if weight is None:
        return
    for atom in rule.body:
        if atom.predicate in idb or atom.predicate not in database.names():
            continue
        relation = database[atom.predicate]
        if len(relation.columns) != atom.arity:
            continue  # already reported as AR003
        for position, term in enumerate(atom.terms):
            if not (isinstance(term, Var) and term.name == weight):
                continue
            column = relation.columns[position]
            bad = _non_numeric_values(relation, column)
            if bad:
                report.add(
                    "RK004",
                    f"weight variable {weight!r} is bound to column "
                    f"{column!r} of {atom.predicate!r}, which holds "
                    f"non-numeric values (e.g. {bad[0]!r})",
                    span=span,
                    subject=atom.predicate,
                    suggestion="weight columns must hold rational numbers",
                )
                return


def _check_event(
    rules: Sequence[Rule],
    spans: Sequence[SourceSpan | None],
    idb: set[str],
    arities: dict[str, int],
    base_relations: dict[str, int],
    database: "Database | None",
    event: "QueryEvent",
    report: DiagnosticReport,
) -> None:
    from repro.core.events import event_atoms, event_relations

    for atom in event_atoms(event):
        relation = atom.relation
        known_arity: int | None = arities.get(relation)
        if known_arity is None and relation in base_relations:
            known_arity = base_relations[relation]

        if relation not in arities and (
            database is not None and relation not in base_relations
        ):
            report.add(
                "DD002",
                f"event relation {relation!r} is neither defined by the "
                "program nor present in the database; the event is "
                "constantly false",
                subject=relation,
                suggestion="query a predicate the program defines",
            )
        elif known_arity is not None and len(atom.row) != known_arity:
            report.add(
                "DD003",
                f"event {atom!r} has arity {len(atom.row)} but relation "
                f"{relation!r} has arity {known_arity}; the event is "
                "constantly false",
                subject=relation,
            )

    # Dead rules: a rule is useful when some event relation (directly
    # or transitively) depends on its head.
    relations = sorted(event_relations(event))
    described = (
        repr(relations[0])
        if len(relations) == 1
        else "{" + ", ".join(repr(name) for name in relations) + "}"
    )
    graph = DependencyGraph.from_rules(rules)
    useful = graph.reachable_from(relations)
    for rule, span in zip(rules, spans):
        if rule.head.predicate in idb and rule.head.predicate not in useful:
            report.add(
                "DD001",
                f"rule {rule!r} is dead: the event relation {described} "
                f"does not depend on {rule.head.predicate!r}",
                span=span,
                subject=rule.head.predicate,
                suggestion="remove the rule or query a predicate that uses it",
            )


def _emit_plan_hints(
    rules: Sequence[Rule],
    idb: set[str],
    pc_tables: "PCDatabase | None",
    report: DiagnosticReport,
) -> None:
    probabilistic = any(rule.is_probabilistic() for rule in rules)
    pc_free = pc_tables is None or not pc_tables.variables
    if not probabilistic and pc_free:
        report.add(
            "PH001",
            "the program makes no repair-key choice and uses no pc-table: "
            "a single exact run computes the answer; sampling is unnecessary",
        )
    if _is_linear(rules, idb):
        report.add(
            "PH004",
            "linear datalog program (at most one IDB atom per body): the "
            "efficient fragment of Theorem 4.1 applies",
        )


def _is_linear(rules: Sequence[Rule], idb: set[str]) -> bool:
    return all(
        sum(1 for atom in rule.body if atom.predicate in idb) <= 1 for rule in rules
    )


# -- helpers ------------------------------------------------------------------


def _resolve_spans(
    rules: Sequence[Rule],
    spans: Sequence[Span] | None,
    source: str | None,
) -> list[SourceSpan | None]:
    if spans is None or source is None or len(spans) != len(rules):
        return [None] * len(rules)
    return [SourceSpan.from_offsets(source, start, end) for start, end in spans]


def _base_relations(
    database: "Database | None",
    pc_tables: "PCDatabase | None",
) -> dict[str, int]:
    """Relations available without rules: database + pc-table outputs."""
    base: dict[str, int] = {}
    if database is not None:
        for name in database.names():
            base[name] = len(database[name].columns)
    if pc_tables is not None:
        for name, table in pc_tables.tables.items():
            base[name] = len(table.columns)
    return base


def _non_numeric_values(relation: "Relation", column: str) -> list[object]:
    """Values in ``relation.column`` that cannot serve as weights."""
    index = relation.column_index(column)
    return [
        row[index]
        for row in relation
        if isinstance(row[index], bool)
        or not isinstance(row[index], (int, float, Fraction, Rational))
    ]
