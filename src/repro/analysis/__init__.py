"""Static analysis of probabilistic fixpoint programs.

One pass over a parsed program — datalog AST or relational transition
kernel — that runs *before* evaluation and produces:

* a :class:`~repro.analysis.diagnostics.DiagnosticReport` of findings
  with stable codes (``RK001``, ``SF002``, ...), severities
  (error / warning / hint), source spans, and fix suggestions;
* :class:`~repro.analysis.hints.PlanHints` the engine exploits —
  determinism (skip sampling), pc-freeness (memoized kernel), and
  non-absorbing-chain detection for forever-queries.

Entry points: :func:`analyze_source` for raw text (used by ``repro
lint``, the service admission path, and :class:`EngineSession`), and
:func:`analyze_program` / :func:`analyze_kernel` for parsed objects.
The code catalogue lives in ``docs/analysis.md``.
"""

from repro.analysis.analyze import (
    SEMANTICS,
    AnalysisResult,
    analyze_kernel,
    analyze_program,
    analyze_source,
)
from repro.analysis.datalog import check_rules
from repro.analysis.diagnostics import (
    CODES,
    ERROR,
    HINT,
    SEVERITIES,
    WARNING,
    Diagnostic,
    DiagnosticReport,
    SourceSpan,
    severity_of,
)
from repro.analysis.graph import (
    DepEdge,
    DependencyGraph,
    accumulates,
    coupling_edges,
    expression_references,
)
from repro.analysis.hints import PlanHints
from repro.analysis.kernel import check_kernel
from repro.analysis.partition import (
    DEFAULT_EXACT_BUDGET,
    ComponentFacts,
    PartitionPlan,
    PartitionSummary,
    compute_partition_plan,
    partition_diagnostics,
)
from repro.analysis.sarif import SARIF_SCHEMA_URI, SARIF_VERSION, sarif_report

__all__ = [
    "AnalysisResult",
    "CODES",
    "ComponentFacts",
    "DEFAULT_EXACT_BUDGET",
    "DepEdge",
    "DependencyGraph",
    "Diagnostic",
    "DiagnosticReport",
    "ERROR",
    "HINT",
    "PartitionPlan",
    "PartitionSummary",
    "PlanHints",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "SEMANTICS",
    "SEVERITIES",
    "SourceSpan",
    "WARNING",
    "accumulates",
    "analyze_kernel",
    "analyze_program",
    "analyze_source",
    "check_kernel",
    "check_rules",
    "compute_partition_plan",
    "coupling_edges",
    "expression_references",
    "partition_diagnostics",
    "sarif_report",
    "severity_of",
]
