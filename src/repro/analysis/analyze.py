"""Front door of the static analyzer.

:func:`analyze_source` takes the same raw inputs every entry layer
already has — semantics, program text, optional database JSON (or a
decoded :class:`~repro.relational.database.Database`), optional
pc-tables, optional event text — parses them, runs every applicable
check, and returns an :class:`AnalysisResult` bundling the diagnostic
report, the derived :class:`~repro.analysis.hints.PlanHints`, and the
parsed artifacts (so callers that analyze before evaluating never parse
twice).

Parse failures are not exceptions here: they become ``PE001``/``PE002``
diagnostics (with source position when the parser provides one), so the
CLI ``lint`` command and the service's 400 path render syntax errors
and semantic errors uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.analysis.datalog import check_rules
from repro.analysis.diagnostics import DiagnosticReport, SourceSpan
from repro.analysis.hints import PlanHints
from repro.analysis.kernel import check_kernel
from repro.analysis.partition import (
    PartitionPlan,
    compute_partition_plan,
    partition_diagnostics,
)
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.core.events import QueryEvent
    from repro.core.interpretation import Interpretation
    from repro.ctables.pctable import PCDatabase
    from repro.datalog.ast import Program
    from repro.relational.database import Database

SEMANTICS = ("forever", "inflationary", "datalog")


@dataclass
class AnalysisResult:
    """Everything one analysis pass produced."""

    semantics: str
    report: DiagnosticReport
    hints: PlanHints | None = None
    program: "Program | None" = None
    kernel: "Interpretation | None" = None
    database: "Database | None" = None
    pc_tables: "PCDatabase | None" = None
    event: "QueryEvent | None" = None
    partition: PartitionPlan | None = None
    diagnostics_extra: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no error-level diagnostic was found."""
        return not self.report.has_errors

    def as_dict(self) -> dict[str, Any]:
        payload = self.report.as_dict()
        payload["semantics"] = self.semantics
        if self.hints is not None:
            payload["plan_hints"] = self.hints.as_dict()
        if self.partition is not None:
            payload["partition"] = self.partition.as_dict()
        return payload


def analyze_source(
    semantics: str,
    source: str,
    *,
    database: "Database | Mapping[str, Any] | None" = None,
    pc_tables: "PCDatabase | Mapping[str, Any] | None" = None,
    event: "QueryEvent | str | None" = None,
) -> AnalysisResult:
    """Parse and statically analyze one program.

    ``database`` and ``pc_tables`` accept either decoded objects or the
    JSON structures of :mod:`repro.io`; ``event`` accepts a
    :class:`~repro.core.events.TupleIn` or its text form.  All three are
    optional — checks that need them simply do not run.
    """
    if semantics not in SEMANTICS:
        raise ReproError(
            f"unknown semantics {semantics!r}; expected one of {SEMANTICS}"
        )
    report = DiagnosticReport()
    result = AnalysisResult(semantics=semantics, report=report)

    result.database = _decode_database(database, report)
    result.pc_tables = _decode_pc_tables(pc_tables, report)
    result.event = _parse_event(event, report)

    if semantics == "datalog":
        _analyze_datalog(source, result)
    else:
        _analyze_kernel(source, result)
    return result


def _analyze_datalog(source: str, result: AnalysisResult) -> None:
    from repro.datalog.ast import Program
    from repro.datalog.parser import parse_rules

    try:
        rules_and_spans = parse_rules(source)
    except ReproError as error:
        _report_parse_error(result.report, "PE001", error, source)
        return
    rules = [rule for rule, _span in rules_and_spans]
    spans = [span for _rule, span in rules_and_spans]
    result.report.extend(
        check_rules(
            rules,
            source=source,
            spans=spans,
            database=result.database,
            pc_tables=result.pc_tables,
            event=result.event,
        )
    )
    if result.report.has_errors:
        return
    # Error-free rule lists satisfy every invariant Program enforces.
    program = Program(rules)
    program.rule_spans = tuple(spans)
    result.program = program
    result.hints = PlanHints.for_program(program, result.pc_tables)


def _analyze_kernel(source: str, result: AnalysisResult) -> None:
    from repro.relational.parser import parse_interpretation

    try:
        kernel = parse_interpretation(source)
    except ReproError as error:
        code = str(error.details.get("analysis_code") or "PE001")
        _report_parse_error(result.report, code, error, source)
        return
    result.kernel = kernel
    result.report.extend(
        check_kernel(
            kernel,
            source=source,
            spans=kernel.source_spans,
            database=result.database,
            event=result.event,
            semantics=result.semantics,
        )
    )
    if not result.report.has_errors:
        result.hints = PlanHints.for_kernel(
            kernel, event=result.event, semantics=result.semantics
        )
        _attach_partition(result)


def _attach_partition(result: AnalysisResult) -> None:
    """Run the partition planner on an error-free kernel analysis and
    fold its findings into the report and the plan hints."""
    from dataclasses import replace

    if result.kernel is None or result.semantics not in ("forever", "inflationary"):
        return
    plan = compute_partition_plan(
        result.kernel,
        database=result.database,
        event=result.event,
        semantics=result.semantics,
    )
    result.partition = plan
    partition_diagnostics(plan, result.report)
    if result.hints is not None:
        result.hints = replace(result.hints, partition=plan.summary())


def analyze_program(
    program: "Program",
    *,
    database: "Database | None" = None,
    pc_tables: "PCDatabase | None" = None,
    event: "QueryEvent | None" = None,
) -> AnalysisResult:
    """Analyze an already-parsed datalog program."""
    report = check_rules(
        list(program.rules),
        database=database,
        pc_tables=pc_tables,
        event=event,
    )
    result = AnalysisResult(
        semantics="datalog",
        report=report,
        program=program,
        database=database,
        pc_tables=pc_tables,
        event=event,
    )
    if not report.has_errors:
        result.hints = PlanHints.for_program(program, pc_tables)
    return result


def analyze_kernel(
    kernel: "Interpretation",
    *,
    database: "Database | None" = None,
    event: "QueryEvent | None" = None,
    semantics: str = "forever",
) -> AnalysisResult:
    """Analyze an already-parsed transition kernel."""
    report = check_kernel(
        kernel,
        spans=kernel.source_spans,
        database=database,
        event=event,
        semantics=semantics,
    )
    result = AnalysisResult(
        semantics=semantics,
        report=report,
        kernel=kernel,
        database=database,
        event=event,
    )
    if not report.has_errors:
        result.hints = PlanHints.for_kernel(kernel, event=event, semantics=semantics)
        _attach_partition(result)
    return result


# -- input decoding -----------------------------------------------------------


def _decode_database(
    database: "Database | Mapping[str, Any] | None",
    report: DiagnosticReport,
) -> "Database | None":
    from repro.relational.database import Database

    if database is None or isinstance(database, Database):
        return database
    from repro.io import database_from_json

    try:
        return database_from_json(dict(database))
    except ReproError as error:
        report.add("PE001", f"cannot decode the database: {error}")
        return None


def _decode_pc_tables(
    pc_tables: "PCDatabase | Mapping[str, Any] | None",
    report: DiagnosticReport,
) -> "PCDatabase | None":
    from repro.ctables.pctable import PCDatabase

    if pc_tables is None or isinstance(pc_tables, PCDatabase):
        return pc_tables
    from repro.io import pc_database_from_json

    try:
        return pc_database_from_json(dict(pc_tables))
    except ReproError as error:
        report.add("PE001", f"cannot decode the pc-tables: {error}")
        return None


def _parse_event(
    event: "QueryEvent | str | None",
    report: DiagnosticReport,
) -> "QueryEvent | None":
    if event is None or not isinstance(event, str):
        return event
    from repro.core.events import parse_event

    try:
        return parse_event(event)
    except ReproError as error:
        report.add(
            "PE002",
            f"cannot parse the query event: {error}",
            suggestion="events have the form relation(value, ...)",
        )
        return None


def _report_parse_error(
    report: DiagnosticReport, code: str, error: ReproError, source: str
) -> None:
    span = None
    details = error.details
    if "offset" in details:
        offset = int(details["offset"])
        span = SourceSpan.from_offsets(source, offset, offset + 1)
    report.add(code, str(error), span=span)
