"""Plan hints: facts about a program the engine can exploit.

The analyzer derives these once at parse time; the CLI, the service's
:class:`~repro.service.session.EngineSession`, and the runtime's
degradation ladder consult them before choosing an evaluation strategy:

* ``deterministic`` — no repair-key, no pc-variables: one exact run is
  the full answer, sampling is pure overhead (and the MCMC rung of a
  degradation ladder can be skipped outright);
* ``pc_free`` — no pc-table resampling: inflationary evaluation can
  route through the memoized transition kernel;
* ``linear`` — linear datalog (Theorem 4.1 fragment); ``None`` for
  relational kernels, where the notion does not apply;
* ``possibly_non_absorbing`` — the forever-query event relation is
  rewritten probabilistically without accumulating, so event states are
  typically transient and MCMC needs adequate burn-in;
* ``sparse_eligible`` — the query can take the sparse certified rung
  (forever semantics, genuinely probabilistic kernel); ``False`` lets
  the degradation ladder drop that rung up front (``PH006``);
* ``partition`` — the partition planner's event-independent
  :class:`~repro.analysis.partition.PartitionSummary` (``None`` when the
  planner did not run, e.g. datalog semantics); ``repro lint --json``
  and service admission stats report the identical payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.graph import accumulates

if TYPE_CHECKING:
    from repro.analysis.partition import PartitionSummary

if TYPE_CHECKING:
    from repro.core.events import QueryEvent
    from repro.core.interpretation import Interpretation
    from repro.ctables.pctable import PCDatabase
    from repro.datalog.ast import Program


@dataclass(frozen=True)
class PlanHints:
    """Engine-exploitable facts about one prepared program."""

    deterministic: bool = False
    pc_free: bool = True
    linear: bool | None = None
    possibly_non_absorbing: bool = False
    columnar_eligible: bool | None = None
    sparse_eligible: bool | None = None
    partition: "PartitionSummary | None" = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "deterministic": self.deterministic,
            "pc_free": self.pc_free,
            "possibly_non_absorbing": self.possibly_non_absorbing,
        }
        if self.linear is not None:
            payload["linear"] = self.linear
        if self.columnar_eligible is not None:
            payload["columnar_eligible"] = self.columnar_eligible
        if self.sparse_eligible is not None:
            payload["sparse_eligible"] = self.sparse_eligible
        if self.partition is not None:
            payload["partition"] = self.partition.as_dict()
        return payload

    @classmethod
    def for_kernel(
        cls,
        kernel: "Interpretation",
        event: "QueryEvent | None" = None,
        semantics: str = "forever",
    ) -> "PlanHints":
        """Hints for a relational transition kernel."""
        from repro.kernel import kernel_ineligibility

        pc_free = kernel.pc_tables is None or not kernel.pc_tables.variables
        non_absorbing = False
        if event is not None and semantics == "forever":
            from repro.core.events import event_relations

            for relation in sorted(event_relations(event)):
                query = kernel.queries.get(relation)
                if (
                    query is not None
                    and not query.is_deterministic()
                    and not accumulates(query, relation)
                ):
                    non_absorbing = True
                    break
        deterministic = kernel.is_deterministic()
        return cls(
            deterministic=deterministic,
            pc_free=pc_free,
            linear=None,
            possibly_non_absorbing=non_absorbing,
            columnar_eligible=not kernel_ineligibility(kernel),
            # The sparse rung answers Definition 3.2 long-run questions;
            # a deterministic kernel's chain is a trajectory the exact
            # rung finishes outright, so the numeric detour buys nothing.
            sparse_eligible=semantics == "forever" and not deterministic,
        )

    @classmethod
    def for_program(
        cls,
        program: "Program",
        pc_tables: "PCDatabase | None" = None,
    ) -> "PlanHints":
        """Hints for a probabilistic datalog program."""
        pc_free = pc_tables is None or not pc_tables.variables
        return cls(
            deterministic=not program.has_probabilistic_rules() and pc_free,
            pc_free=pc_free,
            linear=program.is_linear(),
            possibly_non_absorbing=False,
        )
