"""Static checks over relational transition kernels (Definition 3.1).

A kernel maps each relation to the algebra expression computing its next
value.  The checks mirror :meth:`Interpretation.check_schema` but emit
*every* finding instead of raising on the first, attach per-node codes
(``AR002`` unknown relation, ``RK001``/``RK002`` repair-key columns,
``AR004`` other shape errors), and add plan-level analyses that need no
data at all: negative dependency cycles, inflationary shape, dead
relations relative to the event, and absorption of the event relation.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.analysis.diagnostics import DiagnosticReport, SourceSpan
from repro.analysis.graph import DependencyGraph, accumulates
from repro.relational.algebra import (
    Difference,
    Expression,
    ExtendedProject,
    Literal,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    RepairKey,
    Select,
    Union,
)

if TYPE_CHECKING:
    from repro.core.events import QueryEvent
    from repro.core.interpretation import Interpretation
    from repro.relational.database import Database
    from repro.relational.relation import Relation

Span = tuple[int, int]


def check_kernel(
    kernel: "Interpretation",
    *,
    source: str | None = None,
    spans: Mapping[str, Span] | None = None,
    database: "Database | None" = None,
    event: "QueryEvent | None" = None,
    semantics: str = "forever",
) -> DiagnosticReport:
    """Analyze a transition kernel and return every finding.

    ``spans`` maps relation names to their assignment's character range
    in ``source``.  Schema- and data-dependent checks (column existence,
    result schemas, weight types) run only when ``database`` is given;
    the dependency-graph and shape checks always run.
    """
    report = DiagnosticReport()
    resolved_spans = _resolve_spans(kernel, spans, source)

    if database is not None:
        _check_schemas(kernel, resolved_spans, database, report)

    _check_dependency_shape(kernel, resolved_spans, semantics, report)

    if event is not None:
        _check_event(kernel, database, event, semantics, report)

    _emit_plan_hints(kernel, semantics, report)
    return report


# -- schema checks (need a database) -----------------------------------------


def _check_schemas(
    kernel: "Interpretation",
    spans: Mapping[str, SourceSpan],
    database: "Database",
    report: DiagnosticReport,
) -> None:
    schema = dict(database.schema())
    for name in sorted(kernel.queries):
        span = spans.get(name)
        if name not in schema:
            report.add(
                "AR002",
                f"kernel rewrites relation {name!r}, which is missing from "
                "the database",
                span=span,
                subject=name,
                suggestion="add the relation to the initial database",
            )
        expression = kernel.queries[name]
        columns = _expression_columns(expression, schema, name, span, report)
        _check_weight_values(expression, schema, database, name, span, report)
        if columns is None or name not in schema:
            continue
        if columns != schema[name]:
            report.add(
                "AR003",
                f"the query for {name!r} produces columns {columns!r}, but "
                f"the relation has columns {schema[name]!r} "
                "(Definition 3.1 requires matching schemas)",
                span=span,
                subject=name,
                suggestion="project or rename the result to the relation's columns",
            )
    for name in kernel.pc_relation_names():
        if name not in schema:
            report.add(
                "AR002",
                f"pc-table relation {name!r} is missing from the database; "
                "include an initial instantiation in the start state",
                subject=name,
            )


def _expression_columns(
    expression: Expression,
    schema: Mapping[str, tuple[str, ...]],
    relation: str,
    span: SourceSpan | None,
    report: DiagnosticReport,
) -> tuple[str, ...] | None:
    """Output columns of ``expression``, or ``None`` when a subexpression
    is ill-formed; every problem found is reported with its own code."""

    def walk(node: Expression) -> tuple[str, ...] | None:
        if isinstance(node, RelationRef):
            if node.name not in schema:
                report.add(
                    "AR002",
                    f"the query for {relation!r} references unknown relation "
                    f"{node.name!r}",
                    span=span,
                    subject=node.name,
                    suggestion="add the relation to the database or fix the name",
                )
                return None
            return tuple(schema[node.name])
        if isinstance(node, Literal):
            return node.relation.columns
        if isinstance(node, RepairKey):
            columns = walk(node.child)
            if columns is None:
                return None
            ok = True
            missing_key = sorted(set(node.key) - set(columns))
            if missing_key:
                report.add(
                    "RK001",
                    f"repair-key key columns {missing_key!r} are absent from "
                    f"its input columns {list(columns)!r}",
                    span=span,
                    subject=relation,
                    suggestion="key attributes must be columns of the input",
                )
                ok = False
            if node.weight is not None and node.weight not in columns:
                report.add(
                    "RK002",
                    f"repair-key weight column {node.weight!r} is absent from "
                    f"its input columns {list(columns)!r}",
                    span=span,
                    subject=relation,
                    suggestion="weight must be an input column, or omit @weight "
                    "for uniform choice",
                )
                ok = False
            return columns if ok else None
        children = node.children()
        child_columns = [walk(child) for child in children]
        if any(columns is None for columns in child_columns):
            return None
        # Leaf-free nodes with resolved children: defer to the node's own
        # schema inference, translating its AlgebraError into AR004.
        probe = {f"__child_{i}": columns for i, columns in enumerate(child_columns)}
        rebuilt = _with_children(
            node, [RelationRef(f"__child_{i}") for i in range(len(children))]
        )
        try:
            return rebuilt.output_columns(probe)
        except Exception as error:  # AlgebraError, but stay defensive
            report.add(
                "AR004",
                f"ill-formed expression in the query for {relation!r}: {error}",
                span=span,
                subject=relation,
            )
            return None

    return walk(expression)


def _with_children(node: Expression, replacements: list[Expression]) -> Expression:
    """A structural copy of ``node`` with its children swapped out, used
    to probe one operator's schema inference in isolation."""
    if isinstance(node, Select):
        return Select(replacements[0], node.predicate)
    if isinstance(node, Project):
        return Project(replacements[0], node.columns)
    if isinstance(node, Rename):
        return Rename(replacements[0], node.mapping)
    if isinstance(node, ExtendedProject):
        return ExtendedProject(replacements[0], node.outputs)
    if isinstance(node, (Union, Difference, Product, NaturalJoin)):
        return type(node)(replacements[0], replacements[1])
    return node


def _check_weight_values(
    expression: Expression,
    schema: Mapping[str, tuple[str, ...]],
    database: "Database",
    relation: str,
    span: SourceSpan | None,
    report: DiagnosticReport,
) -> None:
    """RK004: trace every repair-key weight column back to base relations
    and check the stored values are numeric.

    Tracing follows renamings and stops at projections/joins that keep
    the column; selections are *not* evaluated, so a selection that
    filters out the offending rows can cause a false positive — the
    documented trade-off of a static check.
    """
    for node in _walk_nodes(expression):
        if not isinstance(node, RepairKey) or node.weight is None:
            continue
        for origin_relation, origin_column in _column_origins(
            node.child, node.weight, schema
        ):
            if origin_relation not in database.names():
                continue
            base = database[origin_relation]
            if origin_column not in base.columns:
                continue
            bad = _non_numeric_values(base, origin_column)
            if bad:
                report.add(
                    "RK004",
                    f"repair-key weight column {node.weight!r} in the query "
                    f"for {relation!r} traces to column {origin_column!r} of "
                    f"{origin_relation!r}, which holds non-numeric values "
                    f"(e.g. {bad[0]!r})",
                    span=span,
                    subject=origin_relation,
                    suggestion="weight columns must hold rational numbers",
                )
                return


def _walk_nodes(expression: Expression) -> Iterator[Expression]:
    yield expression
    for child in expression.children():
        yield from _walk_nodes(child)


def _column_origins(
    expression: Expression,
    column: str,
    schema: Mapping[str, tuple[str, ...]],
) -> set[tuple[str, str]]:
    """Base ``(relation, column)`` pairs the given output column of
    ``expression`` copies values from (empty when untraceable, e.g. a
    constant introduced by an extended projection)."""
    if isinstance(expression, RelationRef):
        if column in schema.get(expression.name, ()):
            return {(expression.name, column)}
        return set()
    if isinstance(expression, Rename):
        inverse = {new: old for old, new in expression.mapping.items()}
        if column in inverse:
            return _column_origins(expression.child, inverse[column], schema)
        if column in expression.mapping:
            return set()  # the old name was renamed away
        return _column_origins(expression.child, column, schema)
    if isinstance(expression, (Project, Select, RepairKey)):
        return _column_origins(expression.child, column, schema)
    if isinstance(expression, ExtendedProject):
        for name, (kind, value) in expression.outputs:
            if name == column and kind == "col":
                return _column_origins(expression.child, value, schema)
        return set()
    if isinstance(
        expression, (Union, Difference, Product, NaturalJoin)
    ):
        return _column_origins(expression.left, column, schema) | _column_origins(
            expression.right, column, schema
        )
    return set()


def _non_numeric_values(relation: "Relation", column: str) -> list[object]:
    index = relation.column_index(column)
    return [
        row[index]
        for row in relation
        if isinstance(row[index], bool)
        or not isinstance(row[index], (int, float, Fraction, Rational))
    ]


# -- dependency / shape checks (no database needed) ---------------------------


def _check_dependency_shape(
    kernel: "Interpretation",
    spans: Mapping[str, SourceSpan],
    semantics: str,
    report: DiagnosticReport,
) -> None:
    graph = DependencyGraph.from_queries(kernel.queries)
    negative = graph.negative_cycle_members()
    for name in sorted(negative & set(kernel.queries)):
        report.add(
            "ST001",
            f"relation {name!r} depends negatively on itself (through a "
            "difference); the induced fixpoint is non-monotone and need "
            "not be order-independent",
            span=spans.get(name),
            subject=name,
            suggestion="stratify: compute the subtracted relation in a "
            "separate phase",
        )
    if semantics == "inflationary":
        for name in sorted(kernel.queries):
            expression = kernel.queries[name]
            if not accumulates(expression, name):
                report.add(
                    "IN001",
                    f"the query for {name!r} is not of the inflationary shape "
                    f"{name} ∪ …; Definition 3.4 is then only checked at run "
                    "time (NotInflationaryError on violation)",
                    span=spans.get(name),
                    subject=name,
                    suggestion=f"write the query as {name} ∪ (…) to guarantee "
                    "inflationary steps",
                )


def _check_event(
    kernel: "Interpretation",
    database: "Database | None",
    event: "QueryEvent",
    semantics: str,
    report: DiagnosticReport,
) -> None:
    from repro.core.events import event_atoms, event_relations

    updated = set(kernel.updated_relations())
    for atom in event_atoms(event):
        relation = atom.relation
        in_database = database is not None and relation in database.names()
        if relation not in updated and database is not None and not in_database:
            report.add(
                "DD002",
                f"event relation {relation!r} is neither rewritten by the "
                "kernel nor present in the database; the event is "
                "constantly false",
                subject=relation,
                suggestion="query a relation of the kernel's schema",
            )
        elif in_database:
            assert database is not None
            arity = len(database[relation].columns)
            if len(atom.row) != arity:
                report.add(
                    "DD003",
                    f"event {atom!r} has arity {len(atom.row)} but relation "
                    f"{relation!r} has arity {arity}; the event is "
                    "constantly false",
                    subject=relation,
                )

    relations = sorted(event_relations(event))
    graph = DependencyGraph.from_queries(kernel.queries)
    useful = graph.reachable_from(relations)
    described = (
        repr(relations[0]) if len(relations) == 1
        else "{" + ", ".join(repr(r) for r in relations) + "}"
    )
    for name in sorted(kernel.queries):
        expression = kernel.queries[name]
        if isinstance(expression, RelationRef) and expression.name == name:
            continue  # identity lines are documentation, not work
        if name not in useful:
            report.add(
                "DD004",
                f"relation {name!r} is rewritten by the kernel but the event "
                f"relation {described} never depends on it; it cannot "
                "influence the answer yet inflates the explicit chain",
                subject=name,
                suggestion="drop the query or make it an identity line",
            )

    if semantics == "forever":
        for relation in relations:
            query = kernel.queries.get(relation)
            if (
                query is not None
                and not query.is_deterministic()
                and not accumulates(query, relation)
            ):
                report.add(
                    "PH003",
                    f"the event relation {relation!r} is rewritten "
                    "probabilistically without accumulating its old value, "
                    "so event states are typically transient (non-absorbing "
                    "chain): the forever-query answer is the event's "
                    "long-run frequency, and MCMC estimates need adequate "
                    "burn-in",
                    subject=relation,
                )


def _emit_plan_hints(
    kernel: "Interpretation", semantics: str, report: DiagnosticReport
) -> None:
    if kernel.is_deterministic():
        report.add(
            "PH001",
            "the kernel makes no probabilistic choice: the chain is a "
            "deterministic orbit and a single exact run computes the answer; "
            "sampling is unnecessary",
        )
    pc_free = kernel.pc_tables is None or not kernel.pc_tables.variables
    if semantics == "inflationary" and pc_free:
        report.add(
            "PH002",
            "pc-free inflationary kernel: transition results can be memoized "
            "across runs (the TransitionCache fixpoint path applies)",
        )
    from repro.kernel import kernel_ineligibility

    reasons = kernel_ineligibility(kernel)
    if reasons:
        report.add(
            "PH005",
            "the columnar backend cannot compile this kernel; "
            "backend='columnar' requests fall back to the frozenset "
            "interpreter (" + "; ".join(reasons) + ")",
            suggestion="restrict selections to column/value (in)equality "
            "predicates and keep pc-tables out of fixpoint kernels",
        )
    if semantics == "forever" and kernel.is_deterministic():
        report.add(
            "PH006",
            "deterministic kernels induce a one-trajectory chain the exact "
            "rung finishes outright; the sparse certified rung is skipped "
            "on degradation ladders (no iterative solve can beat the "
            "closed-form answer)",
        )


# -- helpers ------------------------------------------------------------------


def _resolve_spans(
    kernel: "Interpretation",
    spans: Mapping[str, Span] | None,
    source: str | None,
) -> dict[str, SourceSpan]:
    if spans is None or source is None:
        return {}
    return {
        name: SourceSpan.from_offsets(source, start, end)
        for name, (start, end) in spans.items()
        if name in kernel.queries
    }
