"""Structured diagnostics emitted by the static analyzer.

Every finding is a :class:`Diagnostic` with a *stable* code (``RK001``,
``SF002``, ...) drawn from the :data:`CODES` registry, which fixes the
code's severity and short title in one place.  Codes never change
meaning once published; new checks get new codes.  The full catalogue
with examples lives in ``docs/analysis.md``.

Code families:

``PE``
    Parse errors (program text or query event).
``AR``
    Arity and schema consistency (Definition 3.1 compatibility).
``SF``
    Safety / range-restriction of datalog rules.
``RK``
    ``repair-key`` well-formedness (Section 2 side conditions).
``ST`` / ``IN``
    Dependency-graph shape: negative cycles, non-inflationary queries.
``DD``
    Dead code relative to the query event.
``PH``
    Plan hints and plan-level warnings the engine can exploit.
``PP``
    Partition-planner findings: static program decomposition into
    provenance-independent components (Section 5.1 as a planner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import line_and_column

ERROR = "error"
WARNING = "warning"
HINT = "hint"

SEVERITIES: tuple[str, ...] = (ERROR, WARNING, HINT)

#: Registry of every published diagnostic code: ``code -> (severity, title)``.
CODES: dict[str, tuple[str, str]] = {
    "PE001": (ERROR, "program parse error"),
    "PE002": (ERROR, "event parse error"),
    "AR001": (ERROR, "conflicting predicate arities"),
    "AR002": (ERROR, "unknown relation"),
    "AR003": (ERROR, "result schema mismatch"),
    "AR004": (ERROR, "ill-formed algebra expression"),
    "SF001": (ERROR, "unsafe rule"),
    "SF002": (ERROR, "unbound weight variable"),
    "SF003": (ERROR, "key variable not in head"),
    "SF004": (ERROR, "anonymous variable in head"),
    "SF005": (ERROR, "IDB/EDB name clash"),
    "RK001": (ERROR, "repair-key key column missing"),
    "RK002": (ERROR, "repair-key weight column missing"),
    "RK003": (ERROR, "repair-key key/weight overlap"),
    "RK004": (ERROR, "non-numeric weight column"),
    "DD003": (ERROR, "event arity mismatch"),
    "ST001": (WARNING, "negative dependency cycle"),
    "IN001": (WARNING, "possibly non-inflationary query"),
    "DD001": (WARNING, "dead rule"),
    "DD002": (WARNING, "unknown event relation"),
    "DD004": (WARNING, "relation cannot influence the event"),
    "PH003": (WARNING, "possibly non-absorbing chain"),
    "PH001": (HINT, "deterministic program"),
    "PH002": (HINT, "pc-free kernel"),
    "PH004": (HINT, "linear datalog program"),
    "PH005": (HINT, "kernel not eligible for the columnar backend"),
    "PH006": (HINT, "program not eligible for the sparse certified rung"),
    "PP001": (HINT, "program splits into independent components"),
    "PP002": (WARNING, "component state bound exceeds the exact budget"),
    "PP003": (WARNING, "cross-component negation prevents a finer split"),
    "PP004": (WARNING, "shared pc-table variables couple components"),
    "PP005": (HINT, "event confined to one component"),
}


def severity_of(code: str) -> str:
    """Severity of a registered diagnostic code."""
    try:
        return CODES[code][0]
    except KeyError:
        raise ValueError(f"unknown diagnostic code {code!r}") from None


@dataclass(frozen=True)
class SourceSpan:
    """Half-open character range ``[start, end)`` in the program text,
    with the 1-based line/column of ``start`` precomputed for display."""

    start: int
    end: int
    line: int = 1
    column: int = 1

    @classmethod
    def from_offsets(cls, source: str, start: int, end: int) -> "SourceSpan":
        line, column = line_and_column(source, start)
        return cls(start=start, end=max(start, end), line=line, column=column)

    def as_dict(self) -> dict[str, int]:
        return {
            "start": self.start,
            "end": self.end,
            "line": self.line,
            "column": self.column,
        }


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``subject`` names the program element the finding is about (a
    predicate, relation, or variable) so callers can group findings
    without parsing the message; ``suggestion`` is a short imperative
    fix hint rendered after the message.
    """

    code: str
    severity: str
    message: str
    span: SourceSpan | None = None
    subject: str | None = None
    suggestion: str | None = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = self.span.as_dict()
        if self.subject is not None:
            payload["subject"] = self.subject
        if self.suggestion is not None:
            payload["suggestion"] = self.suggestion
        return payload

    def render(self, name: str = "<program>") -> str:
        """One ``file:line:col: severity CODE: message`` line."""
        position = f"{self.span.line}:{self.span.column}" if self.span else "-"
        line = f"{name}:{position}: {self.severity} {self.code}: {self.message}"
        if self.suggestion:
            line += f" (fix: {self.suggestion})"
        return line


class DiagnosticReport:
    """An ordered collection of diagnostics with severity roll-ups."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diagnostics: list[Diagnostic] = list(diagnostics)

    def add(
        self,
        code: str,
        message: str,
        *,
        span: SourceSpan | None = None,
        subject: str | None = None,
        suggestion: str | None = None,
    ) -> Diagnostic:
        """Append a finding; severity comes from the :data:`CODES` registry."""
        diagnostic = Diagnostic(
            code=code,
            severity=severity_of(code),
            message=message,
            span=span,
            subject=subject,
            suggestion=suggestion,
        )
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "DiagnosticReport") -> None:
        self._diagnostics.extend(other)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == WARNING)

    @property
    def hints(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == HINT)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self._diagnostics)

    def codes(self) -> tuple[str, ...]:
        """All distinct codes present, in first-appearance order."""
        seen: dict[str, None] = {}
        for diagnostic in self._diagnostics:
            seen.setdefault(diagnostic.code, None)
        return tuple(seen)

    def error_codes(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for diagnostic in self._diagnostics:
            if diagnostic.severity == ERROR:
                seen.setdefault(diagnostic.code, None)
        return tuple(seen)

    def as_dict(self) -> dict[str, object]:
        return {
            "diagnostics": [d.as_dict() for d in self._diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "hints": len(self.hints),
        }

    def render_lines(self, name: str = "<program>") -> list[str]:
        return [d.render(name) for d in self._diagnostics]
