"""Predicate / relation dependency graphs with edge polarity.

For a datalog program the nodes are predicates and every ``head :- body``
rule contributes positive edges ``head -> body_predicate``.  For a
relational kernel the nodes are relation names and ``R := e`` contributes
an edge ``R -> S`` for every relation ``S`` referenced by ``e``; edges
that originate inside the *right* subtree of a ``Difference`` node are
negative (the classic negation-as-difference polarity), and edges that
pass through a ``repair-key`` node are marked probabilistic.

A relation sitting on a cycle with a negative edge depends
*non-monotonically* on itself — the fixpoint the while-language computes
for it is not guaranteed to be order-independent, which is exactly what
stratification rules out in datalog with negation (cf. the stable-
negation treatment in Alviano et al.'s generative-datalog follow-up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping, Sequence

from repro.datalog.ast import Rule
from repro.relational.algebra import (
    Difference,
    Expression,
    RelationRef,
    RepairKey,
    Union,
)


@dataclass(frozen=True)
class DepEdge:
    """A dependency ``src -> dst``: computing ``src`` reads ``dst``."""

    src: str
    dst: str
    positive: bool = True
    probabilistic: bool = False


class DependencyGraph:
    """Directed multigraph over predicate/relation names."""

    def __init__(self, nodes: Iterable[str], edges: Iterable[DepEdge]) -> None:
        self.nodes: frozenset[str] = frozenset(nodes)
        self.edges: tuple[DepEdge, ...] = tuple(edges)
        self._successors: dict[str, set[str]] = {node: set() for node in self.nodes}
        for edge in self.edges:
            self._successors.setdefault(edge.src, set()).add(edge.dst)
            self._successors.setdefault(edge.dst, set())

    @classmethod
    def from_rules(cls, rules: Sequence[Rule]) -> "DependencyGraph":
        nodes: set[str] = set()
        edges: list[DepEdge] = []
        for rule in rules:
            nodes.add(rule.head.predicate)
            probabilistic = rule.is_probabilistic()
            for atom in rule.body:
                nodes.add(atom.predicate)
                edges.append(
                    DepEdge(
                        src=rule.head.predicate,
                        dst=atom.predicate,
                        positive=True,
                        probabilistic=probabilistic,
                    )
                )
        return cls(nodes, edges)

    @classmethod
    def from_queries(cls, queries: Mapping[str, Expression]) -> "DependencyGraph":
        nodes: set[str] = set(queries)
        edges: list[DepEdge] = []
        for name, expression in queries.items():
            for dst, positive, probabilistic in _references(expression):
                nodes.add(dst)
                edges.append(
                    DepEdge(src=name, dst=dst, positive=positive, probabilistic=probabilistic)
                )
        return cls(nodes, edges)

    def reachable_from(self, starts: Iterable[str]) -> set[str]:
        """All nodes reachable from ``starts`` along dependency edges
        (including the start nodes themselves, when present)."""
        frontier = [node for node in starts if node in self._successors]
        reached = set(frontier)
        while frontier:
            node = frontier.pop()
            for successor in self._successors.get(node, ()):
                if successor not in reached:
                    reached.add(successor)
                    frontier.append(successor)
        return reached

    def strongly_connected_components(self) -> list[frozenset[str]]:
        """Tarjan's algorithm, iterative so deep chains cannot overflow
        the recursion limit."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[frozenset[str]] = []
        counter = 0

        for root in sorted(self._successors):
            if root in index:
                continue
            work: list[tuple[str, "list[str]"]] = [(root, sorted(self._successors[root]))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                while successors:
                    successor = successors.pop()
                    if successor not in index:
                        index[successor] = lowlink[successor] = counter
                        counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, sorted(self._successors[successor])))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        return components

    def negative_cycle_members(self) -> set[str]:
        """Nodes of every cycle that contains a negative edge.

        A negative edge ``u -> v`` lies on a cycle exactly when ``u`` and
        ``v`` belong to the same strongly connected component (a negative
        self-loop counts: its endpoint forms a singleton SCC with itself
        reachable)."""
        component_of: dict[str, frozenset[str]] = {}
        for component in self.strongly_connected_components():
            for node in component:
                component_of[node] = component
        members: set[str] = set()
        for edge in self.edges:
            if edge.positive:
                continue
            if edge.src == edge.dst:
                members.add(edge.src)
                continue
            if component_of.get(edge.src) is component_of.get(edge.dst):
                members.update(component_of[edge.src])
        return members


def _references(
    expression: Expression,
    positive: bool = True,
    probabilistic: bool = False,
) -> list[tuple[str, bool, bool]]:
    """``(relation, polarity, under-repair-key)`` triples for every
    relation reference inside ``expression``."""
    found: list[tuple[str, bool, bool]] = []
    if isinstance(expression, RelationRef):
        found.append((expression.name, positive, probabilistic))
    elif isinstance(expression, Difference):
        found.extend(_references(expression.left, positive, probabilistic))
        found.extend(_references(expression.right, not positive, probabilistic))
    elif isinstance(expression, RepairKey):
        found.extend(_references(expression.child, positive, True))
    else:
        for child in _children(expression):
            found.extend(_references(child, positive, probabilistic))
    return found


def _children(expression: Expression) -> list[Expression]:
    children: list[Expression] = []
    for attribute in ("child", "left", "right"):
        value = getattr(expression, attribute, None)
        if isinstance(value, Expression):
            children.append(value)
    return children


def expression_references(
    expression: Expression,
) -> list[tuple[str, bool, bool]]:
    """``(relation, polarity, under-repair-key)`` triples for every
    relation reference inside ``expression`` — the public face of the
    edge walk :meth:`DependencyGraph.from_queries` performs, used by the
    partition planner to classify couplings without building a graph."""
    return _references(expression)


def coupling_edges(
    queries: Mapping[str, Expression], dynamic: AbstractSet[str]
) -> list[DepEdge]:
    """Dependency edges between *dynamic* relations.

    The partition planner treats these as undirected couplings: when the
    query for one rewritten relation reads another rewritten relation
    (any polarity, through any operator), the two must be evaluated in
    the same component — their per-step values are not independent.
    References to relations outside ``dynamic`` (static relations the
    kernel never rewrites) are dropped: a shared read-only relation
    never correlates two components."""
    edges: list[DepEdge] = []
    for name in sorted(queries):
        if name not in dynamic:
            continue
        for dst, positive, probabilistic in _references(queries[name]):
            if dst in dynamic and dst != name:
                edges.append(
                    DepEdge(
                        src=name,
                        dst=dst,
                        positive=positive,
                        probabilistic=probabilistic,
                    )
                )
    return edges


def accumulates(expression: Expression, name: str) -> bool:
    """True when ``expression`` is syntactically of the inflationary
    shape ``name ∪ ...`` — it contains the old value of ``name`` as a
    top-level union operand, so every transition can only add tuples."""
    if isinstance(expression, RelationRef):
        return expression.name == name
    if isinstance(expression, Union):
        return accumulates(expression.left, name) or accumulates(expression.right, name)
    return False
