"""SARIF 2.1.0 rendering of analyzer reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs (GitHub code scanning, VS
Code SARIF viewer, ...) ingest.  One analyzer run maps onto it directly:

* every registry code becomes a ``reportingDescriptor`` (rule) with a
  stable ``id`` — the registry guarantees codes never change meaning;
* every :class:`~repro.analysis.diagnostics.Diagnostic` becomes a
  ``result`` with ``ruleId``, a SARIF level (``error`` / ``warning`` /
  ``note`` for hints), the message, and — when the finding carries a
  source span — a physical location with a 1-based region.

``repro lint --sarif`` emits this document; CI runs it over
``examples/programs/`` and uploads the artifact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.analysis.diagnostics import CODES, ERROR, WARNING, Diagnostic

if TYPE_CHECKING:
    from repro.analysis.analyze import AnalysisResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-lint"
_INFO_URI = "https://github.com/paper-repro/repro"

#: Registry severity -> SARIF ``level``.
_LEVELS = {ERROR: "error", WARNING: "warning"}


def _rule_descriptor(code: str) -> dict[str, Any]:
    severity, title = CODES[code]
    return {
        "id": code,
        "name": code,
        "shortDescription": {"text": title},
        "defaultConfiguration": {"level": _LEVELS.get(severity, "note")},
        "helpUri": f"{_INFO_URI}/blob/main/docs/analysis.md#{code.lower()}",
    }


def _result(diagnostic: Diagnostic, artifact_uri: str) -> dict[str, Any]:
    message = diagnostic.message
    if diagnostic.suggestion:
        message += f" (fix: {diagnostic.suggestion})"
    payload: dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS.get(diagnostic.severity, "note"),
        "message": {"text": message},
    }
    location: dict[str, Any] = {
        "physicalLocation": {"artifactLocation": {"uri": artifact_uri}}
    }
    if diagnostic.span is not None:
        location["physicalLocation"]["region"] = {
            "startLine": diagnostic.span.line,
            "startColumn": diagnostic.span.column,
        }
    payload["locations"] = [location]
    if diagnostic.subject is not None:
        payload["properties"] = {"subject": diagnostic.subject}
    return payload


def sarif_report(
    result: "AnalysisResult",
    *,
    artifact_uri: str = "<program>",
    tool_version: str | None = None,
) -> dict[str, Any]:
    """One SARIF 2.1.0 log document for one analysis run.

    The rule table always lists the *entire* registry (sorted by code),
    not just the codes that fired — stable ids are the contract scanning
    UIs key their state on.
    """
    driver: dict[str, Any] = {
        "name": _TOOL_NAME,
        "informationUri": _INFO_URI,
        "rules": [_rule_descriptor(code) for code in sorted(CODES)],
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "artifacts": [{"location": {"uri": artifact_uri}}],
                "results": [
                    _result(diagnostic, artifact_uri)
                    for diagnostic in result.report
                ],
            }
        ],
    }
