"""Partition planner: static program decomposition (Section 5.1).

The paper's provenance-based partitioning observes that a forever-query
over independent sub-programs factorizes: the induced Markov chain is a
*product* chain, so the event probability can be computed per component
and recombined by independence instead of exploring the product state
space.  The dynamic form of that optimisation lives in
:mod:`repro.core.evaluation.partitioning` (tuple-level provenance
classes discovered at run time).  This module is its *static*
counterpart: a pure analysis over the kernel's dependency structure
that decides, **before evaluation starts**, how a program splits and
what each part will cost.

Terminology
-----------

dynamic relation
    A relation the kernel actually rewrites: a non-identity query
    (``R := R`` lines are documentation, not work) or an attached
    pc-table relation (re-instantiated every step).

component
    A connected component of the undirected coupling graph over dynamic
    relations.  Two dynamic relations couple when one's query references
    the other (any polarity — a negative reference correlates values
    just as a positive one does) or when their pc-tables share random
    variables.  *Static* relations never couple components: a shared
    read-only input is the same constant in every world.

Every claim the planner makes is checkable statically:

* components share no repair-key provenance by construction (a
  repair-key choice made inside one component's queries is invisible to
  the other components' queries);
* the per-component state bound is a sound over-approximation of the
  reachable sub-chain (see ``_relation_bound``), provided no query
  references a dynamic relation negatively — difference is antitone in
  its right operand, so the support fixpoint would not over-approximate;
  bounds are disabled (``None``) in that case;
* recombination by independence is exact for the product chain whenever
  each component's own Cesàro limit exists (always for aperiodic
  components, e.g. lazy kernels); the parity gates in
  ``tests/runtime/test_partition_exec.py`` and ``bench_partition``
  enforce bit-identity against whole-program evaluation.

Findings are published as ``PP0xx`` diagnostics (catalogue in
``docs/analysis.md``); the machine-facing summary rides on
:class:`~repro.analysis.hints.PlanHints` into ``repro lint --json`` and
the service admission stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.graph import coupling_edges, expression_references
from repro.relational.algebra import (
    Difference,
    Expression,
    ExtendedProject,
    Literal,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    RepairKey,
    Select,
    Union,
    evaluate,
)

if TYPE_CHECKING:
    from repro.core.events import QueryEvent, TupleIn
    from repro.core.interpretation import Interpretation
    from repro.relational.database import Database
    from repro.relational.relation import Relation

#: Default exact-rung state budget the planner judges bounds against —
#: the CLI's ``forever --max-states`` default (``DEFAULT_MAX_STATES``).
DEFAULT_EXACT_BUDGET = 20_000

#: State bounds larger than this are reported as ``None`` (effectively
#: unbounded: no exact budget in this codebase comes anywhere near it).
_BOUND_CAP = 10**15

#: A relation whose support exceeds this many rows gets no subset bound
#: (``2**n`` would blow past :data:`_BOUND_CAP` anyway).
_SUBSET_BOUND_MAX_ROWS = 50

_SUPPORT_MAX_ITERATIONS = 512
_SUPPORT_MAX_ROWS = 100_000


@dataclass(frozen=True)
class ComponentFacts:
    """Abstract facts about one independent component of a program.

    All facts are derived statically; ``state_bound`` additionally needs
    the initial database (``None`` means the planner could not bound the
    component — never that the component is small).
    """

    index: int
    name: str
    members: tuple[str, ...]
    footprint: tuple[str, ...]
    repair_keys: int
    deterministic: bool
    pc_free: bool
    sparse_eligible: bool
    columnar_eligible: bool
    state_bound: int | None
    contains_event: bool | None = None

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "members": list(self.members),
            "footprint": list(self.footprint),
            "repair_keys": self.repair_keys,
            "deterministic": self.deterministic,
            "pc_free": self.pc_free,
            "sparse_eligible": self.sparse_eligible,
            "columnar_eligible": self.columnar_eligible,
            "state_bound": self.state_bound,
        }
        if self.contains_event is not None:
            payload["contains_event"] = self.contains_event
        return payload


@dataclass(frozen=True)
class PartitionSummary:
    """The event-independent distillation of a plan for ``PlanHints``.

    Deliberately excludes everything the query event contributes, so the
    summary a ``repro lint --json`` run reports matches the one service
    admission (which sees no event) attaches to its stats bit-for-bit.
    """

    components: int
    splittable: bool
    bounded: bool
    exact_components: int
    oversized_components: int
    max_state_bound: int | None

    def as_dict(self) -> dict[str, Any]:
        return {
            "components": self.components,
            "splittable": self.splittable,
            "bounded": self.bounded,
            "exact_components": self.exact_components,
            "oversized_components": self.oversized_components,
            "max_state_bound": self.max_state_bound,
        }


@dataclass(frozen=True)
class PartitionPlan:
    """The planner's full output for one program."""

    semantics: str
    components: tuple[ComponentFacts, ...]
    exact_budget: int
    bounded: bool
    negation_bridges: tuple[tuple[str, str], ...] = ()
    pc_couplings: tuple[tuple[str, str], ...] = ()
    event_relation: str | None = None
    event_component: str | None = None

    @property
    def splittable(self) -> bool:
        return len(self.components) >= 2

    def component_of(self, relation: str) -> ComponentFacts | None:
        """The component whose *members* include ``relation``."""
        for component in self.components:
            if relation in component.members:
                return component
        return None

    def summary(self) -> PartitionSummary:
        bounds = [c.state_bound for c in self.components]
        known = [b for b in bounds if b is not None]
        return PartitionSummary(
            components=len(self.components),
            splittable=self.splittable,
            bounded=self.bounded,
            exact_components=sum(
                1 for b in bounds if b is not None and b <= self.exact_budget
            ),
            oversized_components=sum(
                1 for b in bounds if b is not None and b > self.exact_budget
            ),
            max_state_bound=max(known) if known and len(known) == len(bounds) else None,
        )

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "semantics": self.semantics,
            "splittable": self.splittable,
            "exact_budget": self.exact_budget,
            "bounded": self.bounded,
            "components": [c.as_dict() for c in self.components],
        }
        if self.negation_bridges:
            payload["negation_bridges"] = [list(pair) for pair in self.negation_bridges]
        if self.pc_couplings:
            payload["pc_couplings"] = [list(pair) for pair in self.pc_couplings]
        if self.event_relation is not None:
            payload["event_relation"] = self.event_relation
            payload["event_component"] = self.event_component
        return payload

    def render_lines(self) -> list[str]:
        """Human-readable plan, one line per component, for lint output."""
        lines = [
            f"partition: {len(self.components)} component(s), "
            f"splittable={str(self.splittable).lower()}, "
            f"exact budget {self.exact_budget}"
        ]
        for component in self.components:
            bound = (
                str(component.state_bound)
                if component.state_bound is not None
                else "unknown"
            )
            flags = []
            if component.deterministic:
                flags.append("deterministic")
            if component.sparse_eligible:
                flags.append("sparse")
            if component.columnar_eligible:
                flags.append("columnar")
            if component.contains_event:
                flags.append("event")
            lines.append(
                f"  {component.name}: members={','.join(component.members)} "
                f"bound={bound} repair_keys={component.repair_keys}"
                + (f" [{','.join(flags)}]" if flags else "")
            )
        return lines


def compute_partition_plan(
    kernel: "Interpretation",
    *,
    database: "Database | None" = None,
    event: "QueryEvent | None" = None,
    semantics: str = "forever",
    exact_budget: int = DEFAULT_EXACT_BUDGET,
) -> PartitionPlan:
    """Statically decompose ``kernel`` into independent components.

    ``database`` enables the conservative per-component state bound (the
    support fixpoint needs the initial instance); ``event`` marks the
    component that contains the event relation.  Neither changes the
    partition itself.

    Only a single-atom event names *the* event component; a compound
    event may span several components (the executor splits it per
    component at run time), so it contributes no component marking.
    """
    from repro.core.events import TupleIn

    if not isinstance(event, TupleIn):
        event = None
    queries = kernel.queries
    pc_names = set(kernel.pc_relation_names())
    dynamic = {
        name
        for name, expression in queries.items()
        if not _is_identity(name, expression)
    } | pc_names

    uf = _UnionFind(dynamic)
    for edge in coupling_edges(queries, dynamic):
        uf.union(edge.src, edge.dst)

    # pc-tables sharing random variables are correlated even without any
    # query-level dependency; record the pairs that merge otherwise
    # separate groups (PP004) before folding them into the partition.
    pc_couplings: list[tuple[str, str]] = []
    if kernel.pc_tables is not None:
        variables_of = {
            name: table.variables() for name, table in kernel.pc_tables.tables.items()
        }
        for left, right in combinations(sorted(variables_of), 2):
            if variables_of[left] & variables_of[right]:
                if uf.find(left) != uf.find(right):
                    pc_couplings.append((left, right))
                uf.union(left, right)

    groups = uf.groups()

    # PP003: would ignoring negative couplings split the program finer?
    uf_positive = _UnionFind(dynamic)
    for edge in coupling_edges(queries, dynamic):
        if edge.positive:
            uf_positive.union(edge.src, edge.dst)
    for left, right in pc_couplings:
        uf_positive.union(left, right)
    negation_bridges: list[tuple[str, str]] = []
    if len(uf_positive.groups()) > len(groups):
        seen: set[tuple[str, str]] = set()
        for edge in coupling_edges(queries, dynamic):
            if edge.positive:
                continue
            if uf_positive.find(edge.src) != uf_positive.find(edge.dst):
                pair = (edge.src, edge.dst)
                if pair not in seen:
                    seen.add(pair)
                    negation_bridges.append(pair)

    bounds, bounded = _state_bounds(kernel, dynamic, pc_names, database)

    components: list[ComponentFacts] = []
    event_component: str | None = None
    for index, members in enumerate(groups):
        name = f"c{index}"
        facts = _component_facts(
            index,
            name,
            members,
            kernel,
            pc_names,
            bounds,
            event=event,
            semantics=semantics,
        )
        if facts.contains_event:
            event_component = name
        components.append(facts)

    return PartitionPlan(
        semantics=semantics,
        components=tuple(components),
        exact_budget=exact_budget,
        bounded=bounded,
        negation_bridges=tuple(negation_bridges),
        pc_couplings=tuple(pc_couplings),
        event_relation=event.relation if event is not None else None,
        event_component=event_component,
    )


def partition_diagnostics(plan: PartitionPlan, report: DiagnosticReport) -> None:
    """Append the plan's ``PP0xx`` findings to ``report``."""
    if plan.splittable:
        preview = "; ".join(
            f"{c.name}={{{','.join(c.members)}}}" for c in plan.components
        )
        report.add(
            "PP001",
            f"the program splits into {len(plan.components)} independent "
            f"components that share no repair-key provenance ({preview}); "
            "each can be evaluated on its own cheapest rung and the event "
            "probability recombined by independence",
            suggestion="evaluate with --partition auto to run components "
            "independently",
        )
    for component in plan.components:
        if component.state_bound is not None and component.state_bound > plan.exact_budget:
            report.add(
                "PP002",
                f"component {component.name} "
                f"({','.join(component.members)}) has a conservative state "
                f"bound of {component.state_bound}, above the exact budget "
                f"of {plan.exact_budget}; its exact rung will overflow",
                subject=component.name,
                suggestion="raise --max-states or let the degradation "
                "ladder pick the sparse/lumped/mcmc rung for this component",
            )
    if plan.negation_bridges:
        bridges = ", ".join(f"{src} -> {dst}" for src, dst in plan.negation_bridges)
        report.add(
            "PP003",
            "cross-component negation prevents a finer split: the only "
            f"couplings between otherwise independent groups are negative "
            f"references ({bridges}), and difference correlates values "
            "just as a join does",
            suggestion="stratify: compute the subtracted relation in a "
            "separate phase so the components decouple",
        )
    if plan.pc_couplings:
        pairs = ", ".join(f"{a}~{b}" for a, b in plan.pc_couplings)
        report.add(
            "PP004",
            "pc-tables sharing random variables couple otherwise "
            f"independent components ({pairs}): their instantiations are "
            "correlated, so the groups cannot be evaluated separately",
            suggestion="give the pc-tables disjoint variable sets if "
            "independence is intended",
        )
    if plan.splittable and plan.event_component is not None:
        others = len(plan.components) - 1
        report.add(
            "PP005",
            f"the event relation {plan.event_relation!r} is confined to "
            f"component {plan.event_component}; the other {others} "
            "component(s) cannot influence the answer and are pruned by "
            "partitioned evaluation",
            subject=plan.event_relation,
            suggestion="run with --partition auto to skip the pruned "
            "components entirely",
        )


# -- component facts ----------------------------------------------------------


def _component_facts(
    index: int,
    name: str,
    members: tuple[str, ...],
    kernel: "Interpretation",
    pc_names: set[str],
    bounds: Mapping[str, int | None],
    *,
    event: "TupleIn | None",
    semantics: str,
) -> ComponentFacts:
    queries = kernel.queries
    footprint = set(members)
    repair_keys = 0
    deterministic = True
    for member in members:
        if member in pc_names:
            table = kernel.pc_tables.tables[member] if kernel.pc_tables else None
            if table is not None and table.variables():
                deterministic = False
            continue
        expression = queries[member]
        footprint.update(ref for ref, _pos, _prob in expression_references(expression))
        repair_keys += sum(
            1 for node in _walk_expression(expression) if isinstance(node, RepairKey)
        )
        if not expression.is_deterministic():
            deterministic = False

    pc_members = [m for m in members if m in pc_names]
    pc_free = not any(
        kernel.pc_tables is not None
        and kernel.pc_tables.tables[m].variables()
        for m in pc_members
    )

    if pc_members:
        columnar_eligible = False
    else:
        from repro.core.interpretation import Interpretation
        from repro.kernel import kernel_ineligibility

        sub_kernel = Interpretation({m: queries[m] for m in members})
        columnar_eligible = not kernel_ineligibility(sub_kernel)

    state_bound: int | None = None
    if not pc_members:
        state_bound = _product([bounds.get(m) for m in members])

    return ComponentFacts(
        index=index,
        name=name,
        members=members,
        footprint=tuple(sorted(footprint)),
        repair_keys=repair_keys,
        deterministic=deterministic,
        pc_free=pc_free,
        sparse_eligible=semantics == "forever" and not deterministic,
        columnar_eligible=columnar_eligible,
        state_bound=state_bound,
        contains_event=(event.relation in members) if event is not None else None,
    )


# -- conservative state bounds ------------------------------------------------


def _state_bounds(
    kernel: "Interpretation",
    dynamic: set[str],
    pc_names: set[str],
    database: "Database | None",
) -> tuple[dict[str, int | None], bool]:
    """Per-relation bounds on the number of values each dynamic relation
    can take along any run, from the support fixpoint.

    Soundness: strip every ``repair-key`` (its output rows are a subset
    of its input rows, and the operator is schema-preserving), then the
    kernel is deterministic and — absent negative references to dynamic
    relations — *monotone*, so iterating it inflationarily from the
    initial database reaches a fixpoint ``support`` with the invariant
    that every reachable runtime value of relation ``R`` is a subset of
    ``support[R]``.  That gives the generic subset bound ``2**|support|``;
    a repair-key node sharpens it to the product over its static key
    groups of ``candidates + 1`` (each group contributes one chosen row
    or nothing).  Returns ``({}, False)`` when no bound can be computed.
    """
    if database is None:
        return {}, False
    targets = {name for name in dynamic if name not in pc_names}
    if not targets:
        return {}, False
    for name in targets:
        for ref, positive, _prob in expression_references(kernel.queries[name]):
            if not positive and ref in dynamic:
                # Difference is antitone in its right operand: the
                # support fixpoint would not over-approximate.
                return {}, False
    support = _support_fixpoint(kernel, targets, database)
    if support is None:
        return {}, False
    bounds: dict[str, int | None] = {}
    for name in targets:
        bounds[name] = _relation_bound(name, kernel.queries[name], support, dynamic)
    return bounds, True


def _support_fixpoint(
    kernel: "Interpretation",
    targets: set[str],
    database: "Database",
) -> "Database | None":
    stripped = {
        name: _strip_repair_keys(kernel.queries[name]) for name in sorted(targets)
    }
    state = database
    try:
        for _ in range(_SUPPORT_MAX_ITERATIONS):
            updates: dict[str, "Relation"] = {}
            for name, expression in stripped.items():
                updates[name] = evaluate(expression, state).union(state[name])
            next_state = state.with_relations(updates)
            if next_state == state:
                return state
            if next_state.total_rows() > _SUPPORT_MAX_ROWS:
                return None
            state = next_state
    except Exception:
        # A malformed query (caught separately by the schema checks)
        # simply yields no bound; the planner never raises.
        return None
    return None


def _relation_bound(
    name: str,
    expression: Expression,
    support: "Database",
    dynamic: set[str],
) -> int | None:
    structural = _value_bound(expression, support, dynamic)
    subset = _subset_bound(support, name)
    candidates = [b for b in (structural, subset) if b is not None]
    return min(candidates) if candidates else None


def _value_bound(
    expression: Expression,
    support: "Database",
    dynamic: set[str],
) -> int | None:
    """Bound on the number of distinct values ``expression`` can produce
    across all reachable runtime states (``None`` = no bound found)."""
    if isinstance(expression, RelationRef):
        if expression.name in dynamic:
            return _subset_bound(support, expression.name)
        return 1
    if isinstance(expression, Literal):
        return 1
    if isinstance(expression, RepairKey):
        try:
            rows = evaluate(_strip_repair_keys(expression.child), support)
        except Exception:
            return None
        indices = [rows.column_index(column) for column in expression.key]
        groups: dict[tuple[Any, ...], int] = {}
        for row in rows:
            key = tuple(row[i] for i in indices)
            groups[key] = groups.get(key, 0) + 1
        bound = 1
        for count in groups.values():
            bound *= count + 1
            if bound > _BOUND_CAP:
                return None
        return bound
    if isinstance(expression, (Select, Project, Rename, ExtendedProject)):
        return _value_bound(expression.child, support, dynamic)
    if isinstance(expression, (Union, Difference, Product, NaturalJoin)):
        left = _value_bound(expression.left, support, dynamic)
        right = _value_bound(expression.right, support, dynamic)
        return _product([left, right])
    return None


def _subset_bound(support: "Database", name: str) -> int | None:
    if name not in support.names():
        return None
    size = len(support[name])
    if size > _SUBSET_BOUND_MAX_ROWS:
        return None
    return 2**size


def _strip_repair_keys(expression: Expression) -> Expression:
    """The same expression with every ``repair-key`` replaced by its
    child — sound for support computation because the operator is
    schema-preserving and its output rows are a subset of its input."""
    if isinstance(expression, RepairKey):
        return _strip_repair_keys(expression.child)
    if isinstance(expression, (RelationRef, Literal)):
        return expression
    if isinstance(expression, Select):
        return Select(_strip_repair_keys(expression.child), expression.predicate)
    if isinstance(expression, Project):
        return Project(_strip_repair_keys(expression.child), expression.columns)
    if isinstance(expression, Rename):
        return Rename(_strip_repair_keys(expression.child), expression.mapping)
    if isinstance(expression, ExtendedProject):
        return ExtendedProject(_strip_repair_keys(expression.child), expression.outputs)
    if isinstance(expression, (Union, Difference, Product, NaturalJoin)):
        return type(expression)(
            _strip_repair_keys(expression.left),
            _strip_repair_keys(expression.right),
        )
    return expression


def _product(factors: Iterable[int | None]) -> int | None:
    result = 1
    for factor in factors:
        if factor is None:
            return None
        result *= factor
        if result > _BOUND_CAP:
            return None
    return result


# -- helpers ------------------------------------------------------------------


def _is_identity(name: str, expression: Expression) -> bool:
    return isinstance(expression, RelationRef) and expression.name == name


def _walk_expression(expression: Expression) -> Iterator[Expression]:
    yield expression
    for child in expression.children():
        yield from _walk_expression(child)


class _UnionFind:
    """Plain union-find over relation names, deterministic grouping."""

    def __init__(self, items: Iterable[str]) -> None:
        self._parent: dict[str, str] = {item: item for item in items}

    def find(self, item: str) -> str:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, left: str, right: str) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            # Deterministic representative: the lexicographically smaller
            # root wins, so grouping never depends on insertion order.
            if root_right < root_left:
                root_left, root_right = root_right, root_left
            self._parent[root_right] = root_left

    def groups(self) -> list[tuple[str, ...]]:
        """Members per component, each sorted, components sorted by
        their first member."""
        by_root: dict[str, list[str]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return sorted(tuple(sorted(members)) for members in by_root.values())
