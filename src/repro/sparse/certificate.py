"""Residual-derived error certificates for iterative chain solves.

Every answer the sparse rung returns is wrapped in a
:class:`SolveCertificate` that converts a posteriori residual norms
into a rigorous error interval.  The mathematics is the classical
M-matrix argument (see ``docs/sparse.md`` for the derivation):

* Absorption systems ``(I - Q) x = b`` over the transient states have
  ``(I - Q)^{-1} >= 0`` elementwise, so an approximate solution
  ``x̂`` with residual ``r = b - (I - Q) x̂`` satisfies
  ``|x - x̂| <= ||r||_inf * t`` where ``t = (I - Q)^{-1} 1`` is the
  expected-exit-time vector.  ``t`` itself is certified from its own
  residual: if ``t̂`` solves ``(I - Q) t = 1`` with residual ``s`` and
  ``||s||_inf < 1``, then ``t <= t̂ / (1 - ||s||_inf)`` elementwise.
* Stationary distributions of an irreducible block are certified
  through the regeneration (expected-visits) system anchored at a
  reference state, which is again a nonsingular M-matrix system.

The certificate is *deterministic*: the solver never samples, so the
requested failure probability ``delta`` is met trivially (failure
probability zero) and refusal is decided purely on ``epsilon``.  The
bound includes a documented float64 rounding margin; it is rigorous
under the standard model of IEEE-754 arithmetic, not a formally
verified interval computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["SolveCertificate", "CertifiedResult"]


@dataclass(frozen=True)
class SolveCertificate:
    """A rigorous a posteriori accuracy statement for one answer.

    Attributes
    ----------
    bound:
        Certified upper bound on ``|answer - exact|``.
    residual_norm:
        Largest infinity-norm residual across the component solves the
        answer was assembled from.
    epsilon / delta:
        The accuracy contract the solve was asked for.  ``delta`` is
        recorded for interface symmetry with the sampling rungs; the
        solver is deterministic, so its effective failure probability
        is zero.
    iterations:
        Total iterative-solver iterations (power-iteration steps plus
        Krylov iterations) spent across all component solves.
    solver:
        Which solver mix produced the answer (e.g.
        ``"power+gmres"``, ``"direct"``).
    components:
        Number of certified sub-solves combined (leaf SCCs plus the
        absorption system).
    """

    bound: float
    residual_norm: float
    epsilon: float
    delta: float
    iterations: int
    solver: str
    components: int = 1

    def __post_init__(self) -> None:
        if self.bound < 0.0:
            raise ValueError(f"certified bound {self.bound} is negative")
        if self.epsilon <= 0.0:
            raise ValueError(f"epsilon {self.epsilon} must be positive")

    def satisfies(self, epsilon: float | None = None) -> bool:
        """Whether the certified bound meets the (requested) tolerance."""
        target = self.epsilon if epsilon is None else epsilon
        return self.bound <= target

    def as_dict(self) -> dict[str, Any]:
        return {
            "bound": self.bound,
            "residual_norm": self.residual_norm,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "iterations": self.iterations,
            "solver": self.solver,
            "components": self.components,
            "satisfied": self.satisfies(),
        }


@dataclass(frozen=True)
class CertifiedResult:
    """A float64 query probability with a rigorous error certificate.

    The sparse rung's counterpart of
    :class:`~repro.core.evaluation.results.ExactResult`: the
    probability is a float, but unlike
    :class:`~repro.core.evaluation.NumericResult` it never travels
    without a :class:`SolveCertificate` proving how far from the exact
    rational answer it can be.
    """

    probability: float
    certificate: SolveCertificate
    states_explored: int
    method: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")

    @property
    def interval(self) -> tuple[float, float]:
        """The certified enclosure of the exact answer, clipped to [0, 1]."""
        return (
            max(0.0, self.probability - self.certificate.bound),
            min(1.0, self.probability + self.certificate.bound),
        )
