"""Streaming CSR assembly of the database-state Markov chain.

The exact evaluators materialise the Prop 5.4 chain as a
:class:`~repro.markov.chain.MarkovChain` keyed by hashable database
snapshots — fine for hundreds of states, hostile beyond that: every
row is a dict of Fractions and every structural pass re-hashes whole
databases.  :func:`assemble_sparse_chain` explores the same reachable
chain breadth-first off the kernel's ``transition`` (the columnar
:class:`~repro.kernel.CompiledKernel` or the frozenset
:class:`~repro.core.interpretation.Interpretation` — both expose the
same surface), but assigns each discovered state a dense integer id
and accumulates ``(row, col, weight)`` triplets directly, so the only
artefacts of the build are a ``scipy.sparse`` CSR matrix, the id→state
table, and a boolean event mask.  Neither a dense matrix nor a
:class:`MarkovChain` is ever materialised.

The event predicate is evaluated once per state *during* the sweep —
the solve phase afterwards only sees integer ids and float64 arrays.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable, Sequence

import numpy as np
from scipy import sparse as _sparse

from repro.core.chain_builder import DEFAULT_MAX_STATES
from repro.errors import StateSpaceLimitExceeded
from repro.obs.trace import tracer_of

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.markov.chain import MarkovChain
    from repro.runtime.context import RunContext

__all__ = ["SparseChain", "assemble_sparse_chain", "sparse_chain_from_markov"]

#: How often (in expanded states) the assembler emits a trace event.
_TRACE_STRIDE = 256


@dataclass(frozen=True)
class SparseChain:
    """The reachable chain in integer-id CSR form.

    Attributes
    ----------
    matrix:
        ``n x n`` row-stochastic ``scipy.sparse`` CSR matrix;
        ``matrix[i, j]`` is the float64 transition probability from
        state ``i`` to state ``j``.
    states:
        Id → original state table (``states[0]`` is the initial
        state).  Kept only so results can name witness states; the
        solvers never touch it.
    event_mask:
        ``event_mask[i]`` is True when the query event holds in state
        ``i``.
    initial_index:
        Id of the start state (always 0 by construction).
    """

    matrix: Any
    states: Sequence[Hashable]
    event_mask: np.ndarray
    initial_index: int = 0

    @property
    def size(self) -> int:
        return self.matrix.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def max_out_degree(self) -> int:
        indptr = self.matrix.indptr
        return int(np.max(np.diff(indptr))) if self.size else 0


def assemble_sparse_chain(
    kernel: Any,
    initial: Hashable,
    event: Callable[[Any], bool] | None = None,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
) -> SparseChain:
    """BFS the reachable chain into CSR form, one transition row at a time.

    ``kernel`` is anything with the transition-kernel surface
    (``check_schema`` + ``transition``): a frozenset
    :class:`~repro.core.interpretation.Interpretation` or a compiled
    columnar kernel.  Raises
    :class:`~repro.errors.StateSpaceLimitExceeded` exactly like
    :func:`~repro.core.chain_builder.build_state_chain` when the
    frontier outgrows ``max_states``.

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    >>> sc = assemble_sparse_chain(query.kernel, db, event=query.event.holds)
    >>> sc.size, sc.event_mask.sum()
    (4, np.int64(1))
    >>> sc.matrix.sum(axis=1).round(12).tolist()
    [[1.0], [1.0], [1.0], [1.0]]
    """
    kernel.check_schema(initial)
    tracer = tracer_of(context)
    index_of: dict[Hashable, int] = {initial: 0}
    states: list[Hashable] = [initial]
    flags: list[bool] = [bool(event(initial))] if event is not None else [False]
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    queue: deque[int] = deque([0])
    expanded = 0
    if context is not None:
        context.tick_states()
    while queue:
        if context is not None:
            context.check()
        source = queue.popleft()
        row = kernel.transition(states[source])
        for successor, weight in row.items():
            target = index_of.get(successor)
            if target is None:
                if len(states) >= max_states:
                    raise StateSpaceLimitExceeded(
                        f"sparse chain assembly exceeds max_states="
                        f"{max_states} ({len(states)} states discovered, "
                        f"{expanded} expanded, frontier size "
                        f"{len(queue) + 1}); raise the limit or let the "
                        "ladder fall through to lumped/MCMC",
                        details={
                            "max_states": max_states,
                            "states_discovered": len(states),
                            "states_expanded": expanded,
                            "frontier_size": len(queue) + 1,
                        },
                    )
                target = len(states)
                index_of[successor] = target
                states.append(successor)
                flags.append(bool(event(successor)) if event is not None else False)
                queue.append(target)
                if context is not None:
                    context.tick_states()
            rows.append(source)
            cols.append(target)
            data.append(float(weight))
        expanded += 1
        if tracer.enabled and (expanded % _TRACE_STRIDE == 0 or not queue):
            tracer.event(
                "sparse-state",
                expanded=expanded,
                discovered=len(states),
                frontier=len(queue),
                nnz=len(data),
            )
    n = len(states)
    matrix = _sparse.csr_matrix(
        (np.asarray(data, dtype=np.float64),
         (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64))),
        shape=(n, n),
    )
    return SparseChain(
        matrix=matrix,
        states=states,
        event_mask=np.asarray(flags, dtype=bool),
        initial_index=0,
    )


def sparse_chain_from_markov(
    chain: "MarkovChain",
    start: Hashable,
    event: Callable[[Any], bool] | None = None,
) -> SparseChain:
    """CSR view of an already-materialised :class:`MarkovChain`.

    Used by the tests and benchmarks to certify answers on chains built
    directly (queueing chains, hypothesis-generated chains) without
    routing through a transition kernel.  ``start`` becomes id 0 so the
    solvers see the same layout as the streaming assembler produces.
    """
    chain.index_of(start)  # raises MarkovChainError for unknown starts
    ordered = [start] + [s for s in chain.states if s != start]
    index_of = {state: i for i, state in enumerate(ordered)}
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for state in ordered:
        source = index_of[state]
        for successor, weight in chain.successors(state).items():
            rows.append(source)
            cols.append(index_of[successor])
            data.append(float(weight))
    n = len(ordered)
    matrix = _sparse.csr_matrix(
        (np.asarray(data, dtype=np.float64),
         (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64))),
        shape=(n, n),
    )
    flags = np.asarray(
        [bool(event(state)) if event is not None else False for state in ordered],
        dtype=bool,
    )
    return SparseChain(matrix=matrix, states=ordered, event_mask=flags)
