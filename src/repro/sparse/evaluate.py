"""The sparse certified rung: forever-query evaluation at scale.

Same semantic object as
:func:`~repro.core.evaluation.evaluate_forever_exact` — the Definition
3.2 long-run event probability over the Prop 5.4 chain — but the chain
is streamed into CSR form (:mod:`repro.sparse.assemble`) and solved
iteratively with a posteriori certification
(:mod:`repro.sparse.solve`).  The contract that makes this a
first-class degradation rung rather than a fast-but-loose path:

* every answer carries a :class:`~repro.sparse.SolveCertificate`;
* an answer whose certified bound exceeds the requested ``epsilon`` is
  *never returned* — the evaluator raises
  :class:`~repro.errors.SolveRefusedError` and the ladder falls
  through to the exact/lumped/MCMC rungs with the reason recorded on
  the :class:`~repro.runtime.RunReport`.

Metrics (when the run context carries a registry):
``repro_sparse_solves_total`` (outcome label), ``repro_sparse_refusals_total``,
``repro_sparse_solve_iterations`` and ``repro_sparse_certified_bound``
histograms.  Trace spans: ``sparse-assemble`` and ``sparse-solve``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.chain_builder import DEFAULT_MAX_STATES
from repro.core.queries import ForeverQuery
from repro.errors import SolveRefusedError
from repro.obs.trace import phase_scope
from repro.relational.database import Database
from repro.sparse.assemble import assemble_sparse_chain
from repro.sparse.certificate import CertifiedResult, SolveCertificate
from repro.sparse.solve import solve_long_run

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext

__all__ = ["evaluate_forever_sparse", "DEFAULT_SPARSE_EPSILON"]

#: Default certified accuracy of the sparse rung.  Far tighter than the
#: sampling rungs' default (0.1): the solver is deterministic and the
#: bound is usually near machine precision, so a loose default would
#: hide real regressions.
DEFAULT_SPARSE_EPSILON = 1e-6


def _observe(
    context: "RunContext | None",
    certificate: SolveCertificate,
    outcome: str,
) -> None:
    metrics = getattr(context, "metrics", None) if context is not None else None
    if metrics is None:
        return
    metrics.counter(
        "repro_sparse_solves_total",
        "Sparse certified solves by outcome",
    ).inc(outcome=outcome)
    if outcome == "refused":
        metrics.counter(
            "repro_sparse_refusals_total",
            "Sparse solves refused because the certificate missed epsilon",
        ).inc()
    metrics.histogram(
        "repro_sparse_solve_iterations",
        "Iterative-solver iterations per sparse solve",
        buckets=(10, 100, 1_000, 10_000, 100_000),
    ).observe(float(certificate.iterations))
    metrics.histogram(
        "repro_sparse_certified_bound",
        "Certified error bound per sparse solve",
        buckets=(1e-12, 1e-9, 1e-6, 1e-3, 1.0),
    ).observe(float(certificate.bound))


def evaluate_forever_sparse(
    query: ForeverQuery,
    initial: Database,
    epsilon: float = DEFAULT_SPARSE_EPSILON,
    delta: float = 0.0,
    max_states: int = DEFAULT_MAX_STATES,
    max_iterations: int = 50_000,
    context: "RunContext | None" = None,
    backend: str | None = None,
) -> CertifiedResult:
    """Certified float64 result of a forever-query.

    ``backend`` follows the usual convention (``None`` prefers the
    columnar kernel and falls back to the frozenset interpreter with
    the reason recorded; an explicit name forces that backend).  The
    answer is identical either way — only assembly speed differs.

    Raises
    ------
    SolveRefusedError
        When the certified bound cannot meet ``epsilon``.  The rung
        refuses rather than return an uncertified float; degradation
        ladders treat this exactly like a state-space overflow.
    StateSpaceLimitExceeded
        When the reachable chain outgrows ``max_states``.

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    >>> result = evaluate_forever_sparse(query, db, epsilon=1e-9)
    >>> round(result.probability, 9)
    0.25
    >>> result.certificate.satisfies()
    True
    """
    from repro.core.evaluation.backend import resolve_backend

    requested = "columnar" if backend is None else backend
    query, initial, effective_backend = resolve_backend(
        query, initial, requested, context=context
    )
    with phase_scope(context, "sparse-assemble") as scope:
        chain = assemble_sparse_chain(
            query.kernel,
            initial,
            event=query.event.holds,
            max_states=max_states,
            context=context,
        )
        scope.annotate(states=chain.size, nnz=chain.nnz)
    if context is not None:
        context.check()
    with phase_scope(context, "sparse-solve", states=chain.size) as scope:
        value, certificate, structure = solve_long_run(
            chain, epsilon=epsilon, delta=delta, max_iterations=max_iterations
        )
        scope.annotate(
            iterations=certificate.iterations, bound=certificate.bound
        )
    if context is not None:
        context.ledger.add(
            "sparse-solve",
            rung="sparse",
            states=chain.size,
            nnz=chain.nnz,
            iterations=certificate.iterations,
            certified_bound=certificate.bound,
        )
    structure["backend"] = effective_backend
    if not certificate.satisfies():
        _observe(context, certificate, "refused")
        raise SolveRefusedError(
            f"sparse solve certified |error| <= {certificate.bound:.3e}, "
            f"which misses the requested epsilon={epsilon:.3e} "
            f"after {certificate.iterations} iterations; refusing to "
            "return an uncertified answer",
            details={
                "epsilon": epsilon,
                "delta": delta,
                "certified_bound": certificate.bound,
                "residual_norm": certificate.residual_norm,
                "iterations": certificate.iterations,
                "states": chain.size,
            },
        )
    _observe(context, certificate, "ok")
    method = (
        "sparse-prop-5.4" if structure["irreducible"] else "sparse-thm-5.5"
    )
    return CertifiedResult(
        probability=value,
        certificate=certificate,
        states_explored=chain.size,
        method=method,
        details=structure,
    )
