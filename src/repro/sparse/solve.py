"""Certified iterative solves on CSR chains (Prop 5.4 / Thm 5.5 shape).

Two solver families, each emitting the residuals its certificate is
built from:

* **Stationary mass** of an irreducible block — power iteration on the
  lazified matrix ``(P + I) / 2`` (same stationary distribution,
  provably aperiodic, so periodic blocks converge too).  The iterate is
  certified through the *regeneration system*: anchoring a reference
  state ``s``, the expected-visits vector ``w`` (visits to each other
  state between returns to ``s``) solves the nonsingular M-matrix
  system ``(I - Q̃)ᵀ wᵀ = pᵀ`` and the stationary distribution is
  ``π = (1, w) / (1 + Σw)`` up to relabelling.  The power iterate
  supplies ``ŵ``; its true residual in that system plus one
  amplification solve (``(I - Q̃)ᵀ c = 1``) give the elementwise
  enclosure ``|w - ŵ| <= ||r||_inf · ĉ / (1 - ||s_c||_inf)``.
* **Absorption probabilities** into the leaf SCCs — per-block Krylov
  solves (GMRES, or CG when the system is symmetric) of
  ``(I - Q) a = b`` over the transient states, with a direct sparse-LU
  fallback for tiny blocks and for Krylov non-convergence.  The
  expected-exit-time solve ``(I - Q) t = 1`` certifies the answer:
  ``|a - â|(start) <= ||r||_inf · t̂(start) / (1 - ||s||_inf)``.

Both bounds rest on the inverse-positivity of M-matrices
(``(I - Q)^{-1} >= 0`` for substochastic ``Q`` with spectral radius
below one); see ``docs/sparse.md`` for the derivation and the float64
rounding allowance added on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse as _sparse
from scipy.sparse import csgraph as _csgraph
from scipy.sparse import linalg as _spla

from repro.errors import MarkovChainError
from repro.sparse.assemble import SparseChain
from repro.sparse.certificate import SolveCertificate

__all__ = ["solve_long_run", "TINY_DIRECT_SIZE"]

#: Blocks at or below this many states skip Krylov and solve directly.
TINY_DIRECT_SIZE = 64

#: Amplification solves only need a loose residual; past this the
#: enclosure ``c <= ĉ / (1 - ||s||_inf)`` stops being usable.
_MAX_AMPLIFIER_RESIDUAL = 0.5

#: Inner-iteration cap per Krylov solve.  Systems Krylov cannot crack
#: in this many steps (ill-conditioned drift chains, long tridiagonal
#: bands) go to sparse LU instead of grinding: the chains this
#: subsystem sees have a handful of nonzeros per row, so a direct
#: factorisation is near-linear and the a posteriori residual — not
#: the solver's convergence flag — carries the certificate either way.
_KRYLOV_BUDGET = 512

_EPS = float(np.finfo(np.float64).eps)


def _rounding_margin(size: int) -> float:
    """Allowance for float64 summation/rounding across one component.

    Numpy reduces with pairwise summation, so accumulated rounding
    grows with ``log2`` of the term count; the factor 64 is a generous
    envelope over the handful of dependent operations per entry.
    """
    return 64.0 * _EPS * (1.0 + float(np.log2(size + 2)))


@dataclass
class _Tally:
    """Running totals across the component solves of one answer."""

    iterations: int = 0
    residual_norm: float = 0.0
    solvers: tuple[str, ...] = ()

    def absorb(self, iterations: int, residual: float, solver: str) -> None:
        self.iterations += int(iterations)
        self.residual_norm = max(self.residual_norm, float(residual))
        if solver and solver not in self.solvers:
            self.solvers = self.solvers + (solver,)


def _solve_system(
    matrix: Any,
    rhs: np.ndarray,
    rtol: float,
    maxiter: int,
    tally: _Tally,
) -> np.ndarray:
    """Solve ``matrix @ x = rhs``: Krylov first, direct LU as fallback.

    Tiny systems go straight to sparse LU — Krylov setup costs more
    than elimination there.  Krylov iterations are counted into the
    tally; the *certificate* never trusts the solver's claimed
    convergence, only the residual computed afterwards by the caller.
    """
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0)
    if n <= TINY_DIRECT_SIZE:
        x = _spla.spsolve(matrix.tocsc(), rhs)
        tally.absorb(0, 0.0, "direct")
        return np.atleast_1d(x)
    steps = [0]

    def count(_arg: object) -> None:
        steps[0] += 1

    budget = min(maxiter, _KRYLOV_BUDGET)
    symmetric = (matrix != matrix.T).nnz == 0
    if symmetric:
        x, info = _spla.cg(matrix, rhs, rtol=rtol, atol=0.0,
                           maxiter=budget, callback=count)
        solver = "cg"
    else:
        # gmres counts *outer* restart cycles in maxiter; convert the
        # inner-iteration budget so both solvers spend comparable work.
        x, info = _spla.gmres(matrix, rhs, rtol=rtol, atol=0.0,
                              maxiter=max(1, budget // 64), restart=64,
                              callback=count, callback_type="pr_norm")
        solver = "gmres"
    if info != 0:
        # Krylov stalled or hit its budget: fall back to sparse LU and
        # let the a posteriori residual tell the truth about accuracy.
        x = np.atleast_1d(_spla.spsolve(matrix.tocsc(), rhs))
        solver += "+direct"
    tally.absorb(steps[0], 0.0, solver)
    return x


def _identity_minus(q: Any) -> Any:
    return (_sparse.identity(q.shape[0], format="csr") - q).tocsr()


def _amplifier(system: Any, rtol: float, maxiter: int,
               tally: _Tally) -> np.ndarray | None:
    """Certified elementwise upper bound on ``system^{-1} @ 1``.

    ``system`` must be a nonsingular M-matrix (``I - Q`` shape), whose
    inverse is elementwise non-negative.  Returns ``None`` when even
    the loose residual needed for the enclosure cannot be reached —
    the caller then has no finite certificate and must refuse.
    """
    ones = np.ones(system.shape[0])
    c_hat = _solve_system(system, ones, rtol, maxiter, tally)
    residual = float(np.max(np.abs(ones - system @ c_hat)))
    if residual >= _MAX_AMPLIFIER_RESIDUAL:
        return None
    return np.maximum(c_hat, 0.0) / (1.0 - residual)


def _power_iterate(matrix: Any, tolerance: float, maxiter: int,
                   tally: _Tally) -> np.ndarray:
    """Power iteration for the stationary vector of an irreducible block.

    Iterates ``μ ← μ (P + I) / 2`` from uniform; lazification keeps
    the spectrum in the right half plane, so periodic blocks converge
    to the same ``π`` instead of oscillating.  Stops on the L1 step
    change; the caller certifies the result independently, so an
    early exit here can only inflate the certified bound, never break
    its rigour.
    """
    n = matrix.shape[0]
    transposed = matrix.T.tocsr()
    mu = np.full(n, 1.0 / n)
    steps = 0
    for steps in range(1, maxiter + 1):
        nxt = 0.5 * (mu + transposed @ mu)
        total = nxt.sum()
        if total > 0.0:
            nxt /= total
        change = float(np.abs(nxt - mu).sum())
        mu = nxt
        if change < tolerance:
            break
    tally.absorb(steps, 0.0, "power")
    return mu


def _stationary_event_interval(
    block: Any,
    mask: np.ndarray,
    rtol: float,
    maxiter: int,
    tally: _Tally,
) -> tuple[float, float]:
    """Certified enclosure of the event mass under the block's π."""
    m = block.shape[0]
    if m == 1:
        value = 1.0 if mask[0] else 0.0
        return value, value
    if not mask.any():
        return 0.0, 0.0
    if mask.all():
        return 1.0, 1.0
    power_tol = max(m * _EPS, min(1e-12, rtol))
    mu = _power_iterate(block, power_tol, maxiter, tally)
    anchor = int(np.argmax(mu))
    keep = np.array([i for i in range(m) if i != anchor], dtype=np.int64)
    q_tilde = block[keep][:, keep]
    p_row = np.asarray(block[anchor].todense()).ravel()[keep]
    system = _identity_minus(q_tilde).T.tocsr()
    w_hat = mu[keep] / mu[anchor] if mu[anchor] > 0.0 else mu[keep]
    residual = float(np.max(np.abs(p_row - system @ w_hat)))
    amplifier = _amplifier(system, max(rtol, 1e-10), maxiter, tally)
    if amplifier is None:
        tally.absorb(0, residual, "power")
        return 0.0, 1.0
    tally.absorb(0, residual, "power")
    delta = residual * amplifier
    w_lo = np.maximum(w_hat - delta, 0.0)
    w_hi = w_hat + delta
    in_event = mask[keep]
    anchor_mass = 1.0 if mask[anchor] else 0.0
    numerator_lo = float(w_lo[in_event].sum()) + anchor_mass
    numerator_hi = float(w_hi[in_event].sum()) + anchor_mass
    denominator_lo = 1.0 + float(w_lo.sum())
    denominator_hi = 1.0 + float(w_hi.sum())
    margin = _rounding_margin(m)
    low = max(0.0, numerator_lo / denominator_hi - margin)
    high = min(1.0, numerator_hi / denominator_lo + margin)
    return low, high


def _absorption_intervals(
    matrix: Any,
    labels: np.ndarray,
    leaf_labels: list[int],
    start: int,
    rtol: float,
    maxiter: int,
    tally: _Tally,
) -> dict[int, tuple[float, float]]:
    """Certified absorption-probability enclosures from ``start``.

    Returns ``{leaf_label: (low, high)}``.  ``start`` must be
    transient.  The enclosure degrades to ``(0, 1)`` per leaf when the
    exit-time amplifier cannot be certified.
    """
    leaf_set = set(leaf_labels)
    transient = np.array(
        [i for i in range(matrix.shape[0]) if int(labels[i]) not in leaf_set],
        dtype=np.int64,
    )
    local = {int(i): k for k, i in enumerate(transient)}
    start_local = local[start]
    q = matrix[transient][:, transient]
    system = _identity_minus(q)
    amplifier = _amplifier(system, max(rtol, 1e-10), maxiter, tally)
    margin = _rounding_margin(len(transient))
    intervals: dict[int, tuple[float, float]] = {}
    for label in leaf_labels:
        leaf_cols = np.where(labels == label)[0]
        rhs = np.asarray(matrix[transient][:, leaf_cols].sum(axis=1)).ravel()
        a_hat = _solve_system(system, rhs, rtol, maxiter, tally)
        residual = float(np.max(np.abs(rhs - system @ a_hat)))
        if amplifier is None:
            tally.absorb(0, residual, "")
            intervals[label] = (0.0, 1.0)
            continue
        error = residual * float(amplifier[start_local]) + margin
        tally.absorb(0, residual, "")
        value = float(a_hat[start_local])
        intervals[label] = (max(0.0, value - error), min(1.0, value + error))
    return intervals


def solve_long_run(
    chain: SparseChain,
    epsilon: float,
    delta: float = 0.0,
    max_iterations: int = 50_000,
) -> tuple[float, SolveCertificate, dict[str, Any]]:
    """Certified Definition 3.2 long-run event probability of a chain.

    Returns ``(value, certificate, structure)`` where ``structure``
    mirrors :func:`repro.markov.analysis.classify` in integer-id
    space.  Never raises on accuracy grounds — callers compare
    ``certificate.satisfies()`` and decide whether to refuse (the
    sparse evaluator turns dissatisfaction into
    :class:`~repro.errors.SolveRefusedError`).

    Raises :class:`~repro.errors.MarkovChainError` for structurally
    broken inputs (non-stochastic rows).
    """
    if epsilon <= 0.0:
        raise MarkovChainError(f"epsilon must be positive, got {epsilon}")
    matrix = chain.matrix
    n = matrix.shape[0]
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    if n and float(np.max(np.abs(row_sums - 1.0))) > 1e-9:
        worst = int(np.argmax(np.abs(row_sums - 1.0)))
        raise MarkovChainError(
            f"row {worst} sums to {row_sums[worst]!r}; the chain is not "
            "closed (every state needs a full outgoing distribution)",
            details={"row": worst, "row_sum": float(row_sums[worst])},
        )
    rtol = max(1e-14, min(1e-10, epsilon * 1e-3))
    tally = _Tally()
    n_components, labels = _csgraph.connected_components(
        matrix, directed=True, connection="strong"
    )
    coo = matrix.tocoo()
    open_labels = set(
        int(labels[i])
        for i, j in zip(coo.row, coo.col)
        if labels[i] != labels[j]
    )
    leaf_labels = sorted(set(range(n_components)) - open_labels)
    start_label = int(labels[chain.initial_index])
    structure: dict[str, Any] = {
        "states": n,
        "nnz": chain.nnz,
        "sccs": int(n_components),
        "leaf_sccs": len(leaf_labels),
        "irreducible": n_components == 1,
        "transient_states": int(np.sum(~np.isin(labels, leaf_labels))),
    }

    def leaf_interval(label: int) -> tuple[float, float]:
        members = np.where(labels == label)[0]
        block = matrix[members][:, members]
        return _stationary_event_interval(
            block, chain.event_mask[members], rtol, max_iterations, tally
        )

    if start_label in leaf_labels:
        # Already inside a closed component (covers the irreducible
        # case): the answer is that component's stationary event mass.
        low, high = leaf_interval(start_label)
    else:
        absorption = _absorption_intervals(
            matrix, labels, leaf_labels, chain.initial_index,
            rtol, max_iterations, tally,
        )
        low = high = 0.0
        for label in leaf_labels:
            a_lo, a_hi = absorption[label]
            if a_hi <= 0.0:
                continue
            e_lo, e_hi = leaf_interval(label)
            low += a_lo * e_lo
            high += a_hi * e_hi
    margin = _rounding_margin(n)
    low = max(0.0, low - margin)
    high = min(1.0, high + margin)
    value = min(1.0, max(0.0, 0.5 * (low + high)))
    bound = max(0.0, 0.5 * (high - low)) + margin
    certificate = SolveCertificate(
        bound=bound,
        residual_norm=tally.residual_norm,
        epsilon=epsilon,
        delta=delta,
        iterations=tally.iterations,
        solver="+".join(tally.solvers) if tally.solvers else "exact",
        components=max(1, len(leaf_labels)),
    )
    return value, certificate, structure
