"""Sparse certified-solver subsystem: CSR chains + residual-certified solves.

The degradation rung between exact and sampling (ROADMAP
"sparse/numeric solver rungs"): assemble the Prop 5.4 chain as a
``scipy.sparse`` CSR matrix by streaming frontier exploration
(:mod:`repro.sparse.assemble`), solve stationary distributions by
power iteration and absorption probabilities by SCC condensation plus
per-block GMRES/CG with a direct fallback (:mod:`repro.sparse.solve`),
and wrap every answer in a :class:`SolveCertificate` converting a
posteriori residual norms into a rigorous error interval
(:mod:`repro.sparse.certificate`).  Answers that cannot be certified
to the requested ``epsilon`` are refused
(:class:`~repro.errors.SolveRefusedError`), never returned.

See ``docs/sparse.md`` for the certificate mathematics and the rung's
position on the degradation ladder.
"""

from repro.sparse.assemble import (
    SparseChain,
    assemble_sparse_chain,
    sparse_chain_from_markov,
)
from repro.sparse.certificate import CertifiedResult, SolveCertificate
from repro.sparse.evaluate import (
    DEFAULT_SPARSE_EPSILON,
    evaluate_forever_sparse,
)
from repro.sparse.solve import TINY_DIRECT_SIZE, solve_long_run

__all__ = [
    "CertifiedResult",
    "DEFAULT_SPARSE_EPSILON",
    "SolveCertificate",
    "SparseChain",
    "TINY_DIRECT_SIZE",
    "assemble_sparse_chain",
    "evaluate_forever_sparse",
    "solve_long_run",
    "sparse_chain_from_markov",
]
