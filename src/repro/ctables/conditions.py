"""Condition language of (probabilistic) c-tables.

Definition 2.1 of the paper: a c-table associates each tuple with a
condition — a boolean combination of (in)equalities involving variables
over finite domains and constants.  Conditions here are small ASTs
evaluated against a *valuation* (a mapping from variable name to value).

Constructors: :func:`var_eq`, :func:`var_ne`, :func:`vars_eq` plus the
``&``, ``|`` and ``~`` operators on conditions, and the constants
:data:`TRUE` / :data:`FALSE`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ConditionError

Valuation = Mapping[str, Any]


class Condition:
    """Base class of c-table tuple conditions."""

    def evaluate(self, valuation: Valuation) -> bool:
        """Decide the condition under the given valuation."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """The random variables the condition mentions."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return AndCondition(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return OrCondition(self, other)

    def __invert__(self) -> "Condition":
        return NotCondition(self)


def _lookup(valuation: Valuation, variable: str) -> Any:
    try:
        return valuation[variable]
    except KeyError:
        raise ConditionError(
            f"condition references variable {variable!r} with no value in the valuation"
        ) from None


class TrueCondition(Condition):
    """The always-true condition (unconditional tuples)."""

    def evaluate(self, valuation: Valuation) -> bool:
        return True

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"


class FalseCondition(Condition):
    """The always-false condition."""

    def evaluate(self, valuation: Valuation) -> bool:
        return False

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "FALSE"


#: Singleton instances for the constant conditions.
TRUE = TrueCondition()
FALSE = FalseCondition()


class VarEqValue(Condition):
    """``X = c`` for a variable X and constant c."""

    def __init__(self, variable: str, value: Any):
        self.variable = variable
        self.value = value

    def evaluate(self, valuation: Valuation) -> bool:
        return _lookup(valuation, self.variable) == self.value

    def variables(self) -> frozenset[str]:
        return frozenset({self.variable})

    def __repr__(self) -> str:
        return f"{self.variable}={self.value!r}"


class VarNeValue(Condition):
    """``X ≠ c`` for a variable X and constant c."""

    def __init__(self, variable: str, value: Any):
        self.variable = variable
        self.value = value

    def evaluate(self, valuation: Valuation) -> bool:
        return _lookup(valuation, self.variable) != self.value

    def variables(self) -> frozenset[str]:
        return frozenset({self.variable})

    def __repr__(self) -> str:
        return f"{self.variable}≠{self.value!r}"


class VarEqVar(Condition):
    """``X = Y`` for two variables."""

    def __init__(self, left: str, right: str):
        self.left = left
        self.right = right

    def evaluate(self, valuation: Valuation) -> bool:
        return _lookup(valuation, self.left) == _lookup(valuation, self.right)

    def variables(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def __repr__(self) -> str:
        return f"{self.left}={self.right}"


class AndCondition(Condition):
    """Conjunction."""

    def __init__(self, left: Condition, right: Condition):
        self.left = left
        self.right = right

    def evaluate(self, valuation: Valuation) -> bool:
        return self.left.evaluate(valuation) and self.right.evaluate(valuation)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


class OrCondition(Condition):
    """Disjunction."""

    def __init__(self, left: Condition, right: Condition):
        self.left = left
        self.right = right

    def evaluate(self, valuation: Valuation) -> bool:
        return self.left.evaluate(valuation) or self.right.evaluate(valuation)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


class NotCondition(Condition):
    """Negation."""

    def __init__(self, inner: Condition):
        self.inner = inner

    def evaluate(self, valuation: Valuation) -> bool:
        return not self.inner.evaluate(valuation)

    def variables(self) -> frozenset[str]:
        return self.inner.variables()

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


def var_eq(variable: str, value: Any) -> VarEqValue:
    """Condition ``variable = value``."""
    return VarEqValue(variable, value)


def var_ne(variable: str, value: Any) -> VarNeValue:
    """Condition ``variable ≠ value``."""
    return VarNeValue(variable, value)


def vars_eq(left: str, right: str) -> VarEqVar:
    """Condition ``left = right`` between two variables."""
    return VarEqVar(left, right)
