"""The pc-table → repair-key "macro" compilation (Section 3.1).

The paper observes that pc-tables are *macros* over the repair-key
algebra: the probabilistic choice of a value for each random variable X
can be simulated by one ``repair-key`` application over a ground
relation listing X's domain with its probabilities, and a tuple of the
c-table then appears exactly in the worlds whose chosen values satisfy
its condition.

:func:`compile_pc_table` builds, for a single c-table R of a
:class:`~repro.ctables.pctable.PCDatabase`:

* ground *domain relations* ``__var_<X>(V, P)`` (one per variable R
  mentions) to be added to the initial database, and
* one algebra expression computing R, in which each variable is sampled
  exactly once (a single shared product of per-variable repair-key
  choices) and each candidate tuple is kept iff its condition holds for
  the sampled values.

Because Definition 3.1 interpretations evaluate each relation's query
independently, variables shared between *different* relations would be
re-sampled independently per relation under this compilation.  The
constructions in the paper (Theorems 4.1, 5.1) use each variable within
a single c-table, where the compilation is exact; for cross-relation
correlation use the native pc-table support of
:class:`repro.core.interpretation.Interpretation` instead.

Under non-inflationary semantics the compiled expression re-samples the
variables at *every* kernel application; under inflationary semantics
the repair-key in a datalog rule over ground facts fires only once — in
both cases exactly the behaviour the paper describes for pc-table
macros (end of Sections 3.1 and 3.2).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.ctables.conditions import Condition
from repro.ctables.pctable import CTable, PCDatabase
from repro.errors import SchemaError
from repro.probability.distribution import Distribution
from repro.relational.algebra import (
    Expression,
    Literal,
    Product,
    Project,
    Rename,
    RepairKey,
    Select,
    rel,
)
from repro.relational.predicates import RowPredicate
from repro.relational.relation import Relation

#: Column name prefix for compiled variable-domain relations.
VAR_RELATION_PREFIX = "__var_"
#: Column carrying a sampled variable's value in the shared product.
VAL_COLUMN_PREFIX = "__val_"
#: Hidden column distinguishing candidate tuples during compilation.
TID_COLUMN = "__tid"


def domain_relation(variable: str, distribution: Distribution[Any]) -> Relation:
    """The ground relation ``__var_<X>(V, P)`` listing X's distribution."""
    rows = [(value, probability) for value, probability in distribution.items()]
    return Relation(("V", "P"), rows)


def variable_relation_name(variable: str) -> str:
    """Name of the compiled domain relation for a variable."""
    return f"{VAR_RELATION_PREFIX}{variable}"


def _choice_expression(variable: str) -> Expression:
    """``ρ_{V → __val_X}(π_V(repair-key_{@P}(__var_X)))`` — one sampled value."""
    picked = RepairKey(rel(variable_relation_name(variable)), key=(), weight="P")
    projected = Project(picked, ("V",))
    return Rename(projected, {"V": f"{VAL_COLUMN_PREFIX}{variable}"})


def compile_pc_table(
    name: str, table: CTable, variables: Mapping[str, Distribution[Any]]
) -> tuple[dict[str, Relation], Expression]:
    """Compile one c-table into (ground relations, algebra expression).

    The returned expression mentions only the returned ground relations;
    evaluating it probabilistically (``enumerate_worlds`` /
    ``sample_world``) reproduces the c-table's possible worlds exactly.
    """
    used = sorted(table.variables())
    missing = [v for v in used if v not in variables]
    if missing:
        raise SchemaError(
            f"c-table {name!r} mentions variables {missing!r} with no distribution"
        )
    ground = {
        variable_relation_name(v): domain_relation(v, variables[v]) for v in used
    }

    if any(c.startswith(VAL_COLUMN_PREFIX) or c == TID_COLUMN for c in table.columns):
        raise SchemaError(
            f"c-table {name!r} uses reserved column names ({TID_COLUMN!r} / "
            f"{VAL_COLUMN_PREFIX!r}*)"
        )

    # Candidate tuples, each tagged with an index so equal rows under
    # different conditions stay distinguishable until selection.
    tagged_rows = [row + (tid,) for tid, (row, _cond) in enumerate(table.entries)]
    candidates = Literal(Relation(table.columns + (TID_COLUMN,), tagged_rows))
    conditions: dict[int, Condition] = {
        tid: cond for tid, (_row, cond) in enumerate(table.entries)
    }

    if not used:
        # No random variables: the c-table is certain up to per-tuple
        # constant conditions, which we can resolve immediately.
        rows = [row for row, cond in table.entries if cond.evaluate({})]
        return {}, Literal(Relation(table.columns, rows))

    # One shared product of per-variable choices: each variable is
    # sampled exactly once for the whole relation.
    shared: Expression = _choice_expression(used[0])
    for variable in used[1:]:
        shared = Product(shared, _choice_expression(variable))

    def _row_condition_holds(row: Mapping[str, Any]) -> bool:
        valuation = {v: row[f"{VAL_COLUMN_PREFIX}{v}"] for v in used}
        return conditions[row[TID_COLUMN]].evaluate(valuation)

    predicate = RowPredicate(
        _row_condition_holds,
        columns=(TID_COLUMN,) + tuple(f"{VAL_COLUMN_PREFIX}{v}" for v in used),
        name=f"cond[{name}]",
    )
    selected = Select(Product(candidates, shared), predicate)
    return ground, Project(selected, table.columns)


def compile_pc_database(
    pcdb: PCDatabase,
) -> tuple[dict[str, Relation], dict[str, Expression]]:
    """Compile every c-table of a :class:`PCDatabase`.

    Returns ``(ground_relations, expressions)`` where ``ground_relations``
    must be added to the initial database (the certain relations of the
    pc-database are included) and ``expressions`` maps each c-table name
    to its compiled repair-key expression.

    Raises :class:`SchemaError` when a variable is shared between two
    c-tables, since the macro compilation cannot preserve that
    correlation (see module docstring).
    """
    seen: dict[str, str] = {}
    for name, table in pcdb.tables.items():
        for variable in table.variables():
            if variable in seen and seen[variable] != name:
                raise SchemaError(
                    f"variable {variable!r} is shared by c-tables "
                    f"{seen[variable]!r} and {name!r}; the macro compilation "
                    "would break their correlation — use native pc-table "
                    "support instead"
                )
            seen[variable] = name

    ground: dict[str, Relation] = dict(pcdb.certain)
    expressions: dict[str, Expression] = {}
    for name, table in pcdb.tables.items():
        table_ground, expression = compile_pc_table(name, table, pcdb.variables)
        ground.update(table_ground)
        expressions[name] = expression
    return ground, expressions
