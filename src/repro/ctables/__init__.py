"""Probabilistic c-tables (Definition 2.1) and their repair-key macro
compilation (Section 3.1)."""

from repro.ctables.conditions import (
    FALSE,
    TRUE,
    AndCondition,
    Condition,
    FalseCondition,
    NotCondition,
    OrCondition,
    TrueCondition,
    Valuation,
    VarEqValue,
    VarEqVar,
    VarNeValue,
    var_eq,
    var_ne,
    vars_eq,
)
from repro.ctables.macro import (
    compile_pc_database,
    compile_pc_table,
    domain_relation,
    variable_relation_name,
)
from repro.ctables.pctable import CTable, PCDatabase, boolean_variable

__all__ = [
    "AndCondition",
    "CTable",
    "Condition",
    "FALSE",
    "FalseCondition",
    "NotCondition",
    "OrCondition",
    "PCDatabase",
    "TRUE",
    "TrueCondition",
    "Valuation",
    "VarEqValue",
    "VarEqVar",
    "VarNeValue",
    "boolean_variable",
    "compile_pc_database",
    "compile_pc_table",
    "domain_relation",
    "var_eq",
    "var_ne",
    "variable_relation_name",
    "vars_eq",
]
