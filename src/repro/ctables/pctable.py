"""Probabilistic c-tables and pc-table databases (Definition 2.1).

A :class:`CTable` is a relation whose tuples carry conditions over
random variables.  A :class:`PCDatabase` bundles several c-tables with a
joint distribution of the (independent, finite-domain) random variables
they mention — the succinct representation of a finite probabilistic
database used throughout the paper.

The possible worlds of a :class:`PCDatabase` are the valuations of its
variables; the database of a world keeps exactly the tuples whose
conditions hold (Definition 2.1).  Both full enumeration
(:meth:`PCDatabase.possible_worlds`) and single-world sampling
(:meth:`PCDatabase.sample_world`) are provided; the first backs exact
evaluation (Prop. 4.4 iterates over valuations), the second backs the
Theorem 4.3 sampler.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping, Sequence

from repro.ctables.conditions import TRUE, Condition, Valuation
from repro.errors import ConditionError, SchemaError
from repro.probability.distribution import Distribution, product_distribution
from repro.relational.database import Database
from repro.relational.relation import Relation


class CTable:
    """A c-table: a relation whose rows carry conditions.

    Parameters
    ----------
    columns:
        Column names of the underlying relation.
    entries:
        Iterable of ``(row, condition)`` pairs; ``condition`` may be
        ``None`` as shorthand for the always-true condition.
    """

    def __init__(
        self,
        columns: Sequence[str],
        entries: Iterable[tuple[Sequence[Any], Condition | None]] = (),
    ):
        # Validate columns/arity by building a throwaway relation.
        probe_rows = []
        normalised: list[tuple[tuple, Condition]] = []
        for row, condition in entries:
            tup = tuple(row)
            probe_rows.append(tup)
            normalised.append((tup, condition if condition is not None else TRUE))
        Relation(columns, probe_rows)
        self.columns = tuple(columns)
        self.entries: tuple[tuple[tuple, Condition], ...] = tuple(normalised)

    def variables(self) -> frozenset[str]:
        """All random variables mentioned by any tuple condition."""
        out: frozenset[str] = frozenset()
        for _row, condition in self.entries:
            out |= condition.variables()
        return out

    def instantiate(self, valuation: Valuation) -> Relation:
        """The relation of the world given by ``valuation``."""
        rows = [row for row, cond in self.entries if cond.evaluate(valuation)]
        return Relation(self.columns, rows)

    def __repr__(self) -> str:
        return f"CTable({self.columns!r}, {len(self.entries)} entries)"


class PCDatabase:
    """A probabilistic database represented by pc-tables.

    Parameters
    ----------
    tables:
        Mapping of relation name to :class:`CTable`.
    variables:
        Mapping of variable name to its marginal
        :class:`~repro.probability.distribution.Distribution` (variables
        are independent; the joint is the product — the paper notes this
        is without loss of generality).
    certain:
        Optional mapping of relation name to an ordinary (certain)
        :class:`~repro.relational.relation.Relation` present in every
        world unchanged.

    Examples
    --------
    >>> from fractions import Fraction
    >>> from repro.ctables.conditions import var_eq
    >>> pcdb = PCDatabase(
    ...     tables={"A": CTable(("L",), [(("v1",), var_eq("x1", 0)),
    ...                                  (("-v1",), var_eq("x1", 1))])},
    ...     variables={"x1": Distribution({0: Fraction(1, 2), 1: Fraction(1, 2)})},
    ... )
    >>> len(pcdb.possible_worlds())
    2
    """

    def __init__(
        self,
        tables: Mapping[str, CTable],
        variables: Mapping[str, Distribution[Any]],
        certain: Mapping[str, Relation] | None = None,
    ):
        self.tables = dict(tables)
        self.variables = dict(variables)
        self.certain = dict(certain or {})
        overlap = set(self.tables) & set(self.certain)
        if overlap:
            raise SchemaError(
                f"relations {sorted(overlap)!r} given both as c-tables and certain"
            )
        used = frozenset().union(*(t.variables() for t in self.tables.values())) if self.tables else frozenset()
        undeclared = used - set(self.variables)
        if undeclared:
            raise ConditionError(
                f"conditions mention undeclared variables {sorted(undeclared)!r}"
            )

    # -- world semantics -----------------------------------------------------

    def variable_names(self) -> list[str]:
        """Sorted variable names (the enumeration order of valuations)."""
        return sorted(self.variables)

    def valuation_distribution(self) -> Distribution[tuple]:
        """Joint distribution over valuations, as tuples of values in
        :meth:`variable_names` order."""
        names = self.variable_names()
        return product_distribution([self.variables[n] for n in names])

    def _database_of(self, valuation: Valuation) -> Database:
        relations = {name: table.instantiate(valuation) for name, table in self.tables.items()}
        relations.update(self.certain)
        return Database(relations)

    def database_of_valuation(self, valuation: Valuation) -> Database:
        """The world database for one explicit valuation mapping."""
        return self._database_of(valuation)

    def possible_worlds(self) -> Distribution[Database]:
        """The exact distribution over world databases.

        Distinct valuations that induce the same database are merged
        (their probabilities add), matching the possible-worlds model of
        Section 2.2.
        """
        names = self.variable_names()
        joint = self.valuation_distribution()
        return joint.map(lambda values: self._database_of(dict(zip(names, values))))

    def sample_valuation(self, rng: random.Random) -> dict[str, Any]:
        """Draw one valuation of the random variables."""
        return {name: self.variables[name].sample(rng) for name in self.variable_names()}

    def sample_world(self, rng: random.Random) -> Database:
        """Draw one world database (polynomial time)."""
        return self._database_of(self.sample_valuation(rng))

    def world_count(self) -> int:
        """Number of valuations (worlds before merging equal databases)."""
        count = 1
        for dist in self.variables.values():
            count *= len(dist)
        return count

    def __repr__(self) -> str:
        return (
            f"PCDatabase(tables={sorted(self.tables)!r}, "
            f"certain={sorted(self.certain)!r}, "
            f"variables={len(self.variables)})"
        )


def boolean_variable(probability_one: Any = None) -> Distribution[int]:
    """A 0/1 random variable; uniform when ``probability_one`` is None.

    Convenience for the constructions of Theorems 4.1 / 5.1, which use
    independent variables with Pr(x=0) = Pr(x=1) = 1/2.
    """
    if probability_one is None:
        return Distribution.uniform([0, 1])
    return Distribution.bernoulli(probability_one, true_outcome=1, false_outcome=0)
