"""Partitioned evaluation: executing a static :class:`PartitionPlan`.

The planner (:mod:`repro.analysis.partition`) proves, before evaluation
starts, that a program splits into components sharing no repair-key
provenance and no pc-table variables.  This module cashes that proof in:
each component runs *independently* — on its own cheapest rung via the
existing :class:`~repro.runtime.degradation.DegradationPolicy` ladder —
and the event probability is recombined by independence:

    P(e₁ ∧ ... ∧ eₖ) = Π P(eᵢ)        P(e₁ ∨ ... ∨ eₖ) = 1 − Π (1 − P(eᵢ))

where each ``eᵢ`` is the conjunction/disjunction of the event factors
confined to component ``i`` (factors inside one component keep their
intra-component dependence — only *cross-component* independence is
used, and that is exactly what the plan certifies).  Components no event
factor touches cannot influence the answer and are pruned outright
(``PP005``).

Soundness
---------

* Cross-component independence is structural: a repair-key choice made
  by one component's queries is invisible to every other component, and
  pc-tables sharing variables were merged into one component by the
  planner.
* For forever semantics the recombination additionally needs each
  component's own Cesàro limit to exist (always true for aperiodic
  chains, e.g. lazy kernels) — the same assumption the dynamic
  Section 5.1 partitioner in
  :mod:`repro.core.evaluation.partitioning` makes.  The parity suite
  (``tests/runtime/test_partition_exec.py``) and ``bench_partition``
  gate this bit-identically against whole-program evaluation.
* When a component answers with an estimate, the combined error is
  bounded by the sum of the per-component errors (for values in
  ``[0, 1]``, ``|Πp − Πp̂| ≤ Σ|pᵢ − p̂ᵢ|``) and the failure probability
  by the union bound — both are reported on the combined result.

``workers > 1`` dispatches components onto the fault-tolerant
:func:`~repro.perf.supervisor.supervised_run` pool; exact probabilities
cross the process boundary as ``"p/q"`` strings, so the parallel path is
bit-identical to the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Mapping

from repro.analysis.hints import PlanHints
from repro.analysis.partition import PartitionPlan, compute_partition_plan
from repro.core.chain_builder import DEFAULT_MAX_STATES
from repro.core.evaluation.results import ExactResult, SamplingResult
from repro.core.events import (
    AndEvent,
    ExpressionEvent,
    NotEvent,
    OrEvent,
    QueryEvent,
    RelationNonEmpty,
    TupleIn,
)
from repro.core.interpretation import Interpretation
from repro.core.queries import ForeverQuery, InflationaryQuery
from repro.errors import EvaluationError
from repro.obs.trace import phase_scope
from repro.relational.database import Database
from repro.runtime.context import RunContext, ensure_context
from repro.runtime.degradation import DegradationPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.ctables.pctable import PCDatabase


@dataclass(frozen=True)
class ComponentOutcome:
    """One component's contribution to a partitioned answer."""

    name: str
    members: tuple[str, ...]
    probability: Fraction | float
    exact: bool
    method: str
    states: int
    samples: int = 0
    epsilon: float = 0.0
    delta: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "members": list(self.members),
            "probability": str(self.probability),
            "exact": self.exact,
            "method": self.method,
            "states": self.states,
            "samples": self.samples,
            "epsilon": self.epsilon,
            "delta": self.delta,
        }


@dataclass(frozen=True)
class _EventSplit:
    """The query event, decomposed along the plan's components.

    ``mode`` is how the per-component groups recombine (``"and"`` /
    ``"or"``); ``groups`` maps component name → the sub-event confined
    to it; ``constant`` folds every factor that touches no dynamic
    relation (its truth never changes along a run).
    """

    mode: str
    groups: dict[str, QueryEvent]
    static_factors: tuple[QueryEvent, ...]


def can_partition(plan: PartitionPlan | None, event: QueryEvent) -> bool:
    """Whether partitioned evaluation applies: a splittable plan and an
    event that decomposes along its components."""
    if plan is None or not plan.splittable:
        return False
    try:
        _split_event(plan, event)
    except EvaluationError:
        return False
    return True


def evaluate_partitioned(
    query: ForeverQuery,
    initial: Database,
    plan: PartitionPlan | None = None,
    max_states: int = DEFAULT_MAX_STATES,
    policy: DegradationPolicy | None = None,
    context: RunContext | None = None,
    seed: int | None = None,
    backend: str | None = None,
    prefer_sparse: bool = False,
    workers: int = 1,
) -> ExactResult | SamplingResult:
    """Evaluate a forever/inflationary query through a partition plan.

    ``plan`` defaults to running the planner here;
    :class:`~repro.errors.EvaluationError` is raised when the plan is
    not splittable or the event does not decompose along it (callers
    that want a silent fallback check :func:`can_partition` first).

    Each component is evaluated on the rung its own facts merit —
    :func:`~repro.runtime.degradation.evaluate_forever_resilient` under
    ``policy`` for forever semantics, the Proposition 4.4 evaluator for
    inflationary — and the answers recombine by independence.  The
    result is an :class:`ExactResult` when every component answered
    exactly, otherwise a :class:`SamplingResult` carrying the summed
    error/failure bounds.
    """
    semantics = "inflationary" if isinstance(query, InflationaryQuery) else "forever"
    context = ensure_context(context)
    kernel = query.kernel

    with phase_scope(context, "partition-plan") as scope:
        if plan is None:
            plan = compute_partition_plan(
                kernel,
                database=initial,
                event=query.event if isinstance(query.event, TupleIn) else None,
                semantics=semantics,
            )
        if not plan.splittable:
            raise EvaluationError(
                "partitioned evaluation needs a splittable plan; "
                f"the planner found {len(plan.components)} component(s)"
            )
        split = _split_event(plan, query.event)
        scope.annotate(
            components=len(plan.components),
            evaluated=len(split.groups),
            mode=split.mode,
        )

    evaluated = sorted(split.groups)
    pruned = [c.name for c in plan.components if c.name not in split.groups]
    metrics = getattr(context, "metrics", None)
    if metrics is not None:
        metrics.counter(
            "repro_partition_runs_total",
            "Partitioned evaluations started",
        ).inc(semantics=semantics)
        metrics.counter(
            "repro_partition_components_total",
            "Components evaluated independently by partitioned runs",
        ).inc(len(evaluated))
        if pruned:
            metrics.counter(
                "repro_partition_pruned_total",
                "Components pruned because no event factor touches them",
            ).inc(len(pruned))
    context.record_event(
        f"partition: {len(plan.components)} component(s), evaluating "
        f"{len(evaluated)}, pruned {len(pruned)}"
    )

    outcomes = _solve_components(
        kernel,
        initial,
        plan,
        split,
        semantics=semantics,
        max_states=max_states,
        policy=policy,
        context=context,
        seed=seed,
        backend=backend,
        prefer_sparse=prefer_sparse,
        workers=workers,
    )

    return _combine(split, outcomes, pruned, semantics, initial, context)


# -- event decomposition ------------------------------------------------------


def _flatten(event: QueryEvent, kind: type) -> list[QueryEvent]:
    if isinstance(event, kind):
        return _flatten(event.left, kind) + _flatten(event.right, kind)
    return [event]


def _event_relations(event: QueryEvent) -> set[str]:
    if isinstance(event, (TupleIn, RelationNonEmpty)):
        return {event.relation}
    if isinstance(event, ExpressionEvent):
        from repro.analysis.graph import expression_references

        return {ref for ref, _pos, _prob in expression_references(event.expression)}
    if isinstance(event, NotEvent):
        return _event_relations(event.inner)
    if isinstance(event, (AndEvent, OrEvent)):
        return _event_relations(event.left) | _event_relations(event.right)
    raise EvaluationError(
        f"cannot analyze event {event!r} for partitioned evaluation"
    )


def _split_event(plan: PartitionPlan, event: QueryEvent) -> _EventSplit:
    """Decompose the event into per-component factor groups.

    Top-level disjunctions split by ``or``, everything else (including a
    single atomic event) by ``and``.  A factor whose dynamic relations
    span two components cannot be decomposed — the plan's independence
    claim says nothing about a *joint* test across components.
    """
    if isinstance(event, OrEvent):
        mode, factors = "or", _flatten(event, OrEvent)
    elif isinstance(event, AndEvent):
        mode, factors = "and", _flatten(event, AndEvent)
    else:
        mode, factors = "and", [event]

    member_of: dict[str, str] = {}
    for component in plan.components:
        for member in component.members:
            member_of[member] = component.name

    groups: dict[str, QueryEvent] = {}
    constants: list[QueryEvent] = []
    for factor in factors:
        touched = {
            member_of[relation]
            for relation in _event_relations(factor)
            if relation in member_of
        }
        if not touched:
            # Every relation the factor reads is static: its truth value
            # is the same in every reachable state.
            constants.append(factor)
        elif len(touched) == 1:
            name = touched.pop()
            previous = groups.get(name)
            if previous is None:
                groups[name] = factor
            else:
                groups[name] = (
                    OrEvent(previous, factor)
                    if mode == "or"
                    else AndEvent(previous, factor)
                )
        else:
            raise EvaluationError(
                f"event factor {factor!r} spans components "
                f"{sorted(touched)}; partitioned evaluation cannot "
                "decompose a joint test across independent components"
            )
    return _EventSplit(
        mode=mode, groups=groups, static_factors=tuple(constants)
    )


# -- per-component solving ----------------------------------------------------


def _restrict_pc_tables(
    pc_tables: "PCDatabase | None", members: tuple[str, ...]
) -> "PCDatabase | None":
    if pc_tables is None:
        return None
    kept = {name: pc_tables.tables[name] for name in members if name in pc_tables.tables}
    if not kept:
        return None
    from repro.ctables.pctable import PCDatabase

    used: set[str] = set()
    for table in kept.values():
        used |= table.variables()
    variables = {v: pc_tables.variables[v] for v in sorted(used)}
    return PCDatabase(kept, variables)


def _component_problem(
    kernel: Interpretation,
    initial: Database,
    members: tuple[str, ...],
    footprint: tuple[str, ...],
    group_event: QueryEvent,
) -> tuple[Interpretation, Database]:
    """The component's own kernel and its footprint-restricted database."""
    queries = {m: kernel.queries[m] for m in members if m in kernel.queries}
    sub_kernel = Interpretation(
        queries, pc_tables=_restrict_pc_tables(kernel.pc_tables, members)
    )
    keep = set(footprint) | _event_relations(group_event)
    sub_db = initial.restrict(sorted(keep & set(initial.names())))
    return sub_kernel, sub_db


def _solve_one(task: Mapping[str, Any]) -> ComponentOutcome:
    """Evaluate one component (shared by the serial and pooled paths)."""
    from repro.probability.rng import make_rng

    semantics = task["semantics"]
    sub_kernel = task["kernel"]
    sub_db = task["database"]
    group_event = task["event"]
    if semantics == "inflationary":
        from repro.core.evaluation.exact_inflationary import (
            evaluate_inflationary_exact,
        )

        result: Any = evaluate_inflationary_exact(
            InflationaryQuery(sub_kernel, group_event),
            sub_db,
            max_states=task["max_states"],
            context=task.get("context"),
        )
    else:
        from repro.runtime.degradation import evaluate_forever_resilient

        sub_query = ForeverQuery(sub_kernel, group_event)
        hints = PlanHints.for_kernel(
            sub_kernel,
            event=group_event if isinstance(group_event, TupleIn) else None,
            semantics="forever",
        )
        result = evaluate_forever_resilient(
            sub_query,
            sub_db,
            max_states=task["max_states"],
            policy=task.get("policy"),
            context=task.get("context"),
            rng=make_rng(task.get("seed")),
            hints=hints,
            backend=task.get("backend"),
            prefer_sparse=bool(task.get("prefer_sparse", False)),
        )
    return _outcome_of(task["name"], task["members"], result)


def _outcome_of(name: str, members: tuple[str, ...], result: Any) -> ComponentOutcome:
    if isinstance(result, ExactResult):
        return ComponentOutcome(
            name=name,
            members=tuple(members),
            probability=result.probability,
            exact=True,
            method=result.method,
            states=result.states_explored,
        )
    if isinstance(result, SamplingResult):
        # A samples-driven run reports epsilon/delta as None; the union
        # bound then degrades to "no certified bound", i.e. 1.
        return ComponentOutcome(
            name=name,
            members=tuple(members),
            probability=result.estimate,
            exact=False,
            method=result.method,
            states=0,
            samples=result.samples,
            epsilon=1.0 if result.epsilon is None else float(result.epsilon),
            delta=1.0 if result.delta is None else float(result.delta),
        )
    # Sparse rung: a CertifiedResult's bound is deterministic (no
    # failure probability), so delta stays 0.
    return ComponentOutcome(
        name=name,
        members=tuple(members),
        probability=result.probability,
        exact=False,
        method=result.method,
        states=result.states_explored,
        epsilon=float(result.certificate.bound),
    )


def _pool_worker(task: dict) -> dict:
    """Module-level (picklable) pool entry: solve, serialise the outcome.

    Exact probabilities travel as ``"p/q"`` strings so the parallel path
    round-trips bit-identically to the sequential one.  Under profiling
    the component is solved inside a worker-local span buffer whose
    records ship back with the payload, so the parent trace shows
    component → rung work attributed to the worker that ran it.
    """
    context = None
    if task.get("profile"):
        from repro.obs.profile import worker_tracer
        from repro.perf.parallel import WorkerContext

        context = WorkerContext(tracer=worker_tracer(task))
        task = dict(task)
        task["context"] = context
    if context is not None:
        with context.phase(
            "component-solve", component=task["name"],
            semantics=task["semantics"],
        ):
            outcome = _solve_one(task)
    else:
        outcome = _solve_one(task)
    payload = outcome.as_dict()
    payload["members"] = list(outcome.members)
    if not outcome.exact:
        payload["probability_float"] = float(outcome.probability)
    if context is not None:
        from repro.obs.profile import drain_worker_spans

        spans = drain_worker_spans(context.tracer)
        if spans:
            payload["spans"] = spans
        if not context.ledger.empty:
            payload["ledger"] = context.ledger.as_dict()
    return payload


def _outcome_from_payload(payload: Mapping[str, Any]) -> ComponentOutcome:
    exact = bool(payload["exact"])
    probability: Fraction | float
    if exact:
        probability = Fraction(payload["probability"])
    else:
        probability = float(payload["probability_float"])
    return ComponentOutcome(
        name=str(payload["name"]),
        members=tuple(payload["members"]),
        probability=probability,
        exact=exact,
        method=str(payload["method"]),
        states=int(payload["states"]),
        samples=int(payload["samples"]),
        epsilon=float(payload["epsilon"]),
        delta=float(payload["delta"]),
    )


def _solve_components(
    kernel: Interpretation,
    initial: Database,
    plan: PartitionPlan,
    split: _EventSplit,
    *,
    semantics: str,
    max_states: int,
    policy: DegradationPolicy | None,
    context: RunContext,
    seed: int | None,
    backend: str | None,
    prefer_sparse: bool,
    workers: int,
) -> list[ComponentOutcome]:
    tasks: list[dict[str, Any]] = []
    for component in plan.components:
        group_event = split.groups.get(component.name)
        if group_event is None:
            continue
        sub_kernel, sub_db = _component_problem(
            kernel, initial, component.members, component.footprint, group_event
        )
        tasks.append(
            {
                "name": component.name,
                "members": component.members,
                "kernel": sub_kernel,
                "database": sub_db,
                "event": group_event,
                "semantics": semantics,
                "max_states": max_states,
                "policy": policy,
                "seed": None if seed is None else seed + component.index,
                "backend": backend,
                "prefer_sparse": prefer_sparse,
            }
        )

    if workers > 1 and len(tasks) > 1:
        from repro.perf.parallel import ParallelConfig
        from repro.perf.supervisor import supervised_run

        if context.tracer.enabled:
            for task in tasks:
                task["profile"] = True
        with phase_scope(context, "partition-solve", workers=workers):
            payloads = supervised_run(
                _pool_worker,
                tasks,
                ParallelConfig(workers=min(workers, len(tasks))),
                context,
            )
        return [_outcome_from_payload(payload) for payload in payloads]

    outcomes = []
    for task in tasks:
        task["context"] = context
        with phase_scope(context, "partition-solve", component=task["name"]):
            outcomes.append(_solve_one(task))
    return outcomes


# -- recombination ------------------------------------------------------------


def _static_constant(split: _EventSplit, initial: Database) -> Fraction:
    """The contribution of factors that read only static relations.

    Their truth never changes along a run, so they are decided on the
    initial state.  Returns the mode's neutral element when there are
    none: ``1`` for ``and`` (an empty conjunction holds), ``0`` for
    ``or`` (an empty disjunction does not).
    """
    held = [factor.holds(initial) for factor in split.static_factors]
    if split.mode == "or":
        return Fraction(1) if any(held) else Fraction(0)
    return Fraction(1) if all(held) else Fraction(0)


def _combine(
    split: _EventSplit,
    outcomes: list[ComponentOutcome],
    pruned: list[str],
    semantics: str,
    initial: Database,
    context: RunContext,
) -> ExactResult | SamplingResult:
    all_exact = all(outcome.exact for outcome in outcomes)
    constant = _static_constant(split, initial)

    for outcome in outcomes:
        # One ledger row per component, keyed by the rung that answered
        # it — the per-component (ε, δ) the profiler surfaces.
        context.ledger.add(
            "partition-solve",
            component=outcome.name,
            rung=outcome.method,
            states=outcome.states,
            samples=outcome.samples,
            epsilon=outcome.epsilon,
            delta=outcome.delta,
        )

    if split.mode == "and":
        combined: Fraction | float = constant
        for outcome in outcomes:
            combined = combined * outcome.probability
    else:
        miss: Fraction | float = 1 - constant
        for outcome in outcomes:
            miss = miss * (1 - outcome.probability)
        combined = 1 - miss

    states = sum(outcome.states for outcome in outcomes)
    details: dict[str, Any] = {
        "mode": split.mode,
        "components": [outcome.as_dict() for outcome in outcomes],
        "pruned": pruned,
        "semantics": semantics,
    }
    if split.static_factors:
        details["static_factor"] = str(constant)

    if all_exact:
        result: ExactResult | SamplingResult = ExactResult(
            probability=Fraction(combined),
            states_explored=states,
            method="partition-exact",
            details=details,
        )
    else:
        # |Π p − Π p̂| ≤ Σ |p_i − p̂_i| on [0, 1]; failure by union bound.
        epsilon = min(1.0, sum(outcome.epsilon for outcome in outcomes))
        delta = min(1.0, sum(outcome.delta for outcome in outcomes))
        samples = max(1, sum(outcome.samples for outcome in outcomes))
        estimate = min(1.0, max(0.0, float(combined)))
        result = SamplingResult(
            estimate=estimate,
            samples=samples,
            positive=round(estimate * samples),
            epsilon=epsilon,
            delta=delta,
            method="partition-mixed",
            details=details,
        )
    context.finish(method=result.method)
    return result
