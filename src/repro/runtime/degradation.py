"""Graceful exact → sparse → lumped → MCMC degradation for forever-queries.

Proposition 5.4's chain over database instances can be exponential in
the database size, so exact evaluation over an explicit chain is a bet,
not a guarantee.  Instead of aborting when the bet is lost
(:class:`~repro.errors.StateSpaceLimitExceeded`), a
:class:`DegradationPolicy` steps down a ladder of evaluators:

1. **exact** (:func:`~repro.core.evaluation.evaluate_forever_exact`) —
   the Prop 5.4 / Thm 5.5 answer on the explicit chain;
2. **sparse** (:func:`~repro.sparse.evaluate_forever_sparse`) — the
   chain streamed into CSR form and solved iteratively; every answer
   carries a residual-derived :class:`~repro.sparse.SolveCertificate`
   proving ``|answer - exact| <= sparse_epsilon``, and a solve that
   cannot be certified *refuses*
   (:class:`~repro.errors.SolveRefusedError`) and falls through like a
   state-space overflow.  Granted ``sparse_state_factor`` times the
   exact rung's state allowance;
3. **lumped** (:func:`~repro.core.evaluation.evaluate_forever_lumped`)
   — still exact, but granted a larger state allowance because its
   expensive linear-algebra phase runs on the quotient chain
   (``lumped_state_factor``);
4. **MCMC** (:func:`~repro.core.evaluation.evaluate_forever_mcmc` with
   :func:`~repro.core.evaluation.adaptive_burn_in`) — never
   materialises the chain at all; an (ε, δ) estimate is returned where
   an error used to be raised.

Every downgrade is recorded in the run's
:class:`~repro.runtime.context.RunReport` with the triggering reason,
so the answer's provenance (exact, certified-numeric, or estimated,
and why) is always auditable.  Wall-clock/step budget exhaustion and
cancellation are *not* degraded — a run out of time is out of time for
the fallback too — only state-space overflow and certified-solve
refusal are.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.core.chain_builder import DEFAULT_MAX_STATES
from repro.core.evaluation.exact_noninflationary import evaluate_forever_exact
from repro.core.evaluation.lumped import evaluate_forever_lumped
from repro.core.evaluation.results import ExactResult, SamplingResult
from repro.core.evaluation.sampling_noninflationary import (
    DEFAULT_ADAPTIVE_MAX_STEPS,
    adaptive_burn_in,
    evaluate_forever_mcmc,
)
from repro.core.queries import ForeverQuery
from repro.errors import (
    EvaluationError,
    SolveRefusedError,
    StateSpaceLimitExceeded,
)
from repro.probability.rng import RngLike, make_rng
from repro.relational.database import Database
from repro.runtime.context import RunContext, ensure_context

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.hints import PlanHints
    from repro.perf.cache import TransitionCache
    from repro.perf.parallel import ParallelConfig
    from repro.runtime.checkpoint import Checkpoint
    from repro.sparse import CertifiedResult

#: The degradation ladder per mode.
_LADDERS = {
    "none": ("exact",),
    "sparse": ("exact", "sparse"),
    "lumped": ("exact", "lumped"),
    "mcmc": ("exact", "mcmc"),
    "auto": ("exact", "sparse", "lumped", "mcmc"),
}


@dataclass(frozen=True)
class DegradationPolicy:
    """What to do when exact evaluation trips the state budget.

    Attributes
    ----------
    mode:
        ``"none"`` (raise, the legacy behaviour), ``"sparse"``,
        ``"lumped"``, ``"mcmc"``, or ``"auto"`` (sparse, then lumped,
        then MCMC).
    sparse_epsilon:
        Certified accuracy contract for the sparse rung.  An answer
        the solver cannot *prove* is within ``sparse_epsilon`` of the
        exact rational is refused and the ladder continues.
    sparse_state_factor:
        Multiplier on ``max_states`` granted to the sparse retry; CSR
        rows cost O(out-degree) floats instead of a dict of Fractions,
        so a much larger exploration is affordable.
    sparse_max_iterations:
        Iteration budget per component solve on the sparse rung.
    lumped_state_factor:
        Multiplier on ``max_states`` granted to the lumped retry; the
        full chain is still built there, but its linear algebra runs on
        the quotient, so a larger exploration is affordable.
    mcmc_epsilon / mcmc_delta / mcmc_samples:
        Accuracy plan for the MCMC rung (``mcmc_samples`` overrides the
        (ε, δ) plan when set).
    mcmc_burn_in:
        Fixed burn-in for the MCMC rung; ``None`` estimates it with
        :func:`~repro.core.evaluation.adaptive_burn_in` (the explicit
        chain is unavailable by construction when this rung is
        reached).
    adaptive_walkers / adaptive_window / adaptive_tolerance /
    adaptive_max_steps:
        Knobs for the adaptive burn-in heuristic.  The tolerance
        default is looser than :func:`adaptive_burn_in`'s own because
        an ensemble of ``adaptive_walkers`` walkers quantises the
        event frequency in steps of ``1 / adaptive_walkers``: a
        tolerance below the sampling noise would spin to
        ``adaptive_max_steps`` and abort the last rung of the ladder.
    mcmc_workers:
        Worker processes for the MCMC rung's trials (``1`` keeps the
        historical sequential sampler bit-identically; ``N > 1`` is
        seed-stable for fixed N — see
        :class:`~repro.perf.parallel.ParallelConfig`).
    mcmc_cache_size:
        When set, the MCMC rung (both the adaptive burn-in ensemble
        and the sampler walks) draws successors from a bounded
        :class:`~repro.perf.cache.TransitionCache` of this size.
    """

    mode: str = "auto"
    sparse_epsilon: float = 1e-6
    sparse_state_factor: int = 25
    sparse_max_iterations: int = 50_000
    lumped_state_factor: int = 4
    mcmc_epsilon: float = 0.1
    mcmc_delta: float = 0.05
    mcmc_samples: int | None = None
    mcmc_burn_in: int | None = None
    adaptive_walkers: int = 64
    adaptive_window: int = 20
    adaptive_tolerance: float = 0.1
    adaptive_max_steps: int = DEFAULT_ADAPTIVE_MAX_STEPS
    mcmc_workers: int = 1
    mcmc_cache_size: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in _LADDERS:
            raise EvaluationError(
                f"unknown degradation mode {self.mode!r}; "
                f"expected one of {sorted(_LADDERS)}"
            )
        if self.sparse_epsilon <= 0:
            raise EvaluationError("sparse_epsilon must be > 0")
        if self.sparse_state_factor < 1:
            raise EvaluationError("sparse_state_factor must be >= 1")
        if self.sparse_max_iterations < 1:
            raise EvaluationError("sparse_max_iterations must be >= 1")
        if self.lumped_state_factor < 1:
            raise EvaluationError("lumped_state_factor must be >= 1")
        if self.adaptive_walkers < 1:
            raise EvaluationError("adaptive_walkers must be >= 1")
        if self.adaptive_tolerance < 0:
            raise EvaluationError("adaptive_tolerance must be >= 0")
        if self.mcmc_workers < 1:
            raise EvaluationError("mcmc_workers must be >= 1")
        if self.mcmc_cache_size is not None and self.mcmc_cache_size < 1:
            raise EvaluationError("mcmc_cache_size must be >= 1")

    @property
    def ladder(self) -> tuple[str, ...]:
        return _LADDERS[self.mode]

    def parallel_config(self) -> "ParallelConfig | None":
        """The MCMC rung's pool configuration (``None`` when serial)."""
        if self.mcmc_workers <= 1:
            return None
        from repro.perf.parallel import ParallelConfig

        return ParallelConfig(workers=self.mcmc_workers)


def evaluate_forever_resilient(
    query: ForeverQuery,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    policy: DegradationPolicy | None = None,
    context: RunContext | None = None,
    rng: RngLike = None,
    checkpoint_path: "str | Path | None" = None,
    resume: "Checkpoint | str | Path | None" = None,
    cache: "TransitionCache | None" = None,
    hints: "PlanHints | None" = None,
    backend: str | None = None,
    prefer_sparse: bool = False,
) -> Union[ExactResult, "CertifiedResult", SamplingResult]:
    """Evaluate a forever-query, degrading instead of aborting.

    Runs the policy's ladder top-down; a
    :class:`~repro.errors.StateSpaceLimitExceeded` or
    :class:`~repro.errors.SolveRefusedError` from one rung moves to
    the next and is recorded via
    :meth:`RunContext.record_downgrade`.  Budget exhaustion and
    cancellation propagate unchanged from any rung.  Returns whichever
    result type the successful rung produces (:class:`ExactResult` for
    exact/lumped, :class:`~repro.sparse.CertifiedResult` for sparse,
    :class:`SamplingResult` for MCMC).

    ``prefer_sparse`` moves the sparse certified rung to the front of
    the ladder (inserting it if the mode's ladder lacks it) — the
    ``backend="sparse"`` request surface: answer numerically with a
    certificate first, keep the remaining rungs as fallbacks.

    ``checkpoint_path`` / ``resume`` apply to the MCMC rung (the only
    long-running sampler on the ladder).  Resuming from a checkpoint
    jumps straight to that rung.

    ``cache`` is an optional pre-built — possibly warm —
    :class:`~repro.perf.cache.TransitionCache` on the query's kernel,
    shared by every rung: the exact and lumped chain builds draw
    memoized rows from it, and (when no checkpointing is configured)
    the MCMC rung walks on it too.  This is how a long-lived
    :class:`~repro.service.EngineSession` makes repeated queries on the
    same program cheap; it overrides the policy's ``mcmc_cache_size``.

    ``hints`` are the static analyzer's
    :class:`~repro.analysis.hints.PlanHints` for the query's kernel.  A
    kernel the analyzer proved deterministic (``PH001``) induces a
    one-state-per-step chain, so every rung below exact could only
    re-estimate a number the exact rung computes outright; the ladder
    collapses to ``("exact",)`` and the shortcut is recorded in the run
    report.

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    >>> context = RunContext()
    >>> result = evaluate_forever_resilient(
    ...     query, db, max_states=3,
    ...     policy=DegradationPolicy(mode="lumped"), context=context)
    >>> result.probability
    Fraction(1, 4)
    >>> [d.from_method for d in context.report().downgrades]
    ['exact']
    """
    policy = policy if policy is not None else DegradationPolicy()
    context = ensure_context(context)
    generator = make_rng(rng)

    ladder = list(policy.ladder)
    if prefer_sparse:
        ladder = ["sparse"] + [rung for rung in ladder if rung != "sparse"]
    if hints is not None and hints.deterministic and len(ladder) > 1:
        # PH001: no repair-key choice anywhere in the kernel — the chain
        # is a deterministic trajectory; sampling rungs cannot help.
        context.record_event(
            "plan hint PH001 (deterministic kernel): using the exact rung only"
        )
        ladder = ["exact"]
    if (
        "sparse" in ladder
        and len(ladder) > 1
        and hints is not None
        and getattr(hints, "sparse_eligible", None) is False
    ):
        # PH006: the analyzer ruled the program out for the certified
        # numeric rung; skip it instead of failing into it at runtime.
        context.record_event(
            "plan hint PH006 (not sparse-eligible): dropping the sparse rung"
        )
        ladder = [rung for rung in ladder if rung != "sparse"]
    if resume is not None and "mcmc" in ladder:
        # The checkpoint proves the exact rungs already overflowed (or
        # the caller decided for MCMC); do not rebuild the chain.
        context.record_event("resuming from checkpoint: skipping to MCMC rung")
        ladder = ["mcmc"]

    last_error: Union[StateSpaceLimitExceeded, SolveRefusedError, None] = None
    for position, rung in enumerate(ladder):
        on_last_rung = position == len(ladder) - 1
        try:
            if rung == "exact":
                result: Union[
                    ExactResult, "CertifiedResult", SamplingResult
                ] = evaluate_forever_exact(
                    query, initial, max_states=max_states, context=context,
                    cache=cache, backend=backend,
                )
            elif rung == "sparse":
                from repro.sparse import evaluate_forever_sparse

                result = evaluate_forever_sparse(
                    query,
                    initial,
                    epsilon=policy.sparse_epsilon,
                    max_states=max_states * policy.sparse_state_factor,
                    max_iterations=policy.sparse_max_iterations,
                    context=context,
                    backend=backend,
                )
            elif rung == "lumped":
                result = evaluate_forever_lumped(
                    query,
                    initial,
                    max_states=max_states * policy.lumped_state_factor,
                    context=context,
                    cache=cache,
                    backend=backend,
                )
            else:
                burn_in = policy.mcmc_burn_in
                if burn_in is None and resume is None:
                    burn_in = adaptive_burn_in(
                        query,
                        initial,
                        rng=generator,
                        walkers=policy.adaptive_walkers,
                        window=policy.adaptive_window,
                        tolerance=policy.adaptive_tolerance,
                        max_steps=policy.adaptive_max_steps,
                        context=context,
                        cache_size=policy.mcmc_cache_size,
                        cache=cache,
                        backend=backend,
                    )
                    context.record_event(f"adaptive burn-in estimated: {burn_in}")
                result = evaluate_forever_mcmc(
                    query,
                    initial,
                    epsilon=policy.mcmc_epsilon,
                    delta=policy.mcmc_delta,
                    burn_in=burn_in,
                    samples=policy.mcmc_samples,
                    rng=generator,
                    context=context,
                    checkpoint_path=checkpoint_path,
                    resume=resume,
                    cache_size=policy.mcmc_cache_size,
                    parallel=policy.parallel_config(),
                    cache=cache if checkpoint_path is None and resume is None else None,
                    backend=backend,
                )
        except (StateSpaceLimitExceeded, SolveRefusedError) as error:
            if on_last_rung:
                raise
            last_error = error
            context.record_downgrade(rung, ladder[position + 1], str(error))
            continue
        context.finish(method=result.method)
        return result

    raise last_error if last_error is not None else EvaluationError(
        "degradation ladder is empty"
    )  # pragma: no cover - ladder always has >= 1 rung
