"""Checkpoint / resume for the long-running samplers.

A Theorem 5.6 run multiplies a burn-in (the mixing time, potentially
huge) by a Chernoff sample count; killing it an hour in used to lose
everything.  A :class:`Checkpoint` captures the sampler's exact
position — completed samples, positive tally, the mid-burn-in walker
state (as a serialised database) and, crucially, the full Mersenne
Twister state from :mod:`repro.probability.rng`'s generator — so a
resumed run continues the *same* random sequence and produces estimates
bit-identical to an uninterrupted run.

The on-disk format is JSON with an explicit ``version`` and ``kind``;
anything unexpected raises :class:`~repro.errors.CheckpointError`
rather than resuming garbage.  An optional ``fingerprint`` of the
query/database pair guards against resuming a checkpoint into a
different run.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError
from repro.faults import SITE_CHECKPOINT_WRITE, maybe_fire
from repro.io import database_from_json, database_to_json
from repro.relational.database import Database

#: Format version written to every checkpoint file.
CHECKPOINT_VERSION = 1

#: ``kind`` tag of Theorem 5.6 forever-query sampler checkpoints.
KIND_FOREVER_MCMC = "forever-mcmc"


def _encode_rng_state(state: Any) -> list:
    """``random.Random.getstate()`` → JSON-friendly nested lists."""

    def encode(value: Any) -> Any:
        if isinstance(value, tuple):
            return [encode(item) for item in value]
        return value

    return encode(state)


def _decode_rng_state(data: Any) -> tuple:
    """Inverse of :func:`_encode_rng_state` (lists back to tuples)."""

    def decode(value: Any) -> Any:
        if isinstance(value, list):
            return tuple(decode(item) for item in value)
        return value

    state = decode(data)
    if not isinstance(state, tuple):
        raise CheckpointError(f"malformed RNG state in checkpoint: {data!r}")
    return state


def run_fingerprint(kernel_repr: str, initial: Database, event_repr: str) -> str:
    """Stable digest identifying (kernel, database, event) for a run."""
    payload = json.dumps(
        {
            "kernel": kernel_repr,
            "database": database_to_json(initial),
            "event": event_repr,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """A serialisable snapshot of sampler progress.

    Attributes
    ----------
    kind:
        Which sampler wrote this (currently :data:`KIND_FOREVER_MCMC`).
    samples_done / positive / planned:
        Partial tallies: completed samples, how many satisfied the
        event, and the total planned count.
    burn_in:
        Steps per sample (fixed at planning time, restored on resume so
        a resume never recomputes a different mixing time).
    epsilon / delta:
        The recorded accuracy guarantee (``None`` when the caller fixed
        the sample count directly).
    rng_state:
        ``random.Random.getstate()`` of the run's generator at the
        instant of the snapshot.
    walker:
        Mid-burn-in walker position: ``{"state": <database json>,
        "steps_done": n}``, or ``None`` when the snapshot sits on a
        sample boundary.
    fingerprint:
        Digest of (kernel, database, event); checked on resume.
    """

    kind: str
    samples_done: int
    positive: int
    planned: int
    burn_in: int
    epsilon: float | None
    delta: float | None
    rng_state: tuple
    walker: dict | None = None
    fingerprint: str | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.samples_done < 0 or self.positive < 0:
            raise CheckpointError("checkpoint tallies must be non-negative")
        if self.positive > self.samples_done:
            raise CheckpointError(
                f"checkpoint positive count {self.positive} exceeds "
                f"samples_done {self.samples_done}"
            )

    # -- resume helpers -------------------------------------------------

    def restore_rng(self, generator: random.Random) -> None:
        """Load the saved Mersenne Twister state into ``generator``."""
        try:
            generator.setstate(self.rng_state)
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint RNG state is not restorable: {error}"
            ) from error

    def walker_state(self) -> tuple[Database, int] | None:
        """The mid-burn-in walker ``(database, steps_done)``, if any."""
        if self.walker is None:
            return None
        try:
            db = database_from_json(self.walker["state"])
            steps_done = int(self.walker["steps_done"])
        except (KeyError, TypeError) as error:
            raise CheckpointError(
                f"malformed walker snapshot in checkpoint: {error}"
            ) from error
        return db, steps_done

    def verify_fingerprint(self, expected: str | None) -> None:
        """Raise unless the checkpoint belongs to the ``expected`` run."""
        if self.fingerprint is None or expected is None:
            return
        if self.fingerprint != expected:
            raise CheckpointError(
                "checkpoint does not match this run (different kernel, "
                "database, or event); refusing to resume"
            )

    # -- (de)serialisation ----------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "kind": self.kind,
            "samples_done": self.samples_done,
            "positive": self.positive,
            "planned": self.planned,
            "burn_in": self.burn_in,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "rng_state": _encode_rng_state(self.rng_state),
            "walker": self.walker,
            "fingerprint": self.fingerprint,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, data: Any) -> "Checkpoint":
        if not isinstance(data, dict):
            raise CheckpointError("checkpoint JSON must be an object")
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this library writes version {CHECKPOINT_VERSION})"
            )
        try:
            return cls(
                kind=data["kind"],
                samples_done=data["samples_done"],
                positive=data["positive"],
                planned=data["planned"],
                burn_in=data["burn_in"],
                epsilon=data.get("epsilon"),
                delta=data.get("delta"),
                rng_state=_decode_rng_state(data["rng_state"]),
                walker=data.get("walker"),
                fingerprint=data.get("fingerprint"),
                meta=data.get("meta") or {},
            )
        except KeyError as error:
            raise CheckpointError(
                f"checkpoint JSON is missing field {error.args[0]!r}"
            ) from None

    def save(self, path: str | Path) -> None:
        """Write the checkpoint crash-safely.

        The rename-into-place protocol: serialise to a temp file *in
        the target's directory* (cross-filesystem renames are not
        atomic), flush and ``fsync`` the data, atomically rename over
        the target, then ``fsync`` the directory so the rename itself
        survives a power cut.  A reader therefore sees either the old
        complete checkpoint or the new complete checkpoint — never a
        torn file — no matter where the writer dies.

        The ``checkpoint.write`` fault site simulates exactly such a
        death: a fired ``torn-write`` leaves a truncated temp file
        behind and raises, *without* touching the target.
        """
        payload = json.dumps(self.to_json()) + "\n"
        target = Path(path)
        temp = target.with_name(target.name + ".tmp")
        spec = maybe_fire(SITE_CHECKPOINT_WRITE, path=str(target))
        torn = spec is not None and spec.action in ("torn-write", "corrupt")
        with open(temp, "w", encoding="utf-8") as handle:
            if torn:
                # Simulate the writer dying mid-write: half the bytes
                # reach the disk, the rename never happens.
                handle.write(payload[: max(1, len(payload) // 2)])
                handle.flush()
                raise CheckpointError(
                    f"injected torn write at {temp}",
                    details={"site": SITE_CHECKPOINT_WRITE, "path": str(temp)},
                    retryable=True,
                )
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)
        try:
            directory_fd = os.open(target.parent, os.O_RDONLY)
        except OSError:
            return  # platform cannot open directories; rename still atomic
        try:
            os.fsync(directory_fd)
        except OSError:
            pass
        finally:
            os.close(directory_fd)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read and validate a checkpoint file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {error}"
        ) from error
    return Checkpoint.from_json(data)
