"""Resilient evaluation runtime: budgets, cancellation, checkpoints,
and graceful degradation.

The paper's evaluators are exact on explicit Markov chains whose size
can be exponential in the database (Proposition 5.4) — this package is
the substrate that makes running them safe in production:

* :class:`Budget` / :class:`RunContext` — wall-clock deadlines, step
  and state limits, cooperative cancellation, and a structured
  :class:`RunReport` of what was spent and why;
* :class:`Checkpoint` — serialise and restore sampler progress (partial
  tallies, walker state, RNG state) so interrupted Theorem 5.6 runs
  resume bit-identically;
* :class:`DegradationPolicy` / :func:`evaluate_forever_resilient` —
  fall back exact → lumped → MCMC when the state budget trips, with
  every downgrade recorded instead of raised;
* :class:`RetryPolicy` — deadline-aware full-jitter backoff shared by
  the worker supervisor, the scheduler's re-admission path, and the
  HTTP client.

Every evaluator in :mod:`repro.core.evaluation` accepts an optional
``context``; the default (no context) keeps historical behaviour and
signatures intact.
"""

from repro.runtime.budget import Budget
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    KIND_FOREVER_MCMC,
    Checkpoint,
    load_checkpoint,
    run_fingerprint,
)
from repro.runtime.context import (
    Downgrade,
    PhaseTiming,
    RunContext,
    RunReport,
    ensure_context,
)
from repro.runtime.degradation import DegradationPolicy, evaluate_forever_resilient
from repro.runtime.partition_exec import (
    ComponentOutcome,
    can_partition,
    evaluate_partitioned,
)
from repro.runtime.retry import (
    CHUNK_RETRY,
    HTTP_RETRY,
    RetryPolicy,
    idempotency_key,
    is_retryable,
    retry_after_hint,
)

__all__ = [
    "Budget",
    "CHECKPOINT_VERSION",
    "CHUNK_RETRY",
    "Checkpoint",
    "ComponentOutcome",
    "DegradationPolicy",
    "Downgrade",
    "HTTP_RETRY",
    "KIND_FOREVER_MCMC",
    "PhaseTiming",
    "RetryPolicy",
    "RunContext",
    "RunReport",
    "can_partition",
    "ensure_context",
    "evaluate_forever_resilient",
    "evaluate_partitioned",
    "idempotency_key",
    "is_retryable",
    "load_checkpoint",
    "retry_after_hint",
    "run_fingerprint",
]
