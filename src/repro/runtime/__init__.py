"""Resilient evaluation runtime: budgets, cancellation, checkpoints,
and graceful degradation.

The paper's evaluators are exact on explicit Markov chains whose size
can be exponential in the database (Proposition 5.4) — this package is
the substrate that makes running them safe in production:

* :class:`Budget` / :class:`RunContext` — wall-clock deadlines, step
  and state limits, cooperative cancellation, and a structured
  :class:`RunReport` of what was spent and why;
* :class:`Checkpoint` — serialise and restore sampler progress (partial
  tallies, walker state, RNG state) so interrupted Theorem 5.6 runs
  resume bit-identically;
* :class:`DegradationPolicy` / :func:`evaluate_forever_resilient` —
  fall back exact → lumped → MCMC when the state budget trips, with
  every downgrade recorded instead of raised.

Every evaluator in :mod:`repro.core.evaluation` accepts an optional
``context``; the default (no context) keeps historical behaviour and
signatures intact.
"""

from repro.runtime.budget import Budget
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    KIND_FOREVER_MCMC,
    Checkpoint,
    load_checkpoint,
    run_fingerprint,
)
from repro.runtime.context import (
    Downgrade,
    PhaseTiming,
    RunContext,
    RunReport,
    ensure_context,
)
from repro.runtime.degradation import DegradationPolicy, evaluate_forever_resilient

__all__ = [
    "Budget",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "DegradationPolicy",
    "Downgrade",
    "KIND_FOREVER_MCMC",
    "PhaseTiming",
    "RunContext",
    "RunReport",
    "ensure_context",
    "evaluate_forever_resilient",
    "load_checkpoint",
    "run_fingerprint",
]
