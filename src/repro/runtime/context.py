"""Cooperative run control: cancellation, budget checks, run reports.

A :class:`RunContext` travels through an evaluation call tree (every
evaluator accepts an optional ``context``) and provides three services:

* **budget enforcement** — :meth:`RunContext.tick_steps` /
  :meth:`RunContext.tick_states` charge work against the
  :class:`~repro.runtime.budget.Budget` and raise
  :class:`~repro.errors.BudgetExceededError` the moment an axis is
  exhausted;
* **cooperative cancellation** — :meth:`RunContext.cancel` (safe to
  call from another thread or a signal handler) makes the next check
  raise :class:`~repro.errors.RunCancelledError`;
* **reporting** — downgrades and noteworthy events are recorded as they
  happen and :meth:`RunContext.report` assembles a structured
  :class:`RunReport` of what was spent and why.

Checks happen at step/state granularity inside the evaluators' hot
loops, so interruption latency is one transition, never one full run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import BudgetExceededError, RunCancelledError
from repro.obs.profile import ResourceLedger
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.runtime.budget import Budget


@dataclass
class PhaseTiming:
    """Exclusive wall/CPU totals of one named run phase.

    *Exclusive* means time spent in a nested phase is charged to the
    child, not the parent — so the per-phase wall totals partition the
    instrumented portion of the run and sum (plus glue) to the run's
    wall clock.
    """

    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    count: int = 0

    def as_dict(self) -> dict:
        return {
            "wall_seconds": round(self.wall_seconds, 9),
            "cpu_seconds": round(self.cpu_seconds, 9),
            "count": self.count,
        }


class _PhaseScope:
    """Context manager pairing a tracer span with exclusive accounting."""

    __slots__ = ("_context", "_name", "_span")

    def __init__(self, context: "RunContext", name: str, attrs: dict) -> None:
        self._context = context
        self._name = name
        self._span = context.tracer.span(name, **attrs)

    def annotate(self, **attrs: Any) -> None:
        self._span.annotate(**attrs)

    def __enter__(self) -> "_PhaseScope":
        context = self._context
        context._phase_boundary()
        context._phase_stack.append(self._name)
        timing = context._phases.get(self._name)
        if timing is None:
            timing = context._phases[self._name] = PhaseTiming()
        timing.count += 1
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._span.__exit__(*exc_info)
        context = self._context
        context._phase_boundary()
        if context._phase_stack and context._phase_stack[-1] == self._name:
            context._phase_stack.pop()


@dataclass(frozen=True)
class Downgrade:
    """One recorded evaluator downgrade (e.g. exact → lumped)."""

    from_method: str
    to_method: str
    reason: str

    def as_dict(self) -> dict:
        return {
            "from": self.from_method,
            "to": self.to_method,
            "reason": self.reason,
        }


@dataclass
class RunReport:
    """Structured account of one evaluation run.

    Attributes
    ----------
    outcome:
        ``"ok"`` on success, ``"budget_exceeded"`` / ``"cancelled"``
        when the run was stopped, ``"running"`` while in flight.
    method:
        The algorithm that produced the final answer (``None`` until a
        result exists).
    downgrades:
        The degradation path taken, in order.
    events:
        Free-form progress notes recorded by evaluators.
    budget / spent:
        The configured limits and what was actually consumed.
    cache:
        Hit/miss/eviction counters of the run's
        :class:`~repro.perf.cache.TransitionCache` (``None`` when no
        cache was attached).  Parallel runs report the summed counters
        of the workers' private caches.
    phases:
        Exclusive per-phase wall/CPU timings (``parse``, ``chain-build``,
        ``solve``, ``sample``, …) recorded via :meth:`RunContext.phase`.
    ledger:
        Serialised :class:`~repro.obs.profile.ResourceLedger` — per
        phase/component/rung resource counters plus kernel operator
        timings (``None`` when nothing was recorded).
    """

    outcome: str = "running"
    method: str | None = None
    downgrades: list[Downgrade] = field(default_factory=list)
    events: list[str] = field(default_factory=list)
    budget: Mapping[str, Any] = field(default_factory=dict)
    spent: Mapping[str, Any] = field(default_factory=dict)
    cache: Mapping[str, Any] | None = None
    phases: Mapping[str, PhaseTiming] = field(default_factory=dict)
    ledger: Mapping[str, Any] | None = None

    def as_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "method": self.method,
            "downgrades": [d.as_dict() for d in self.downgrades],
            "events": list(self.events),
            "budget": dict(self.budget),
            "spent": dict(self.spent),
            "cache": dict(self.cache) if self.cache is not None else None,
            "phases": {
                name: timing.as_dict() for name, timing in self.phases.items()
            },
            "ledger": dict(self.ledger) if self.ledger is not None else None,
        }


class RunContext:
    """Shared state of one evaluation run: budget, token, counters.

    Parameters
    ----------
    budget:
        Resource limits; ``None`` means unlimited.
    clock:
        Monotonic-seconds callable, injectable for deterministic tests.
    tracer:
        Span/event sink for this run; defaults to the no-op
        :data:`~repro.obs.trace.NULL_TRACER` (near-zero cost — hot
        loops guard with ``if tracer.enabled:``).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` that
        run-level counters (downgrades) publish into; ``None`` outside
        the service.
    run_id:
        Correlation id carried into logs and the trace's ``run``
        record (the service uses the job id).

    Examples
    --------
    >>> context = RunContext(Budget(max_steps=2))
    >>> context.tick_steps()
    >>> context.tick_steps()
    >>> context.tick_steps()
    Traceback (most recent call last):
        ...
    repro.errors.BudgetExceededError: step budget exhausted: 3 > max_steps=2
    """

    def __init__(
        self,
        budget: Budget | None = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Tracer | NullTracer | None = None,
        metrics: Any = None,
        run_id: str | None = None,
    ) -> None:
        self.budget = budget if budget is not None else Budget.unlimited()
        self._clock = clock
        self._started = clock()
        self.steps_used = 0
        self.states_used = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.run_id = run_id
        self.ledger = ResourceLedger()
        if self.tracer.enabled:
            # Route fault-injection hits on this thread into the trace
            # (satellite of the profiler: chaos runs must be visible).
            from repro.faults.plan import bind_trace_tracer

            bind_trace_tracer(self.tracer)
        self._cancel_event = threading.Event()
        # Hot-loop fast path: tick_* charge millions of steps per run, so
        # an unlimited budget skips the deadline/limit checks entirely.
        # ``budget`` must not be swapped mid-run (nothing does).
        self._unbounded = self.budget.is_unlimited
        self._cancelled = False
        self._downgrades: list[Downgrade] = []
        self._events: list[str] = []
        self._outcome = "running"
        self._method: str | None = None
        self._cache: Any = None
        self._cache_stats: Mapping[str, Any] | None = None
        self._phases: dict[str, PhaseTiming] = {}
        self._phase_stack: list[str] = []
        self._segment_wall = time.perf_counter()
        self._segment_cpu = time.process_time()

    # -- cancellation -------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation (thread/signal safe)."""
        # The plain bool is what the tick fast path reads: a GIL-safe
        # attribute load instead of an Event.is_set() call per step.
        self._cancelled = True
        self._cancel_event.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel_event.is_set()

    # -- time ---------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the context was created."""
        return self._clock() - self._started

    def remaining_time(self) -> float | None:
        """Seconds left on the wall-clock budget (``None`` = unlimited)."""
        if self.budget.wall_clock is None:
            return None
        return self.budget.wall_clock - self.elapsed()

    # -- checks -------------------------------------------------------

    def check(self) -> None:
        """Raise if cancelled or past the wall-clock deadline.

        Called by evaluators at every loop iteration; charging methods
        call it implicitly, so hot loops need only one ``tick_*`` call.
        """
        if self._cancel_event.is_set():
            self._outcome = "cancelled"
            raise RunCancelledError(
                "run cancelled", details={"elapsed": self.elapsed()}
            )
        remaining = self.remaining_time()
        if remaining is not None and remaining < 0:
            self._outcome = "budget_exceeded"
            raise BudgetExceededError(
                f"wall-clock budget exhausted: {self.elapsed():.3f}s > "
                f"{self.budget.wall_clock}s",
                details={
                    "resource": "wall_clock",
                    "limit": self.budget.wall_clock,
                    "spent": self.elapsed(),
                },
            )

    def tick_steps(self, n: int = 1) -> None:
        """Charge ``n`` transition steps against the budget."""
        self.steps_used += n
        if self._unbounded and not self._cancelled:
            return
        limit = self.budget.max_steps
        if limit is not None and self.steps_used > limit:
            self._outcome = "budget_exceeded"
            raise BudgetExceededError(
                f"step budget exhausted: {self.steps_used} > max_steps={limit}",
                details={
                    "resource": "steps",
                    "limit": limit,
                    "spent": self.steps_used,
                },
            )
        self.check()

    def tick_states(self, n: int = 1) -> None:
        """Charge ``n`` materialised states against the budget."""
        self.states_used += n
        if self._unbounded and not self._cancelled:
            return
        limit = self.budget.max_states
        if limit is not None and self.states_used > limit:
            self._outcome = "budget_exceeded"
            raise BudgetExceededError(
                f"state budget exhausted: {self.states_used} > "
                f"max_states={limit}",
                details={
                    "resource": "states",
                    "limit": limit,
                    "spent": self.states_used,
                },
            )
        self.check()

    # -- phase accounting ---------------------------------------------

    def _phase_boundary(self) -> None:
        """Close the current timing segment, charging the active phase."""
        now_wall = time.perf_counter()
        now_cpu = time.process_time()
        if self._phase_stack:
            timing = self._phases[self._phase_stack[-1]]
            timing.wall_seconds += now_wall - self._segment_wall
            timing.cpu_seconds += now_cpu - self._segment_cpu
        self._segment_wall = now_wall
        self._segment_cpu = now_cpu

    def phase(self, name: str, **attrs: Any) -> _PhaseScope:
        """A named run phase: tracer span + exclusive wall/CPU timing.

        Nesting pauses the parent — entering ``solve`` inside
        ``chain-build`` charges the inner time to ``solve`` only — so
        per-phase totals on the :class:`RunReport` partition the run.

        >>> context = RunContext()
        >>> with context.phase("solve"):
        ...     pass
        >>> context.report().phases["solve"].count
        1
        """
        return _PhaseScope(self, name, attrs)

    # -- usage merging ------------------------------------------------

    def absorb_usage(self, steps: int = 0, states: int = 0) -> None:
        """Fold a child run's consumption into this context's counters.

        Used after a parallel sampler joins its workers: each worker
        enforced its own pro-rated :class:`Budget`, so the sum can never
        exceed this context's limits and no check is re-run here — the
        counters exist so :meth:`report` accounts for all work done.
        """
        self.steps_used += steps
        self.states_used += states

    # -- reporting ----------------------------------------------------

    def attach_cache(self, cache: Any) -> None:
        """Surface a :class:`~repro.perf.cache.TransitionCache`'s
        counters on this run's :class:`RunReport` (``stats()`` is read
        when the report is built, so final numbers are reported)."""
        self._cache = cache

    def record_cache_stats(self, stats: Mapping[str, Any]) -> None:
        """Record already-aggregated cache counters (parallel runs sum
        their workers' private caches and report the total here)."""
        self._cache_stats = dict(stats)

    def record_event(self, message: str) -> None:
        """Append a free-form progress note to the report."""
        self._events.append(message)

    def record_downgrade(self, from_method: str, to_method: str, reason: str) -> None:
        """Record one degradation step (exact → lumped → MCMC)."""
        self._downgrades.append(Downgrade(from_method, to_method, reason))
        self._events.append(f"downgrade {from_method} -> {to_method}: {reason}")
        if self.tracer.enabled:
            self.tracer.event(
                "downgrade", from_method=from_method, to_method=to_method,
                reason=reason,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_engine_downgrades_total",
                "Degradation-ladder downgrades taken by runs",
            ).inc(from_method=from_method, to_method=to_method)

    @property
    def downgrades(self) -> tuple[Downgrade, ...]:
        return tuple(self._downgrades)

    def finish(self, method: str | None = None) -> None:
        """Mark the run successful (optionally noting the final method)."""
        self._outcome = "ok"
        if method is not None:
            self._method = method

    def report(self) -> RunReport:
        """A structured snapshot of what was spent and why."""
        cache_stats = self._cache_stats
        if cache_stats is None and self._cache is not None:
            cache_stats = self._cache.stats()
        ledger: dict[str, Any] | None = None
        if not self.ledger.empty or cache_stats:
            # Cache counters fold in at snapshot time (never stored), so
            # repeated report() calls cannot double-count them.
            ledger = self.ledger.as_dict(cache=cache_stats)
        return RunReport(
            outcome=self._outcome,
            method=self._method,
            downgrades=list(self._downgrades),
            events=list(self._events),
            budget=self.budget.as_dict(),
            spent={
                "wall_clock": self.elapsed(),
                "steps": self.steps_used,
                "states": self.states_used,
            },
            cache=cache_stats,
            ledger=ledger,
            phases={
                name: PhaseTiming(
                    timing.wall_seconds, timing.cpu_seconds, timing.count
                )
                for name, timing in self._phases.items()
            },
        )


def ensure_context(context: RunContext | None) -> RunContext:
    """Normalise an optional context to a concrete one.

    ``None`` becomes a fresh unlimited context, so legacy call sites pay
    only a cheap counter per loop iteration and can never trip a limit.
    """
    return context if context is not None else RunContext()
