"""Resource budgets for query evaluation.

The paper's evaluators are inherently explosive: the non-inflationary
semantics induces a Markov chain over *database instances*
(Proposition 5.4), whose reachable part can be exponential in the
database size, and the Theorem 5.6 sampler multiplies a burn-in by a
Chernoff sample count.  A :class:`Budget` bounds a run along the three
axes that matter in practice:

* ``wall_clock`` — a deadline in seconds from the moment the
  :class:`~repro.runtime.context.RunContext` is created;
* ``max_steps`` — total transition-kernel applications (sampler steps,
  random-walk steps);
* ``max_states`` — total database states materialised across all chain
  constructions of the run.

``None`` for any axis means unlimited; :meth:`Budget.unlimited` is the
default used when callers do not pass a context, which keeps every
pre-existing call site working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProbabilityError


@dataclass(frozen=True)
class Budget:
    """Hard resource limits for one evaluation run.

    Examples
    --------
    >>> Budget(wall_clock=2.5, max_steps=10_000).is_unlimited
    False
    >>> Budget.unlimited().is_unlimited
    True
    """

    wall_clock: float | None = None
    max_steps: int | None = None
    max_states: int | None = None

    def __post_init__(self) -> None:
        if self.wall_clock is not None and self.wall_clock < 0:
            raise ProbabilityError(
                f"wall_clock budget must be non-negative, got {self.wall_clock!r}"
            )
        for name in ("max_steps", "max_states"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ProbabilityError(
                    f"{name} budget must be non-negative, got {value!r}"
                )

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget with no limits (the default for legacy call sites)."""
        return cls()

    @property
    def is_unlimited(self) -> bool:
        """Whether no axis is bounded."""
        return (
            self.wall_clock is None
            and self.max_steps is None
            and self.max_states is None
        )

    def as_dict(self) -> dict:
        """JSON-friendly rendering (used by :class:`RunReport`)."""
        return {
            "wall_clock": self.wall_clock,
            "max_steps": self.max_steps,
            "max_states": self.max_states,
        }
