"""Deadline-aware retry with full-jitter exponential backoff.

One policy object serves the three retry consumers in the stack — the
worker supervisor re-dispatching crashed task chunks, the scheduler
re-admitting retryable jobs, and the HTTP client resubmitting against
429/503 — so backoff behaviour is consistent and testable in one place.

Design points, each load-bearing:

* **Full jitter** (`AWS architecture blog recipe`): each delay is drawn
  uniformly from ``[0, min(max_delay, base * multiplier**attempt)]``.
  Deterministic-looking capped exponential backoff synchronises failed
  clients into retry convoys; full jitter de-correlates them while
  keeping the same expected load.
* **Deadline-aware**: a policy never sleeps past its caller's deadline.
  If the next delay would cross it, :meth:`RetryPolicy.call` stops
  retrying and re-raises — a job with a 2-second budget must not spend
  5 seconds backing off.
* **Retryability is the error's property, not the caller's guess**:
  by default only exceptions with a true ``retryable`` attribute (see
  :class:`~repro.errors.ReproError`) are retried.  Budget exhaustion
  and cancellation are *never* retryable.
* **Server hints win**: when the failed operation carries an explicit
  ``retry_after`` (an HTTP 429/503 ``Retry-After`` header), that delay
  replaces the computed backoff for the next attempt.

Idempotency keys
----------------
Retrying is only safe when repeating the operation cannot double its
effect.  :func:`idempotency_key` derives a stable key from arbitrary
JSON-able payloads; the HTTP client stamps it on submits
(``X-Request-Id``) so the server can deduplicate a retried submit that
actually succeeded the first time.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` marks itself as safe to retry."""
    return bool(getattr(error, "retryable", False))


def retry_after_hint(error: BaseException) -> float | None:
    """An explicit server-provided delay attached to ``error``, if any.

    Looks for a ``retry_after`` attribute (set by the service client on
    429/503 responses) or a ``"retry_after"`` entry in a
    :class:`~repro.errors.ReproError`'s ``details``.
    """
    hint = getattr(error, "retry_after", None)
    if hint is None and isinstance(error, ReproError):
        hint = error.details.get("retry_after")
    try:
        value = float(hint)
    except (TypeError, ValueError):
        return None
    return value if value >= 0 else None


def idempotency_key(payload: Any = None) -> str:
    """A stable request id for safe retries.

    With a payload, the key is a SHA-256 prefix of its canonical JSON —
    the same logical operation always yields the same key, so a server
    can collapse duplicates.  Without one, a random UUID is issued (the
    caller must reuse the *same* key across its own retries).
    """
    if payload is None:
        return uuid.uuid4().hex
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded full-jitter exponential backoff.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retries).
    base_delay:
        Backoff scale in seconds; attempt ``n`` (0-based) draws from
        ``[0, min(max_delay, base_delay * multiplier**n)]``.
    multiplier, max_delay:
        Exponential growth factor and per-attempt delay cap.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3, base_delay=1.0)
    >>> calls = []
    >>> def flaky():
    ...     calls.append(1)
    ...     if len(calls) < 3:
    ...         raise ReproError("transient", retryable=True)
    ...     return "ok"
    >>> policy.call(flaky, sleep=lambda _: None, rng=random.Random(7))
    'ok'
    >>> len(calls)
    3
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ReproError(
                f"retry multiplier must be >= 1, got {self.multiplier!r}"
            )

    # -- delay computation ----------------------------------------------

    def backoff_ceiling(self, attempt: int) -> float:
        """Upper bound of the jitter window for 0-based ``attempt``."""
        return min(self.max_delay, self.base_delay * self.multiplier ** attempt)

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Draw the full-jitter delay before retry number ``attempt``."""
        ceiling = self.backoff_ceiling(attempt)
        if ceiling <= 0:
            return 0.0
        return (rng or random).uniform(0.0, ceiling)

    # -- driving a callable ---------------------------------------------

    def call(
        self,
        fn: Callable[[], T],
        *,
        retryable: Callable[[BaseException], bool] = is_retryable,
        rng: random.Random | None = None,
        deadline: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
    ) -> T:
        """Run ``fn``, retrying transient failures within the deadline.

        ``deadline`` is an absolute ``clock()`` value; retries that
        would sleep past it are abandoned and the last error re-raised.
        ``on_retry(attempt, error, delay)`` fires before each sleep —
        the hook for metrics and run-report events.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as error:  # noqa: BLE001 - filtered below
                attempt += 1
                if attempt >= self.max_attempts or not retryable(error):
                    raise
                pause = retry_after_hint(error)
                if pause is None:
                    pause = self.delay(attempt - 1, rng)
                if deadline is not None and clock() + pause >= deadline:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error, pause)
                if pause > 0:
                    sleep(pause)


#: Defaults used across the stack.  The supervisor retries chunk
#: dispatch aggressively (cheap, idempotent); the client spaces HTTP
#: retries out to respect a loaded server.
CHUNK_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.25)
HTTP_RETRY = RetryPolicy(max_attempts=4, base_delay=0.2, max_delay=5.0)
