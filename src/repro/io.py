"""Loading and saving databases and pc-tables as JSON.

The database format is deliberately plain::

    {
      "relations": {
        "e": {
          "columns": ["I", "J", "P"],
          "rows": [["a", "b", "1/2"], ["a", "c", 0.5]]
        }
      }
    }

Values: JSON numbers become exact rationals (ints stay ints; floats
convert through their decimal text, so ``0.1`` means 1/10, not the
binary float); strings looking like ``"p/q"`` rationals are parsed as
:class:`fractions.Fraction`; everything else stays a string.

Probabilistic c-table databases (Definition 2.1) use::

    {
      "variables": {"x1": {"values": [0, 1], "weights": [1, 1]}},
      "tables": {
        "a": {
          "columns": ["L"],
          "entries": [
            {"row": ["v1"],  "condition": {"var": "x1", "equals": 1}},
            {"row": ["nv1"], "condition": {"var": "x1", "not_equals": 1}}
          ]
        }
      }
    }

Conditions compose with ``{"and": [...]}, {"or": [...]}, {"not": ...}``
and the constant ``true`` (or an omitted ``condition`` key).
"""

from __future__ import annotations

import json
import re
from fractions import Fraction
from pathlib import Path
from typing import Any

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation

_RATIONAL_RE = re.compile(r"^[+-]?\d+/\d+$")


def decode_value(value: Any) -> Any:
    """JSON value → library value (exact rationals where possible)."""
    if isinstance(value, bool) or value is None:
        raise SchemaError(f"unsupported JSON value {value!r} in a relation row")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # Use the decimal rendering so "0.1" means 1/10 exactly.
        return Fraction(repr(value))
    if isinstance(value, str) and _RATIONAL_RE.match(value):
        try:
            return Fraction(value)
        except ZeroDivisionError:
            raise SchemaError(
                f"invalid rational {value!r} in a relation row: zero denominator"
            ) from None
    if isinstance(value, str):
        return value
    raise SchemaError(f"unsupported JSON value {value!r} in a relation row")


def encode_value(value: Any) -> Any:
    """Library value → JSON value (Fractions render as "p/q")."""
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}" if value.denominator != 1 else value.numerator
    if isinstance(value, (int, float, str)):
        return value
    raise SchemaError(f"cannot encode value {value!r} as JSON")


def database_from_json(data: dict) -> Database:
    """Build a :class:`Database` from the parsed JSON structure."""
    try:
        relations_spec = data["relations"]
    except (TypeError, KeyError):
        raise SchemaError('database JSON needs a top-level "relations" object') from None
    relations = {}
    for name, spec in relations_spec.items():
        try:
            columns = tuple(spec["columns"])
            raw_rows = spec.get("rows", [])
        except (TypeError, KeyError):
            raise SchemaError(
                f'relation {name!r} needs "columns" (and optional "rows")'
            ) from None
        rows = [tuple(decode_value(v) for v in row) for row in raw_rows]
        relations[name] = Relation(columns, rows)
    return Database(relations)


def database_to_json(db: Database) -> dict:
    """Serialise a :class:`Database` to the JSON structure."""
    return {
        "relations": {
            name: {
                "columns": list(db[name].columns),
                "rows": [
                    [encode_value(v) for v in row] for row in db[name].sorted_rows()
                ],
            }
            for name in db.names()
        }
    }


def load_database(path: str | Path) -> Database:
    """Read a database from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return database_from_json(json.load(handle))


def save_database(db: Database, path: str | Path) -> None:
    """Write a database to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(database_to_json(db), handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# pc-tables (Definition 2.1)
# ---------------------------------------------------------------------------


def condition_from_json(data: Any) -> "Condition":
    """Decode a condition object (see the module docstring grammar)."""
    from repro.ctables.conditions import (
        TRUE,
        Condition,
        var_eq,
        var_ne,
    )

    if data is True or data is None:
        return TRUE
    if not isinstance(data, dict):
        raise SchemaError(f"cannot decode condition {data!r}")
    if "and" in data:
        parts = [condition_from_json(part) for part in data["and"]]
        if not parts:
            return TRUE
        combined = parts[0]
        for part in parts[1:]:
            combined = combined & part
        return combined
    if "or" in data:
        parts = [condition_from_json(part) for part in data["or"]]
        if not parts:
            raise SchemaError("empty disjunction in condition JSON")
        combined = parts[0]
        for part in parts[1:]:
            combined = combined | part
        return combined
    if "not" in data:
        return ~condition_from_json(data["not"])
    if "var" in data and "equals" in data:
        return var_eq(data["var"], decode_value(data["equals"]))
    if "var" in data and "not_equals" in data:
        return var_ne(data["var"], decode_value(data["not_equals"]))
    raise SchemaError(f"cannot decode condition {data!r}")


def pc_database_from_json(data: dict) -> "PCDatabase":
    """Decode a :class:`~repro.ctables.pctable.PCDatabase`."""
    from repro.ctables.pctable import CTable, PCDatabase
    from repro.probability.distribution import Distribution

    if not isinstance(data, dict) or "variables" not in data or "tables" not in data:
        raise SchemaError('pc-table JSON needs "variables" and "tables"')
    variables = {}
    for name, spec in data["variables"].items():
        try:
            values = [decode_value(v) for v in spec["values"]]
            weights = [decode_value(w) for w in spec.get("weights", [1] * len(values))]
        except (TypeError, KeyError):
            raise SchemaError(f'variable {name!r} needs "values" (+ "weights")') from None
        if len(values) != len(weights):
            raise SchemaError(f"variable {name!r}: values/weights length mismatch")
        variables[name] = Distribution(dict(zip(values, weights)))
    tables = {}
    for name, spec in data["tables"].items():
        try:
            columns = tuple(spec["columns"])
            raw_entries = spec.get("entries", [])
        except (TypeError, KeyError):
            raise SchemaError(f'table {name!r} needs "columns" (+ "entries")') from None
        entries = []
        for entry in raw_entries:
            row = tuple(decode_value(v) for v in entry["row"])
            condition = condition_from_json(entry.get("condition"))
            entries.append((row, condition))
        tables[name] = CTable(columns, entries)
    return PCDatabase(tables=tables, variables=variables)


def load_pc_database(path: str | Path) -> "PCDatabase":
    """Read a pc-table database from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return pc_database_from_json(json.load(handle))
