"""Compilation of datalog rules to relational algebra (+ repair-key).

Every (standard) datalog rule body compiles to a relational-algebra
expression computing the rule's *body valuations* — one row per
satisfying assignment of the body variables — by the classical
conjunctive-query translation (select constants, join shared variables).
The head is then instantiated with a generalized projection, and the
paper's ``@`` annotation becomes a ``repair-key`` over the key
variables (Example 3.7).

Two whole-program translations are built on top:

* :func:`noninflationary_interpretation` — each IDB relation is
  recomputed from scratch every step (the forever-query reading used in
  Theorem 5.1);
* :func:`inflationary_interpretation_for_program` — the Proposition 3.8
  construction: the Section 3.3 ``newVals``/``oldVals`` bookkeeping is
  materialised as auxiliary relations, yielding an equivalent
  inflationary query evaluable by the generic engines.  (The dedicated
  operational engine in :mod:`repro.datalog.engine` implements the same
  semantics directly and is faster; benchmark A2 checks they agree.)
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.datalog.ast import Atom, Const, Program, Rule
from repro.errors import DatalogError
from repro.relational.algebra import (
    Difference,
    Expression,
    ExtendedProject,
    Literal,
    NaturalJoin,
    Project,
    RelationRef,
    Rename,
    RepairKey,
    Select,
    Union,
)
from repro.relational.database import Database
from repro.relational.predicates import ColumnEq, Predicate, TruePredicate, ValueEq
from repro.relational.relation import Relation

#: Prefix of the auxiliary oldVals relations of Proposition 3.8.
OLDVALS_PREFIX = "__oldvals_"


def idb_columns(arity: int) -> tuple[str, ...]:
    """Canonical column names for IDB relations: ``c0, c1, ...``."""
    return tuple(f"c{i}" for i in range(arity))


def compile_atom(atom: Atom, schema: Mapping[str, tuple[str, ...]]) -> Expression:
    """One body atom → an expression over the atom's variables.

    Output columns are the atom's distinct variable names (anonymous
    variables and constant positions are projected away).
    """
    try:
        columns = schema[atom.predicate]
    except KeyError:
        raise DatalogError(
            f"atom {atom!r} references predicate {atom.predicate!r} missing "
            "from the schema"
        ) from None
    if len(columns) != atom.arity:
        raise DatalogError(
            f"atom {atom!r} has arity {atom.arity}, relation has {len(columns)}"
        )

    expr: Expression = RelationRef(atom.predicate)
    predicate: Predicate = TruePredicate()
    first_position: dict[str, str] = {}
    for column, term in zip(columns, atom.terms):
        if isinstance(term, Const):
            predicate = predicate & ValueEq(column, term.value)
        else:
            if term.name in first_position:
                predicate = predicate & ColumnEq(first_position[term.name], column)
            else:
                first_position[term.name] = column
    if not isinstance(predicate, TruePredicate):
        expr = Select(expr, predicate)

    keep = {
        name: column
        for name, column in first_position.items()
        if not name.startswith("_anon")
    }
    expr = Project(expr, tuple(keep.values()))
    mapping = {column: name for name, column in keep.items() if column != name}
    if mapping:
        expr = Rename(expr, mapping)
    return expr


def compile_body(
    body: Sequence[Atom], schema: Mapping[str, tuple[str, ...]]
) -> Expression:
    """A rule body → the expression of its valuations.

    Output columns are the distinct (named) body variables; an empty
    body yields the single empty valuation, so fact rules fire exactly
    once (Section 3.3).
    """
    if not body:
        return Literal(Relation((), [()]))
    expr = compile_atom(body[0], schema)
    for atom in body[1:]:
        expr = NaturalJoin(expr, compile_atom(atom, schema))
    return expr


def head_projection(rule: Rule, valuations: Expression) -> Expression:
    """Instantiate the rule head over (chosen) body valuations.

    Output columns are the canonical IDB columns of the head predicate.
    """
    outputs = []
    for position, term in enumerate(rule.head.terms):
        name = f"c{position}"
        if isinstance(term, Const):
            outputs.append((name, ("const", term.value)))
        else:
            outputs.append((name, ("col", term.name)))
    return ExtendedProject(valuations, outputs)


def rule_choice_expression(rule: Rule, valuations: Expression) -> Expression:
    """Apply the paper's repair-key step to a valuations expression.

    Projects to the head variables (plus the weight variable), applies
    ``repair-key`` keyed on the rule's effective key variables, and
    instantiates the head — the algebraic form of the loop body of the
    Section 3.3 semantics.  For deterministic rules the repair-key is
    keyed on *all* head variables and therefore chooses everything.
    """
    needed = list(rule.head_variables())
    weight = rule.weight_variable
    if weight is not None and weight not in needed:
        needed.append(weight)
    projected = Project(valuations, tuple(needed))
    key = tuple(sorted(rule.effective_key_variables()))
    repaired = RepairKey(projected, key=key, weight=weight)
    return head_projection(rule, repaired)


def program_schema(
    program: Program, edb_schema: Mapping[str, tuple[str, ...]]
) -> dict[str, tuple[str, ...]]:
    """The full relation schema a program runs over: the given EDB
    schemas plus canonical columns for every IDB predicate."""
    schema = dict(edb_schema)
    for predicate in program.idb_predicates():
        if predicate in schema:
            raise DatalogError(
                f"IDB predicate {predicate!r} clashes with an EDB relation"
            )
        schema[predicate] = idb_columns(program.arity(predicate))
    missing = [p for p in program.edb_predicates() if p not in schema]
    if missing:
        raise DatalogError(f"EDB relations {missing!r} missing from the schema")
    return schema


def initial_database(program: Program, edb: Database) -> Database:
    """The initial state: the EDB plus empty IDB relations."""
    relations = edb.relations()
    for predicate in program.idb_predicates():
        relations[predicate] = Relation.empty(idb_columns(program.arity(predicate)))
    return Database(relations)


def noninflationary_interpretation(
    program: Program, edb_schema: Mapping[str, tuple[str, ...]]
):
    """Translate a program to a forever-query kernel (Section 3.3).

    Each IDB relation's query is the union of its rules' repair-key
    expressions, evaluated against the *old* state; EDB relations stay
    unchanged.  All valuations currently satisfying a body participate
    in every step (there is no newVals bookkeeping under the
    non-inflationary semantics).
    """
    from repro.core.interpretation import Interpretation

    schema = program_schema(program, edb_schema)
    queries: dict[str, Expression] = {}
    for predicate in program.idb_predicates():
        parts = [
            rule_choice_expression(rule, compile_body(rule.body, schema))
            for rule in program.rules_for(predicate)
        ]
        expr = parts[0]
        for part in parts[1:]:
            expr = Union(expr, part)
        queries[predicate] = expr
    return Interpretation(queries)


def oldvals_relation_name(rule_index: int) -> str:
    """Name of the Proposition 3.8 auxiliary relation for one rule."""
    return f"{OLDVALS_PREFIX}{rule_index}"


def inflationary_interpretation_for_program(
    program: Program, edb_schema: Mapping[str, tuple[str, ...]]
):
    """The Proposition 3.8 compilation: datalog → inflationary query.

    For each rule r, an auxiliary relation ``__oldvals_r`` accumulates
    the body valuations already used; the rule contributes
    ``repair-key`` over the *new* valuations only.  All right-hand sides
    read the old state, exactly as the Section 3.3 pseudocode fires
    rules in parallel.
    """
    from repro.core.interpretation import Interpretation

    schema = program_schema(program, edb_schema)
    queries: dict[str, Expression] = {}
    additions: dict[str, list[Expression]] = {}

    for index, rule in enumerate(program.rules):
        body_expr = compile_body(rule.body, schema)
        old_ref = RelationRef(oldvals_relation_name(index))
        new_vals = Difference(body_expr, old_ref)
        additions.setdefault(rule.head.predicate, []).append(
            rule_choice_expression(rule, new_vals)
        )
        queries[oldvals_relation_name(index)] = Union(old_ref, body_expr)

    for predicate, parts in additions.items():
        expr: Expression = RelationRef(predicate)
        for part in parts:
            expr = Union(expr, part)
        queries[predicate] = expr

    return Interpretation(queries)


def inflationary_initial_database(program: Program, edb: Database) -> Database:
    """Initial state for the Proposition 3.8 compilation: EDB + empty
    IDB + empty oldVals relations (one per rule, columns = the rule's
    body variables)."""
    relations = initial_database(program, edb).relations()
    for index, rule in enumerate(program.rules):
        columns = tuple(rule.body_variables())
        relations[oldvals_relation_name(index)] = Relation.empty(columns)
    return Database(relations)


def strip_auxiliary(db: Database) -> Database:
    """Drop the ``__oldvals_*`` bookkeeping relations from a state."""
    return db.restrict(
        name for name in db.names() if not name.startswith(OLDVALS_PREFIX)
    )
