"""Probabilistic datalog with probabilistic rules (Section 3.3):
AST, parser, algebra compilation, and the operational engine."""

from repro.datalog.ast import Atom, Const, Program, Rule, Term, Var
from repro.datalog.compiler import (
    compile_atom,
    compile_body,
    idb_columns,
    inflationary_initial_database,
    inflationary_interpretation_for_program,
    initial_database,
    noninflationary_interpretation,
    oldvals_relation_name,
    program_schema,
    rule_choice_expression,
    strip_auxiliary,
)
from repro.datalog.forever import (
    datalog_forever_query,
    evaluate_datalog_forever,
)
from repro.datalog.engine import (
    InflationaryDatalogEngine,
    evaluate_datalog_exact,
    evaluate_datalog_sampling,
)
from repro.datalog.parser import parse_program, parse_rule

__all__ = [
    "Atom",
    "Const",
    "InflationaryDatalogEngine",
    "Program",
    "Rule",
    "Term",
    "Var",
    "compile_atom",
    "compile_body",
    "datalog_forever_query",
    "evaluate_datalog_exact",
    "evaluate_datalog_forever",
    "evaluate_datalog_sampling",
    "idb_columns",
    "inflationary_initial_database",
    "inflationary_interpretation_for_program",
    "initial_database",
    "noninflationary_interpretation",
    "oldvals_relation_name",
    "parse_program",
    "parse_rule",
    "program_schema",
    "rule_choice_expression",
    "strip_auxiliary",
]
