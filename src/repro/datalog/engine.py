"""Operational engine for inflationary probabilistic datalog.

This implements the Section 3.3 evaluation loop verbatim::

    Repeat forever {
        In parallel, for each rule r: R(X̄, Ȳ)@P ← B(X̄, Ȳ, Z̄) do {
            newVals[r] := valuations of the body of r on the old state − oldVals[r];
            oldVals[r] := oldVals[r] ∪ newVals[r];
            R := R ∪ repair-key_{X̄@P}(π_{X̄, Ȳ, P}(newVals[r]));
        }
    }

A *machine state* is the database (EDB + IDB) together with the
``oldVals[r]`` bookkeeping relations, embedded as reserved-name
relations so that states stay hashable database snapshots.  Every
computation path reaches a fixpoint (no rule has new valuations) after
polynomially many steps in the active domain — the property the paper
uses for Theorem 4.3 — and the engine's :meth:`is_fixpoint` check is
the cheap syntactic one: *all* ``newVals`` empty.

The engine exposes exact evaluation (through the generic Proposition
4.4 traversal), the Theorem 4.3 sampler, and evaluation over pc-tables
(valuation chosen once, Section 3.2/3.3).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.evaluation.exact_inflationary import (
    DEFAULT_MAX_STATES,
    absorption_event_probability,
)
from repro.core.evaluation.results import ExactResult, SamplingResult
from repro.core.evaluation.sampling_inflationary import (
    DEFAULT_MAX_STEPS,
    sample_fixpoint,
)
from repro.core.events import QueryEvent
from repro.ctables.pctable import PCDatabase
from repro.datalog.ast import Const, Program, Rule
from repro.datalog.compiler import (
    compile_body,
    initial_database,
    oldvals_relation_name,
    program_schema,
    strip_auxiliary,
)
from repro.errors import DatalogError
from repro.obs.trace import phase_scope, tracer_of
from repro.probability.chernoff import hoeffding_sample_count, paper_sample_count
from repro.probability.distribution import Distribution, as_fraction, product_distribution
from repro.probability.rng import RngLike, make_rng
from repro.relational.algebra import Expression, evaluate
from repro.relational.database import Database
from repro.relational.relation import Relation, Row
from repro.relational.repair import repair_distribution, sample_repair

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext


def _head_row(rule: Rule, valuation: dict[str, object]) -> Row:
    """Instantiate the head atom under one body valuation."""
    row = []
    for term in rule.head.terms:
        if isinstance(term, Const):
            row.append(term.value)
        else:
            row.append(valuation[term.name])
    return tuple(row)


class InflationaryDatalogEngine:
    """The Section 3.3 machine for one program over one EDB.

    Examples
    --------
    >>> from repro.datalog.parser import parse_program
    >>> from repro.relational import Relation, Database
    >>> program = parse_program("c(v). c2(X*, Y) :- c(X), e(X, Y). c(Y) :- c2(X, Y).")
    >>> edb = Database({"e": Relation(("I", "J"), [("v", "w"), ("v", "u")])})
    >>> engine = InflationaryDatalogEngine(program, edb)
    >>> engine.transition(engine.initial_state()).support() is not None
    True
    """

    def __init__(self, program: Program, edb: Database):
        self.program = program
        self.edb = edb
        self.schema = program_schema(program, edb.schema())
        self._body_exprs: list[Expression] = [
            compile_body(rule.body, self.schema) for rule in program.rules
        ]
        self._body_columns: list[tuple[str, ...]] = [
            tuple(rule.body_variables()) for rule in program.rules
        ]
        for rule, expr, cols in zip(program.rules, self._body_exprs, self._body_columns):
            if not expr.is_deterministic():
                raise DatalogError(f"rule body of {rule!r} is not deterministic")

    # -- states -----------------------------------------------------------------

    def initial_state(self) -> Database:
        """EDB + empty IDB relations + empty oldVals relations."""
        relations = initial_database(self.program, self.edb).relations()
        for index, columns in enumerate(self._body_columns):
            relations[oldvals_relation_name(index)] = Relation.empty(columns)
        return Database(relations)

    def database_of(self, state: Database) -> Database:
        """The visible database of a machine state (bookkeeping dropped)."""
        return strip_auxiliary(state)

    # -- one step -------------------------------------------------------------------

    def _new_valuations(self, state: Database) -> list[Relation]:
        """Per rule: the body valuations not yet used (newVals[r])."""
        new_vals = []
        for index, expr in enumerate(self._body_exprs):
            valuations = evaluate(expr, state)
            old = state[oldvals_relation_name(index)]
            new_vals.append(valuations.difference(old))
        return new_vals

    def is_fixpoint(self, state: Database) -> bool:
        """True when no rule has a new valuation (the state can never
        change again) — the cheap syntactic fixpoint test."""
        return all(len(new) == 0 for new in self._new_valuations(state))

    def _rule_choices(self, rule: Rule, new_vals: Relation) -> Distribution[frozenset[Row]]:
        """Distribution over the sets of head rows a rule adds this step."""
        columns = new_vals.columns
        needed = list(rule.head_variables())
        weight = rule.weight_variable
        if weight is not None and weight not in needed:
            needed.append(weight)
        indices = [columns.index(name) for name in needed]
        projected = Relation(
            tuple(needed), {tuple(row[i] for i in indices) for row in new_vals}
        )
        key = tuple(sorted(rule.effective_key_variables()))
        repairs = repair_distribution(projected, key=key, weight=weight)
        return repairs.map(
            lambda chosen: frozenset(
                _head_row(rule, dict(zip(chosen.columns, row))) for row in chosen
            )
        )

    def _sample_rule_choice(
        self, rule: Rule, new_vals: Relation, rng
    ) -> frozenset[Row]:
        columns = new_vals.columns
        needed = list(rule.head_variables())
        weight = rule.weight_variable
        if weight is not None and weight not in needed:
            needed.append(weight)
        indices = [columns.index(name) for name in needed]
        projected = Relation(
            tuple(needed), {tuple(row[i] for i in indices) for row in new_vals}
        )
        key = tuple(sorted(rule.effective_key_variables()))
        chosen = sample_repair(projected, rng, key=key, weight=weight)
        return frozenset(
            _head_row(rule, dict(zip(chosen.columns, row))) for row in chosen
        )

    def _apply(
        self, state: Database, new_vals: list[Relation], chosen: list[frozenset[Row]]
    ) -> Database:
        """Build the successor state from per-rule chosen head rows."""
        updates: dict[str, Relation] = {}
        for index, (rule, new) in enumerate(zip(self.program.rules, new_vals)):
            old_name = oldvals_relation_name(index)
            updates[old_name] = updates.get(old_name, state[old_name]).union(new)
            head = rule.head.predicate
            current = updates.get(head, state[head])
            if chosen[index]:
                current = current.with_rows(chosen[index])
            updates[head] = current
        return state.with_relations(updates)

    def transition(self, state: Database) -> Distribution[Database]:
        """The exact one-step distribution of the Section 3.3 loop."""
        new_vals = self._new_valuations(state)
        per_rule = [
            self._rule_choices(rule, new)
            for rule, new in zip(self.program.rules, new_vals)
        ]
        joint = product_distribution(per_rule)
        return joint.map(lambda choices: self._apply(state, new_vals, list(choices)))

    def sample_step(self, state: Database, rng) -> Database:
        """Draw one successor state in polynomial time."""
        new_vals = self._new_valuations(state)
        chosen = [
            self._sample_rule_choice(rule, new, rng)
            for rule, new in zip(self.program.rules, new_vals)
        ]
        return self._apply(state, new_vals, chosen)

    # -- whole-query evaluation ---------------------------------------------------------

    def fixpoint_distribution(
        self, max_states: int = DEFAULT_MAX_STATES
    ) -> Distribution[Database]:
        """The exact distribution over final databases (fixpoints reached
        with self-loops renormalised away), bookkeeping stripped."""
        outcomes: dict[Database, Fraction] = {}

        def explore(state: Database, weight: Fraction) -> None:
            row = self.transition(state)
            self_p = as_fraction(row.probability(state))
            successors = [(t, as_fraction(p)) for t, p in row.items() if t != state]
            if not successors:
                final = self.database_of(state)
                outcomes[final] = outcomes.get(final, Fraction(0)) + weight
                return
            scale = 1 / (1 - self_p)
            for target, probability in successors:
                explore(target, weight * probability * scale)

        explore(self.initial_state(), Fraction(1))
        if len(outcomes) > max_states:
            raise DatalogError("fixpoint distribution exceeded max_states")
        return Distribution(outcomes, normalise=False)


def evaluate_datalog_exact(
    program: Program,
    edb: Database,
    event: QueryEvent,
    pc_tables: PCDatabase | None = None,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
) -> ExactResult:
    """Exact inflationary-datalog evaluation (Prop 4.4 over the
    Section 3.3 machine).

    With ``pc_tables``, the probabilistic choice of c-table tuples is
    made once per possible valuation, before iteration (Section 3.3's
    "these rules are fired only once"): the evaluator enumerates the
    valuations and weights each world's result.
    """
    def world_result(world_edb: Database) -> tuple[Fraction, int]:
        engine = InflationaryDatalogEngine(program, world_edb)
        return absorption_event_probability(
            engine.transition,
            lambda state: event.holds(engine.database_of(state)),
            engine.initial_state(),
            max_states=max_states,
            context=context,
        )

    tracer = tracer_of(context)
    if pc_tables is None:
        with phase_scope(context, "solve") as scope:
            probability, states = world_result(edb)
            scope.annotate(states=states)
        return ExactResult(probability, states, "datalog-exact", {"pc_worlds": 1})

    total = Fraction(0)
    total_states = 0
    worlds = 0
    with phase_scope(context, "solve") as scope:
        for world, weight in pc_tables.possible_worlds().items():
            if context is not None:
                context.check()
            merged = edb.with_relations(world.relations())
            probability, states = world_result(merged)
            total += as_fraction(weight) * probability
            total_states += states
            worlds += 1
            if tracer.enabled:
                tracer.event(
                    "pc-world", world=worlds, states=states,
                    weight=float(weight),
                )
        scope.annotate(pc_worlds=worlds, states=total_states)
    return ExactResult(total, total_states, "datalog-exact", {"pc_worlds": worlds})


def evaluate_datalog_sampling(
    program: Program,
    edb: Database,
    event: QueryEvent,
    pc_tables: PCDatabase | None = None,
    epsilon: float = 0.05,
    delta: float = 0.05,
    samples: int | None = None,
    rng: RngLike = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    use_paper_bound: bool = True,
    context: "RunContext | None" = None,
) -> SamplingResult:
    """The Theorem 4.3 sampler specialised to datalog.

    Fixpoint detection is the engine's cheap syntactic check (no new
    valuations), so each sample costs as much as one non-probabilistic
    datalog evaluation plus the random choices — exactly the complexity
    argued in the Theorem 4.3 proof.
    """
    generator = make_rng(rng)
    if samples is None:
        planner = paper_sample_count if use_paper_bound else hoeffding_sample_count
        planned = planner(epsilon, delta)
        recorded_epsilon, recorded_delta = epsilon, delta
    else:
        planned = samples
        recorded_epsilon = recorded_delta = None

    engines: dict[Database, InflationaryDatalogEngine] = {}

    def engine_for(world_edb: Database) -> InflationaryDatalogEngine:
        engine = engines.get(world_edb)
        if engine is None:
            engine = InflationaryDatalogEngine(program, world_edb)
            engines[world_edb] = engine
        return engine

    tracer = tracer_of(context)
    positive = 0
    total_steps = 0
    with phase_scope(context, "sample", planned=planned):
        for index in range(1, planned + 1):
            world_edb = edb
            if pc_tables is not None:
                world = pc_tables.sample_world(generator)
                world_edb = edb.with_relations(world.relations())
            engine = engine_for(world_edb)
            fixpoint, steps = sample_fixpoint(
                lambda state, engine=engine: engine.sample_step(state, generator),
                engine.is_fixpoint,
                engine.initial_state(),
                max_steps=max_steps,
                context=context,
            )
            hit = event.holds(engine.database_of(fixpoint))
            positive += hit
            total_steps += steps
            if tracer.enabled:
                tracer.event(
                    "sample", index=index, hit=bool(hit),
                    positive=positive, steps=steps,
                )

    return SamplingResult(
        estimate=positive / planned,
        samples=planned,
        positive=positive,
        epsilon=recorded_epsilon,
        delta=recorded_delta,
        method="datalog-thm-4.3",
        details={"mean_steps_per_sample": total_steps / planned},
    )
