"""Abstract syntax of probabilistic datalog (Section 3.3).

Probabilistic datalog extends datalog by the repair-key construct: in a
rule head the *key* variables are underlined (rendered here as a
``key`` flag on head terms / ``key_variables`` on the rule), and the
head may be postfixed ``@P`` with P a body variable binding the
weighting column (omitted = uniform weighting).

A rule whose head carries no key markers and no weight variable is
*deterministic* (classical datalog: all satisfying valuations fire) —
equivalently, all head variables are keyed, which the paper notes makes
a rule "essentially non-probabilistic".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import DatalogError

_ANON_PREFIX = "_anon"


@dataclass(frozen=True)
class Var:
    """A datalog variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant term."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


Term = Var | Const


@dataclass(frozen=True)
class Atom:
    """``predicate(term, term, ...)``."""

    predicate: str
    terms: tuple[Term, ...]

    def __init__(self, predicate: str, terms: Iterable[Term] = ()):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(terms))
        for term in self.terms:
            if not isinstance(term, (Var, Const)):
                raise DatalogError(f"atom term {term!r} is neither Var nor Const")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Var]:
        """The variables of the atom, in order, with repetitions."""
        return [term for term in self.terms if isinstance(term, Var)]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Rule:
    """A probabilistic datalog rule.

    Attributes
    ----------
    head:
        The head atom (its predicate is an IDB relation).
    body:
        The body atoms (possibly empty: a fact rule, which fires once).
    key_variables:
        The underlined head variables Ā of ``repair-key_{Ā@P}``.
    weight_variable:
        The ``@P`` weight variable, or ``None`` for uniform weighting.
    """

    head: Atom
    body: tuple[Atom, ...] = ()
    key_variables: frozenset[str] = field(default_factory=frozenset)
    weight_variable: str | None = None

    def __init__(
        self,
        head: Atom,
        body: Iterable[Atom] = (),
        key_variables: Iterable[str] = (),
        weight_variable: str | None = None,
    ):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "key_variables", frozenset(key_variables))
        object.__setattr__(self, "weight_variable", weight_variable)

    # -- derived views --------------------------------------------------------

    def head_variables(self) -> list[str]:
        """Distinct head variable names, in first-occurrence order."""
        seen: list[str] = []
        for term in self.head.terms:
            if isinstance(term, Var) and term.name not in seen:
                seen.append(term.name)
        return seen

    def body_variables(self) -> list[str]:
        """Distinct body variable names, in first-occurrence order,
        anonymous variables excluded."""
        seen: list[str] = []
        for atom in self.body:
            for term in atom.terms:
                if (
                    isinstance(term, Var)
                    and not term.name.startswith(_ANON_PREFIX)
                    and term.name not in seen
                ):
                    seen.append(term.name)
        return seen

    def is_probabilistic(self) -> bool:
        """True when the rule makes a repair-key choice.

        A rule is deterministic when it has no key markers and no
        weight variable, or when every head variable is keyed with
        uniform weighting (both mean: all valuations fire).
        """
        if not self.key_variables and self.weight_variable is None:
            return False
        return not (
            self.key_variables == frozenset(self.head_variables())
            and self.weight_variable is None
        )

    def effective_key_variables(self) -> frozenset[str]:
        """The key Ā actually used: a rule without markers behaves as if
        all head variables were underlined (classical firing)."""
        if not self.key_variables and self.weight_variable is None:
            return frozenset(self.head_variables())
        return self.key_variables

    def validate(self) -> None:
        """Safety checks; raises :class:`DatalogError` on violation."""
        body_vars = set(self.body_variables())
        head_vars = set(self.head_variables())
        unsafe = head_vars - body_vars
        if unsafe:
            raise DatalogError(
                f"rule {self!r} is unsafe: head variables {sorted(unsafe)!r} "
                "do not occur in the body"
            )
        bad_keys = self.key_variables - head_vars
        if bad_keys:
            raise DatalogError(
                f"rule {self!r}: key variables {sorted(bad_keys)!r} are not "
                "head variables"
            )
        if self.weight_variable is not None and self.weight_variable not in body_vars:
            raise DatalogError(
                f"rule {self!r}: weight variable {self.weight_variable!r} does "
                "not occur in the body"
            )
        for term in self.head.terms:
            if isinstance(term, Var) and term.name.startswith(_ANON_PREFIX):
                raise DatalogError(
                    f"rule {self!r}: anonymous variables cannot occur in the head"
                )

    def __repr__(self) -> str:
        def render_term(term: Term) -> str:
            if isinstance(term, Var) and term.name in self.key_variables:
                return f"{term.name}*"
            return repr(term)

        head_inner = ", ".join(render_term(t) for t in self.head.terms)
        head = f"{self.head.predicate}({head_inner})"
        if self.weight_variable:
            head += f"@{self.weight_variable}"
        if not self.body:
            return f"{head}."
        return f"{head} :- {', '.join(repr(a) for a in self.body)}."


class Program:
    """A probabilistic datalog program: an ordered list of rules.

    IDB predicates are those occurring in rule heads; every other
    predicate of a rule body is EDB (must be supplied by the initial
    database).  Arities must be consistent per predicate.
    """

    #: Per-rule ``(start, end)`` character ranges in the source text,
    #: populated by the parser; empty for programmatically built programs.
    rule_spans: tuple[tuple[int, int], ...] = ()

    def __init__(self, rules: Sequence[Rule]):
        self.rules = tuple(rules)
        if not self.rules:
            raise DatalogError("a program needs at least one rule")
        arities: dict[str, int] = {}
        for rule in self.rules:
            rule.validate()
            for atom in (rule.head, *rule.body):
                known = arities.setdefault(atom.predicate, atom.arity)
                if known != atom.arity:
                    raise DatalogError(
                        f"predicate {atom.predicate!r} used with arities "
                        f"{known} and {atom.arity}"
                    )
        self._arities = arities

    # -- structure -------------------------------------------------------------

    def idb_predicates(self) -> list[str]:
        """Predicates defined by rule heads, sorted."""
        return sorted({rule.head.predicate for rule in self.rules})

    def edb_predicates(self) -> list[str]:
        """Body predicates that are not IDB, sorted."""
        idb = set(self.idb_predicates())
        out = {
            atom.predicate
            for rule in self.rules
            for atom in rule.body
            if atom.predicate not in idb
        }
        return sorted(out)

    def arity(self, predicate: str) -> int:
        """The arity of a predicate used by the program."""
        try:
            return self._arities[predicate]
        except KeyError:
            raise DatalogError(f"unknown predicate {predicate!r}") from None

    def rules_for(self, predicate: str) -> list[Rule]:
        """The rules whose head predicate is ``predicate``."""
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def is_linear(self) -> bool:
        """Linear datalog: at most one IDB atom per rule body
        (Section 3.3, the restriction of Theorem 4.1)."""
        idb = set(self.idb_predicates())
        for rule in self.rules:
            idb_atoms = sum(1 for atom in rule.body if atom.predicate in idb)
            if idb_atoms > 1:
                return False
        return True

    def has_probabilistic_rules(self) -> bool:
        """True when any rule makes a repair-key choice."""
        return any(rule.is_probabilistic() for rule in self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return "\n".join(repr(rule) for rule in self.rules)


def fresh_anonymous(counter: list[int]) -> Var:
    """A fresh anonymous variable (used by the parser for ``_``)."""
    counter[0] += 1
    return Var(f"{_ANON_PREFIX}{counter[0]}")
