"""Text syntax for probabilistic datalog.

Grammar (one rule per ``.``-terminated statement; ``%`` starts a
comment running to end of line)::

    program   := (rule)*
    rule      := head ( ":-" body )? "."
    head      := predicate "(" headterms? ")" ("@" VARIABLE)?
    headterm  := VARIABLE "*"? | constant          -- "*" marks a key
                                                   -- (underlined) variable
    body      := atom ("," atom)*
    atom      := predicate "(" terms? ")"
    term      := VARIABLE | "_" | constant
    predicate := lowercase identifier (letters, digits, "_")
    VARIABLE  := identifier starting with an uppercase letter
    constant  := lowercase identifier | signed number | 'quoted string'

The starred variables render the paper's *underlined* key columns, and
``@P`` is the paper's weight postfix (Example 3.7).  ``_`` is an
anonymous variable (each occurrence fresh), used e.g. for the paper's
``Done(a) ← R(cn, .)``.  Numbers parse to ``int`` when possible, else
``Fraction`` (exact decimals — probabilities stay rational).

Example
-------
>>> program = parse_program('''
...     c(v).
...     c2(X*, Y) :- c(X), e(X, Y).
...     c(Y) :- c2(X, Y).
... ''')
>>> len(program)
3
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, NamedTuple

from repro.datalog.ast import Atom, Const, Program, Rule, Var, fresh_anonymous
from repro.errors import DatalogParseError, describe_position, position_details

#: A rule's half-open character range in the source text.
Span = tuple[int, int]

_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*"),
    ("WS", r"\s+"),
    ("ARROW", r":-|<-|←"),
    ("NUMBER", r"[+-]?\d+(?:\.\d+)?"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("STRING", r"'(?:[^'\\]|\\.)*'"),
    ("AT", r"@"),
    ("STAR", r"\*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise DatalogParseError(
                f"unexpected character {source[position]!r} at "
                f"{describe_position(source, position)}",
                details=position_details(source, position),
            )
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


def _parse_constant(text: str) -> Any:
    if text and (text[0].isdigit() or text[0] in "+-"):
        if "." in text:
            return Fraction(text)
        return int(text)
    if text.startswith("'"):
        return re.sub(r"\\(.)", r"\1", text[1:-1])
    return text


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token], source: str = ""):
        self._tokens = tokens
        self._source = source
        self._pos = 0
        self._anon_counter = [0]

    def _fail(self, message: str, position: int | None = None) -> "DatalogParseError":
        if position is None:
            return DatalogParseError(message)
        return DatalogParseError(
            f"{message} at {describe_position(self._source, position)}",
            details=position_details(self._source, position),
        )

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise self._fail(
                f"unexpected end of input (expected {expected or 'more tokens'})",
                len(self._source) if self._source else None,
            )
        if expected is not None and token.kind != expected:
            raise self._fail(
                f"expected {expected} but found {token.text!r}", token.position
            )
        self._pos += 1
        return token

    def _at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar --------------------------------------------------------------

    def parse_program(self) -> Program:
        rules_and_spans = self.parse_rules()
        if not rules_and_spans:
            raise DatalogParseError("empty program")
        program = Program([rule for rule, _span in rules_and_spans])
        program.rule_spans = tuple(span for _rule, span in rules_and_spans)
        return program

    def parse_rules(self) -> list[tuple[Rule, Span]]:
        """Parse every rule with its source span, *without* the safety
        and arity validation of :class:`Program` — the static analyzer
        needs the raw rules to report all violations at once."""
        rules: list[tuple[Rule, Span]] = []
        while not self._at_end():
            rules.append(self.parse_rule_with_span())
        return rules

    def parse_rule_with_span(self) -> tuple[Rule, Span]:
        start_token = self._peek()
        start = start_token.position if start_token is not None else 0
        head, keys, weight = self._parse_head()
        body: list[Atom] = []
        token = self._peek()
        if token is not None and token.kind == "ARROW":
            self._next("ARROW")
            # An arrow immediately followed by '.' is an empty body
            # (the paper writes fact rules as ``C(v) ←``).
            token = self._peek()
            if token is not None and token.kind != "DOT":
                body.append(self._parse_atom())
                while self._peek() is not None and self._peek().kind == "COMMA":
                    self._next("COMMA")
                    body.append(self._parse_atom())
        dot = self._next("DOT")
        rule = Rule(head, body, key_variables=keys, weight_variable=weight)
        return rule, (start, dot.position + 1)

    def parse_rule(self) -> Rule:
        return self.parse_rule_with_span()[0]

    def _parse_head(self) -> tuple[Atom, frozenset[str], str | None]:
        name = self._next("IDENT")
        if name.text[0].isupper():
            raise self._fail(
                f"predicate names must start lowercase: {name.text!r}",
                name.position,
            )
        terms = []
        keys: set[str] = set()
        self._next("LPAREN")
        token = self._peek()
        if token is not None and token.kind != "RPAREN":
            while True:
                term_token = self._peek()
                term, is_key = self._parse_head_term()
                terms.append(term)
                if is_key:
                    if not isinstance(term, Var):
                        raise self._fail(
                            "only variables can be key-marked",
                            term_token.position if term_token else None,
                        )
                    keys.add(term.name)
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self._next("COMMA")
                    continue
                break
        self._next("RPAREN")
        weight = None
        token = self._peek()
        if token is not None and token.kind == "AT":
            self._next("AT")
            weight_token = self._next("IDENT")
            if not weight_token.text[0].isupper():
                raise self._fail(
                    f"weight annotation @{weight_token.text} must be a variable",
                    weight_token.position,
                )
            weight = weight_token.text
        return Atom(name.text, terms), frozenset(keys), weight

    def _parse_head_term(self) -> tuple[Var | Const, bool]:
        term = self._parse_term(allow_anonymous=False)
        token = self._peek()
        if token is not None and token.kind == "STAR":
            self._next("STAR")
            return term, True
        return term, False

    def _parse_atom(self) -> Atom:
        name = self._next("IDENT")
        if name.text[0].isupper():
            raise self._fail(
                f"predicate names must start lowercase: {name.text!r}",
                name.position,
            )
        terms = []
        self._next("LPAREN")
        token = self._peek()
        if token is not None and token.kind != "RPAREN":
            while True:
                terms.append(self._parse_term(allow_anonymous=True))
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self._next("COMMA")
                    continue
                break
        self._next("RPAREN")
        return Atom(name.text, terms)

    def _parse_term(self, allow_anonymous: bool) -> Var | Const:
        token = self._peek()
        if token is None:
            raise self._fail(
                "unexpected end of input in term position",
                len(self._source) if self._source else None,
            )
        if token.kind == "IDENT":
            self._next()
            if token.text == "_":
                if not allow_anonymous:
                    raise self._fail(
                        "anonymous variable '_' is only allowed in rule bodies",
                        token.position,
                    )
                return fresh_anonymous(self._anon_counter)
            if token.text[0].isupper():
                return Var(token.text)
            return Const(token.text)
        if token.kind in ("NUMBER", "STRING"):
            self._next()
            try:
                return Const(_parse_constant(token.text))
            except (ValueError, ZeroDivisionError) as error:
                raise self._fail(
                    f"invalid literal {token.text!r}: {error}", token.position
                ) from error
        raise self._fail(f"unexpected token {token.text!r}", token.position)


def parse_program(source: str) -> Program:
    """Parse a full probabilistic datalog program from text.

    The returned program carries ``rule_spans``: per-rule character
    ranges in ``source``, used by diagnostics.
    """
    return _Parser(_tokenize(source), source).parse_program()


def parse_rules(source: str) -> list[tuple[Rule, Span]]:
    """Parse rules with their source spans, skipping program validation.

    Unlike :func:`parse_program` this never raises for unsafe rules or
    arity clashes — only for syntax errors — so the static analyzer can
    report every violation of a broken program in one pass.
    """
    return _Parser(_tokenize(source), source).parse_rules()


def parse_rule(source: str) -> Rule:
    """Parse a single rule from text."""
    parser = _Parser(_tokenize(source), source)
    rule = parser.parse_rule()
    if not parser._at_end():
        raise DatalogParseError("trailing input after the rule")
    return rule
