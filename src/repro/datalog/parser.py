"""Text syntax for probabilistic datalog.

Grammar (one rule per ``.``-terminated statement; ``%`` starts a
comment running to end of line)::

    program   := (rule)*
    rule      := head ( ":-" body )? "."
    head      := predicate "(" headterms? ")" ("@" VARIABLE)?
    headterm  := VARIABLE "*"? | constant          -- "*" marks a key
                                                   -- (underlined) variable
    body      := atom ("," atom)*
    atom      := predicate "(" terms? ")"
    term      := VARIABLE | "_" | constant
    predicate := lowercase identifier (letters, digits, "_")
    VARIABLE  := identifier starting with an uppercase letter
    constant  := lowercase identifier | signed number | 'quoted string'

The starred variables render the paper's *underlined* key columns, and
``@P`` is the paper's weight postfix (Example 3.7).  ``_`` is an
anonymous variable (each occurrence fresh), used e.g. for the paper's
``Done(a) ← R(cn, .)``.  Numbers parse to ``int`` when possible, else
``Fraction`` (exact decimals — probabilities stay rational).

Example
-------
>>> program = parse_program('''
...     c(v).
...     c2(X*, Y) :- c(X), e(X, Y).
...     c(Y) :- c2(X, Y).
... ''')
>>> len(program)
3
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, NamedTuple

from repro.datalog.ast import Atom, Const, Program, Rule, Var, fresh_anonymous
from repro.errors import DatalogParseError

_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*"),
    ("WS", r"\s+"),
    ("ARROW", r":-|<-|←"),
    ("NUMBER", r"[+-]?\d+(?:\.\d+)?"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("STRING", r"'(?:[^'\\]|\\.)*'"),
    ("AT", r"@"),
    ("STAR", r"\*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise DatalogParseError(
                f"unexpected character {source[position]!r} at offset {position}"
            )
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


def _parse_constant(text: str) -> Any:
    if text and (text[0].isdigit() or text[0] in "+-"):
        if "." in text:
            return Fraction(text)
        return int(text)
    if text.startswith("'"):
        return re.sub(r"\\(.)", r"\1", text[1:-1])
    return text


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0
        self._anon_counter = [0]

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise DatalogParseError(
                f"unexpected end of input (expected {expected or 'more tokens'})"
            )
        if expected is not None and token.kind != expected:
            raise DatalogParseError(
                f"expected {expected} but found {token.text!r} at offset "
                f"{token.position}"
            )
        self._pos += 1
        return token

    def _at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar --------------------------------------------------------------

    def parse_program(self) -> Program:
        rules = []
        while not self._at_end():
            rules.append(self.parse_rule())
        if not rules:
            raise DatalogParseError("empty program")
        return Program(rules)

    def parse_rule(self) -> Rule:
        head, keys, weight = self._parse_head()
        body: list[Atom] = []
        token = self._peek()
        if token is not None and token.kind == "ARROW":
            self._next("ARROW")
            # An arrow immediately followed by '.' is an empty body
            # (the paper writes fact rules as ``C(v) ←``).
            token = self._peek()
            if token is not None and token.kind != "DOT":
                body.append(self._parse_atom())
                while self._peek() is not None and self._peek().kind == "COMMA":
                    self._next("COMMA")
                    body.append(self._parse_atom())
        self._next("DOT")
        return Rule(head, body, key_variables=keys, weight_variable=weight)

    def _parse_head(self) -> tuple[Atom, frozenset[str], str | None]:
        name = self._next("IDENT")
        if name.text[0].isupper():
            raise DatalogParseError(
                f"predicate names must start lowercase: {name.text!r} at "
                f"offset {name.position}"
            )
        terms = []
        keys: set[str] = set()
        self._next("LPAREN")
        token = self._peek()
        if token is not None and token.kind != "RPAREN":
            while True:
                term, is_key = self._parse_head_term()
                terms.append(term)
                if is_key:
                    if not isinstance(term, Var):
                        raise DatalogParseError("only variables can be key-marked")
                    keys.add(term.name)
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self._next("COMMA")
                    continue
                break
        self._next("RPAREN")
        weight = None
        token = self._peek()
        if token is not None and token.kind == "AT":
            self._next("AT")
            weight_token = self._next("IDENT")
            if not weight_token.text[0].isupper():
                raise DatalogParseError(
                    f"weight annotation @{weight_token.text} must be a variable"
                )
            weight = weight_token.text
        return Atom(name.text, terms), frozenset(keys), weight

    def _parse_head_term(self) -> tuple[Var | Const, bool]:
        term = self._parse_term(allow_anonymous=False)
        token = self._peek()
        if token is not None and token.kind == "STAR":
            self._next("STAR")
            return term, True
        return term, False

    def _parse_atom(self) -> Atom:
        name = self._next("IDENT")
        if name.text[0].isupper():
            raise DatalogParseError(
                f"predicate names must start lowercase: {name.text!r} at "
                f"offset {name.position}"
            )
        terms = []
        self._next("LPAREN")
        token = self._peek()
        if token is not None and token.kind != "RPAREN":
            while True:
                terms.append(self._parse_term(allow_anonymous=True))
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self._next("COMMA")
                    continue
                break
        self._next("RPAREN")
        return Atom(name.text, terms)

    def _parse_term(self, allow_anonymous: bool) -> Var | Const:
        token = self._peek()
        if token is None:
            raise DatalogParseError("unexpected end of input in term position")
        if token.kind == "IDENT":
            self._next()
            if token.text == "_":
                if not allow_anonymous:
                    raise DatalogParseError(
                        "anonymous variable '_' is only allowed in rule bodies"
                    )
                return fresh_anonymous(self._anon_counter)
            if token.text[0].isupper():
                return Var(token.text)
            return Const(token.text)
        if token.kind == "NUMBER":
            self._next()
            return Const(_parse_constant(token.text))
        if token.kind == "STRING":
            self._next()
            return Const(_parse_constant(token.text))
        raise DatalogParseError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )


def parse_program(source: str) -> Program:
    """Parse a full probabilistic datalog program from text."""
    return _Parser(_tokenize(source)).parse_program()


def parse_rule(source: str) -> Rule:
    """Parse a single rule from text."""
    parser = _Parser(_tokenize(source))
    rule = parser.parse_rule()
    if not parser._at_end():
        raise DatalogParseError("trailing input after the rule")
    return rule
