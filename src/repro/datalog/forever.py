"""Non-inflationary probabilistic datalog (Section 3.3).

Under the non-inflationary semantics every IDB relation is *recomputed*
from the old state at each step (no ``newVals`` bookkeeping: every
current valuation participates in the repair-key choice every time), and
pc-tables are re-sampled per iteration.  The paper notes the resulting
language is subsumed by non-inflationary fixpoint — and uses it for the
Theorem 5.1 construction.

:func:`datalog_forever_query` packages the translation
(:func:`repro.datalog.compiler.noninflationary_interpretation` plus
optional pc-tables) into a ready :class:`ForeverQuery` with its initial
database; :func:`evaluate_datalog_forever` evaluates it exactly.
"""

from __future__ import annotations

from repro.core.evaluation.exact_noninflationary import evaluate_forever_exact
from repro.core.evaluation.results import ExactResult
from repro.core.interpretation import Interpretation
from repro.core.queries import ForeverQuery
from repro.core.events import QueryEvent
from repro.ctables.pctable import PCDatabase
from repro.datalog.ast import Program
from repro.datalog.compiler import initial_database, noninflationary_interpretation
from repro.errors import DatalogError
from repro.relational.database import Database


def datalog_forever_query(
    program: Program,
    edb: Database,
    event: QueryEvent,
    pc_tables: PCDatabase | None = None,
) -> tuple[ForeverQuery, Database]:
    """A program under non-inflationary semantics, as a forever-query.

    ``pc_tables`` adds c-table relations re-sampled at every step
    (Section 3.1's non-inflationary pc-table semantics); their relations
    count as EDB for the program and must not collide with IDB
    predicates.  The initial database seeds each pc relation with an
    arbitrary instantiation (the long-run result does not depend on it).

    Examples
    --------
    >>> from repro.datalog import parse_program
    >>> from repro.relational import Relation
    >>> from repro.core import TupleIn
    >>> program = parse_program("h(X*, Y)@P :- e(X, Y, P).")
    >>> edb = Database({"e": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 3)])})
    >>> query, db = datalog_forever_query(program, edb, TupleIn("h", ("a", "c")))
    """
    edb_schema = dict(edb.schema())
    if pc_tables is not None:
        clash = set(pc_tables.tables) & set(program.idb_predicates())
        if clash:
            raise DatalogError(
                f"pc-table relations {sorted(clash)!r} collide with IDB predicates"
            )
        for name, table in pc_tables.tables.items():
            edb_schema[name] = table.columns

    base = noninflationary_interpretation(program, edb_schema)
    kernel = Interpretation(base.queries, pc_tables=pc_tables)

    initial = initial_database(program, edb)
    if pc_tables is not None:
        seed = {}
        for name, table in pc_tables.tables.items():
            valuation = {
                variable: next(iter(pc_tables.variables[variable]))
                for variable in table.variables()
            }
            seed[name] = table.instantiate(valuation)
        initial = initial.with_relations(seed)
    return ForeverQuery(kernel, event), initial


def evaluate_datalog_forever(
    program: Program,
    edb: Database,
    event: QueryEvent,
    pc_tables: PCDatabase | None = None,
    max_states: int = 20_000,
) -> ExactResult:
    """Exact long-run probability of a non-inflationary datalog query.

    Examples
    --------
    >>> from fractions import Fraction
    >>> from repro.datalog import parse_program
    >>> from repro.relational import Relation
    >>> from repro.core import TupleIn
    >>> program = parse_program("h(X*, Y)@P :- e(X, Y, P).")
    >>> edb = Database({"e": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 3)])})
    >>> evaluate_datalog_forever(program, edb, TupleIn("h", ("a", "c"))).probability
    Fraction(3, 4)
    """
    query, initial = datalog_forever_query(program, edb, event, pc_tables)
    return evaluate_forever_exact(query, initial, max_states=max_states)
