"""Mixing times and spectral analysis (Sections 2.3 and 5.1).

The mixing time of an ergodic chain is the number of steps after which
the walk "forgets" its initial state:

    t(ε) = min { t : max_i TV(Pᵗ(i, ·), π) < ε }.

The paper's Theorem 5.6 sampler runs the kernel for t(ε) steps per
sample; this module computes t(ε) exactly (by float matrix powers) for
explicit chains, along with the classical spectral bounds

    t(ε) ≥ (t_rel − 1) · ln(1 / 2ε)        (lower)
    t(ε) ≤ t_rel · ln(1 / (ε · π_min))     (upper)

where t_rel = 1 / (1 − λ⋆) is the relaxation time and λ⋆ the largest
non-unit absolute eigenvalue of P.  Note the paper's displayed
definition compares per-state probabilities (an ∞-norm); we use the
standard total-variation form, which upper-bounds it, so a TV-mixed
chain is also mixed in the paper's sense.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, TypeVar

import numpy as np

from repro.errors import MarkovChainError
from repro.markov.analysis import is_aperiodic, is_irreducible
from repro.markov.chain import MarkovChain
from repro.markov.stationary import stationary_distribution_float

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext

S = TypeVar("S", bound=Hashable)

#: Hard cap on the number of steps explored when measuring mixing times.
DEFAULT_STEP_LIMIT = 1_000_000


def _require_ergodic(chain: MarkovChain[S]) -> None:
    if not is_irreducible(chain):
        raise MarkovChainError("mixing time is defined for irreducible chains")
    if not is_aperiodic(chain):
        raise MarkovChainError(
            "chain is periodic; Pᵗ does not converge and the mixing time "
            "is undefined (Theorem 5.6 requires an ergodic chain)"
        )


def tv_from_stationary(chain: MarkovChain[S], steps: int) -> float:
    """``max_i TV(P^steps(i, ·), π)`` — the worst-start TV distance."""
    _require_ergodic(chain)
    pi = np.array(
        [stationary_distribution_float(chain)[state] for state in chain.states]
    )
    power = np.linalg.matrix_power(chain.transition_matrix(), steps)
    return float(np.max(np.abs(power - pi[None, :]).sum(axis=1) / 2.0))


def tv_distance_curve(
    chain: MarkovChain[S],
    max_steps: int,
    context: "RunContext | None" = None,
) -> list[float]:
    """Worst-start TV distance after 0, 1, ..., max_steps steps.

    Useful for plotting convergence; entry 0 is the distance of the
    worst point mass itself.
    """
    _require_ergodic(chain)
    pi = np.array(
        [stationary_distribution_float(chain)[state] for state in chain.states]
    )
    matrix = chain.transition_matrix()
    power = np.eye(chain.size)
    curve = []
    for _ in range(max_steps + 1):
        if context is not None:
            context.check()
        curve.append(float(np.max(np.abs(power - pi[None, :]).sum(axis=1) / 2.0)))
        power = power @ matrix
    return curve


def mixing_time(
    chain: MarkovChain[S],
    epsilon: float = 0.25,
    step_limit: int = DEFAULT_STEP_LIMIT,
    context: "RunContext | None" = None,
) -> int:
    """The ε-mixing time t(ε) of an ergodic chain, computed exactly.

    Doubles the step count until the worst-start TV distance drops below
    ε, then binary-searches the threshold (TV distance from π is
    non-increasing in t).
    """
    if not 0 < epsilon < 1:
        raise MarkovChainError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    _require_ergodic(chain)
    pi = np.array(
        [stationary_distribution_float(chain)[state] for state in chain.states]
    )
    matrix = chain.transition_matrix()

    def distance_at(power: np.ndarray) -> float:
        return float(np.max(np.abs(power - pi[None, :]).sum(axis=1) / 2.0))

    # Exponential search on t.
    t = 1
    power = matrix.copy()
    powers = {1: power}
    while distance_at(power) >= epsilon:
        if context is not None:
            context.check()
        t *= 2
        if t > step_limit:
            raise MarkovChainError(
                f"chain did not ε-mix within {step_limit} steps (ε={epsilon})"
            )
        power = power @ power
        powers[t] = power

    # Binary search in (t/2, t].
    low, high = t // 2, t
    while high - low > 1:
        if context is not None:
            context.check()
        mid = (low + high) // 2
        mid_power = np.linalg.matrix_power(matrix, mid)
        if distance_at(mid_power) < epsilon:
            high = mid
        else:
            low = mid
    return high


def eigenvalue_gap(chain: MarkovChain[S]) -> float:
    """The absolute spectral gap ``1 − λ⋆`` of an ergodic chain, where
    λ⋆ is the largest modulus among non-unit eigenvalues of P."""
    _require_ergodic(chain)
    values = np.linalg.eigvals(chain.transition_matrix())
    moduli = sorted((abs(v) for v in values), reverse=True)
    # The leading eigenvalue is 1 (row-stochastic matrix).
    second = moduli[1] if len(moduli) > 1 else 0.0
    return float(max(0.0, 1.0 - second))


def relaxation_time(chain: MarkovChain[S]) -> float:
    """``t_rel = 1 / gap``; infinite when the gap vanishes numerically."""
    gap = eigenvalue_gap(chain)
    if gap <= 1e-15:
        return float("inf")
    return 1.0 / gap


def mixing_time_upper_bound(chain: MarkovChain[S], epsilon: float = 0.25) -> float:
    """Spectral upper bound ``t_rel · ln(1 / (ε π_min))`` on t(ε)."""
    if not 0 < epsilon < 1:
        raise MarkovChainError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    t_rel = relaxation_time(chain)
    pi = stationary_distribution_float(chain)
    pi_min = min(pi.values())
    if pi_min <= 0:
        return float("inf")
    return t_rel * float(np.log(1.0 / (epsilon * pi_min)))


def mixing_time_lower_bound(chain: MarkovChain[S], epsilon: float = 0.25) -> float:
    """Spectral lower bound ``(t_rel − 1) · ln(1 / 2ε)`` on t(ε)."""
    if not 0 < epsilon < 0.5:
        raise MarkovChainError(
            f"the lower bound needs epsilon in (0, 0.5), got {epsilon!r}"
        )
    t_rel = relaxation_time(chain)
    return max(0.0, (t_rel - 1.0) * float(np.log(1.0 / (2.0 * epsilon))))
