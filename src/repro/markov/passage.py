"""First-passage (hitting) analysis.

Extensions over the paper's long-run semantics that fall out of the
same machinery: the probability of *ever* hitting a set of states, and
the expected number of steps to do so.  Both are classical first-step
analyses — make the target states absorbing and solve the absorption /
expected-absorption-time systems exactly.

Used by :func:`repro.core.evaluation.passage.event_hitting_probability`
to answer "will the forever-loop ever satisfy the event, and how soon?"
— a different question from Definition 3.2's long-run occupancy (a
transient event can be hit with probability 1 yet have long-run
probability 0).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, TypeVar

from repro.errors import MarkovChainError
from repro.markov.chain import MarkovChain
from repro.markov.linalg import solve_exact
from repro.probability.distribution import Distribution, as_fraction

S = TypeVar("S", bound=Hashable)


def _target_states(chain: MarkovChain[S], target: Callable[[S], bool]) -> frozenset[S]:
    return frozenset(state for state in chain.states if target(state))


def hitting_probability(
    chain: MarkovChain[S], start: S, target: Callable[[S], bool]
) -> Fraction:
    """Pr[the walk from ``start`` ever enters a target state], exactly.

    Solves ``h(i) = Σ_j P(i,j) h(j)`` on non-target states with
    ``h = 1`` on targets; states that cannot reach the target get the
    (unique minimal) solution 0 by eliminating them first.
    """
    targets = _target_states(chain, target)
    if start in targets:
        return Fraction(1)
    if not targets:
        return Fraction(0)

    # Restrict to states that can reach a target at all: the linear
    # system is singular on the "never reaches" part, whose h is 0.
    can_reach = set(targets)
    changed = True
    while changed:
        changed = False
        for state in chain.states:
            if state in can_reach:
                continue
            if any(s in can_reach for s in chain.successors(state)):
                can_reach.add(state)
                changed = True
    if start not in can_reach:
        return Fraction(0)

    unknowns = [s for s in chain.states if s in can_reach and s not in targets]
    index = {s: i for i, s in enumerate(unknowns)}
    n = len(unknowns)
    system = [[Fraction(0)] * n for _ in range(n)]
    rhs = [[Fraction(0)] for _ in range(n)]
    for state in unknowns:
        i = index[state]
        system[i][i] += Fraction(1)
        for successor, weight in chain.successors(state).items():
            p = as_fraction(weight)
            if successor in targets:
                rhs[i][0] += p
            elif successor in index:
                system[i][index[successor]] -= p
            # successors outside can_reach contribute h = 0
    solution = solve_exact(system, rhs)
    return solution[index[start]][0]


def expected_hitting_time(
    chain: MarkovChain[S], start: S, target: Callable[[S], bool]
) -> Fraction:
    """E[steps until the walk from ``start`` first enters a target
    state]; raises when the target is not hit almost surely (the
    expectation would be infinite)."""
    targets = _target_states(chain, target)
    if start in targets:
        return Fraction(0)
    if hitting_probability(chain, start, target) != 1:
        raise MarkovChainError(
            "expected hitting time is infinite: the target is missed with "
            "positive probability"
        )
    # All states reachable from start hit the target a.s.; solve
    # t(i) = 1 + sum_j P(i,j) t(j) over reachable non-target states.
    reachable = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        if state in targets:
            continue
        for successor in chain.successors(state):
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)
    unknowns = [s for s in chain.states if s in reachable and s not in targets]
    index = {s: i for i, s in enumerate(unknowns)}
    n = len(unknowns)
    system = [[Fraction(0)] * n for _ in range(n)]
    rhs = [[Fraction(1)] for _ in range(n)]
    for state in unknowns:
        i = index[state]
        system[i][i] += Fraction(1)
        for successor, weight in chain.successors(state).items():
            if successor in index:
                system[i][index[successor]] -= as_fraction(weight)
    solution = solve_exact(system, rhs)
    return solution[index[start]][0]


def hitting_time_distribution(
    chain: MarkovChain[S], start: S, target: Callable[[S], bool], horizon: int
) -> Distribution[int]:
    """Exact distribution of the first hitting time, truncated at
    ``horizon`` (the outcome ``horizon + 1`` aggregates "not yet hit").
    """
    if horizon < 0:
        raise MarkovChainError("horizon must be non-negative")
    targets = _target_states(chain, target)
    weights: dict[int, Fraction] = {}
    if start in targets:
        return Distribution.point(0)
    alive: dict[S, Fraction] = {start: Fraction(1)}
    for step in range(1, horizon + 1):
        next_alive: dict[S, Fraction] = {}
        hit = Fraction(0)
        for state, mass in alive.items():
            for successor, weight in chain.successors(state).items():
                p = mass * as_fraction(weight)
                if successor in targets:
                    hit += p
                else:
                    next_alive[successor] = next_alive.get(successor, Fraction(0)) + p
        if hit > 0:
            weights[step] = hit
        alive = next_alive
        if not alive:
            break
    remaining = sum(alive.values())
    if remaining > 0:
        weights[horizon + 1] = remaining
    return Distribution(weights, normalise=False)
