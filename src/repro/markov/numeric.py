"""Float64 counterparts of the exact chain solvers.

The exact (Fraction) solvers of :mod:`repro.markov.absorption` and
:mod:`repro.markov.stationary` are the reference implementations — they
make the paper's lemma-level identities checkable with ``==`` — but
their rational arithmetic grows expensive on chains beyond a few hundred
states.  This module solves the same systems in float64 with numpy:
absorption probabilities into leaf SCCs, per-leaf stationary
distributions, and the Definition 3.2 long-run event probability.

Accuracy: standard LAPACK solves; on well-conditioned chains the results
agree with the exact solvers to ~1e-12 (asserted in the tests).
"""

from __future__ import annotations

from typing import Callable, Hashable, TypeVar

import numpy as np

from repro.errors import MarkovChainError
from repro.markov.analysis import leaf_components
from repro.markov.chain import MarkovChain
from repro.markov.stationary import stationary_distribution_float

S = TypeVar("S", bound=Hashable)


def absorption_probabilities_float(
    chain: MarkovChain[S], start: S
) -> dict[frozenset[S], float]:
    """Float64 probability of absorption into each leaf SCC."""
    leaves = leaf_components(chain)
    leaf_of: dict[S, int] = {}
    for index, leaf in enumerate(leaves):
        for state in leaf:
            leaf_of[state] = index

    if start in leaf_of:
        return {
            leaf: 1.0 if index == leaf_of[start] else 0.0
            for index, leaf in enumerate(leaves)
        }

    transient = [state for state in chain.states if state not in leaf_of]
    t_index = {state: i for i, state in enumerate(transient)}
    n = len(transient)
    k = len(leaves)

    system = np.eye(n)
    rhs = np.zeros((n, k))
    for state in transient:
        i = t_index[state]
        for successor, weight in chain.successors(state).items():
            p = float(weight)
            if successor in t_index:
                system[i, t_index[successor]] -= p
            else:
                rhs[i, leaf_of[successor]] += p

    solution = np.linalg.solve(system, rhs)
    row = solution[t_index[start]]
    total = row.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise MarkovChainError(
            f"absorption probabilities sum to {total}; the chain is not closed"
        )
    return {leaf: float(row[index]) for index, leaf in enumerate(leaves)}


def long_run_event_probability_float(
    chain: MarkovChain[S], start: S, event: Callable[[S], bool]
) -> float:
    """Float64 version of the Definition 3.2 long-run event probability
    (Theorem 5.5 structure: absorption × per-leaf stationary mass)."""
    total = 0.0
    for leaf, reach in absorption_probabilities_float(chain, start).items():
        if reach <= 0.0:
            continue
        sub_chain = chain.restricted_to(leaf)
        pi = stationary_distribution_float(sub_chain)
        inside = sum(weight for state, weight in pi.items() if event(state))
        total += reach * inside
    return float(min(1.0, max(0.0, total)))


def long_run_state_distribution_float(
    chain: MarkovChain[S], start: S
) -> dict[S, float]:
    """Float64 long-run occupancy per state (transients get 0.0)."""
    occupancy: dict[S, float] = {state: 0.0 for state in chain.states}
    for leaf, reach in absorption_probabilities_float(chain, start).items():
        if reach <= 0.0:
            continue
        sub_chain = chain.restricted_to(leaf)
        for state, weight in stationary_distribution_float(sub_chain).items():
            occupancy[state] = reach * weight
    return occupancy
