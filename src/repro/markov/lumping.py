"""Strong lumping: exact state-space quotients of Markov chains.

The paper's future work asks for "generic optimization techniques for
query evaluation".  Lumping is the classical one for chain-based
semantics: when states are equivalent — every state of a block has the
same total transition probability into every other block — the chain
*quotients* to one over the blocks, and any question expressible at
block granularity (such as a query event that is constant on blocks)
has the same answer on the quotient.  Database-state chains are full of
such symmetry (indistinguishable walkers, graph automorphisms), so the
quotient can be exponentially smaller.

:func:`coarsest_lumping` computes the coarsest strong lumping refining
an initial partition (typically: event-true vs event-false states) by
signature-based partition refinement; :func:`quotient_chain` builds the
lumped chain; :func:`repro.core.evaluation.lumped.evaluate_forever_lumped`
plugs it into query evaluation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

from repro.errors import MarkovChainError
from repro.markov.chain import MarkovChain
from repro.probability.distribution import Distribution, as_fraction

S = TypeVar("S", bound=Hashable)

Partition = list[frozenset]


def _normalise_partition(chain: MarkovChain[S], blocks: Iterable[Iterable[S]]) -> Partition:
    partition = [frozenset(block) for block in blocks]
    partition = [block for block in partition if block]
    covered: set[S] = set()
    for block in partition:
        for state in block:
            if state not in chain:
                raise MarkovChainError(f"partition mentions unknown state {state!r}")
            if state in covered:
                raise MarkovChainError(f"state {state!r} appears in two blocks")
            covered.add(state)
    missing = set(chain.states) - covered
    if missing:
        raise MarkovChainError(
            f"partition misses states {sorted(map(repr, missing))[:4]}"
        )
    return partition


def _block_index(partition: Partition) -> dict:
    index = {}
    for number, block in enumerate(partition):
        for state in block:
            index[state] = number
    return index


def is_lumpable(chain: MarkovChain[S], blocks: Iterable[Iterable[S]]) -> bool:
    """Is the partition a *strong lumping*?

    True iff, for every block B and every block C, all states of B have
    the same total one-step probability into C.
    """
    partition = _normalise_partition(chain, blocks)
    index = _block_index(partition)
    for block in partition:
        signature = None
        for state in block:
            sums: dict[int, Fraction] = {}
            for successor, weight in chain.successors(state).items():
                target = index[successor]
                sums[target] = sums.get(target, Fraction(0)) + as_fraction(weight)
            frozen = frozenset(sums.items())
            if signature is None:
                signature = frozen
            elif frozen != signature:
                return False
    return True


def coarsest_lumping(
    chain: MarkovChain[S], initial: Iterable[Iterable[S]]
) -> Partition:
    """The coarsest strong lumping refining ``initial``.

    Signature refinement: split each block by the vector of its states'
    transition masses into the current blocks; repeat until stable.
    Terminates in at most |states| rounds; the result is the unique
    coarsest refinement (standard partition-refinement argument).
    """
    partition = _normalise_partition(chain, initial)
    while True:
        index = _block_index(partition)
        refined: Partition = []
        changed = False
        for block in partition:
            groups: dict[frozenset, set] = {}
            for state in block:
                sums: dict[int, Fraction] = {}
                for successor, weight in chain.successors(state).items():
                    target = index[successor]
                    sums[target] = sums.get(target, Fraction(0)) + as_fraction(weight)
                groups.setdefault(frozenset(sums.items()), set()).add(state)
            if len(groups) > 1:
                changed = True
            refined.extend(frozenset(group) for group in groups.values())
        partition = refined
        if not changed:
            return partition


def quotient_chain(
    chain: MarkovChain[S], blocks: Iterable[Iterable[S]]
) -> tuple[MarkovChain[int], dict]:
    """The lumped chain over block numbers, plus the state → block map.

    Raises :class:`MarkovChainError` when the partition is not a strong
    lumping (the quotient would be ill-defined).
    """
    partition = _normalise_partition(chain, blocks)
    if not is_lumpable(chain, partition):
        raise MarkovChainError("partition is not a strong lumping")
    index = _block_index(partition)
    transitions: dict[int, Distribution[int]] = {}
    for number, block in enumerate(partition):
        representative = next(iter(block))
        sums: dict[int, Fraction] = {}
        for successor, weight in chain.successors(representative).items():
            target = index[successor]
            sums[target] = sums.get(target, Fraction(0)) + as_fraction(weight)
        transitions[number] = Distribution(sums, normalise=False)
    return MarkovChain(transitions), index


def lumped_event_probability(
    chain: MarkovChain[S],
    start: S,
    event: Callable[[S], bool],
) -> tuple[Fraction, int]:
    """Definition 3.2's long-run event probability via the coarsest
    event-respecting lumping.

    The initial partition separates event-true from event-false states;
    the refined quotient preserves block-level dynamics for *every*
    initial distribution (Kemeny–Snell: that is what strong lumpability
    means), so starting the quotient walk at the start state's block is
    exact.  Returns ``(probability, quotient_size)``.
    """
    from repro.markov.absorption import long_run_event_probability

    true_states = {s for s in chain.states if event(s)}
    false_states = set(chain.states) - true_states
    seed = [true_states, false_states]
    partition = coarsest_lumping(chain, [b for b in seed if b])
    quotient, index = quotient_chain(chain, partition)

    block_is_event = {}
    for state in chain.states:
        number = index[state]
        value = event(state)
        if block_is_event.setdefault(number, value) != value:
            raise MarkovChainError("lumping failed to respect the event")

    probability = long_run_event_probability(
        quotient, index[start], lambda b: block_is_event[b]
    )
    return probability, quotient.size
