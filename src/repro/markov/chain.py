"""Finite Markov chains over arbitrary hashable states.

Section 2.3 of the paper.  A :class:`MarkovChain` is a finite state set
with one outgoing :class:`~repro.probability.distribution.Distribution`
per state.  States may be anything hashable — in this library they are
usually whole :class:`~repro.relational.database.Database` snapshots
(the chain over database instances induced by a non-inflationary query,
Section 3.1).

Transition probabilities are kept exact (Fractions) when constructed
from exact distributions; :meth:`MarkovChain.transition_matrix` exports
a float numpy matrix for the numeric algorithms (mixing time, spectral
analysis).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Callable, Generic, Hashable, Iterable, Iterator, Mapping, TypeVar

import numpy as np

from repro.errors import MarkovChainError
from repro.probability.distribution import Distribution

S = TypeVar("S", bound=Hashable)


class MarkovChain(Generic[S]):
    """A finite Markov chain given by per-state transition distributions.

    Parameters
    ----------
    transitions:
        Mapping from each state to the distribution of its successor.
        Every successor must itself be a key of the mapping (the chain
        must be closed).

    Examples
    --------
    >>> from fractions import Fraction
    >>> chain = MarkovChain({
    ...     "a": Distribution({"a": Fraction(1, 2), "b": Fraction(1, 2)}),
    ...     "b": Distribution({"a": Fraction(1)}),
    ... })
    >>> chain.size
    2
    """

    def __init__(self, transitions: Mapping[S, Distribution[S]]):
        if not transitions:
            raise MarkovChainError("a Markov chain needs at least one state")
        self._states: tuple[S, ...] = tuple(transitions.keys())
        self._index: dict[S, int] = {s: i for i, s in enumerate(self._states)}
        if len(self._index) != len(self._states):
            raise MarkovChainError("duplicate states in transition mapping")
        self._rows: tuple[Distribution[S], ...] = tuple(
            transitions[s] for s in self._states
        )
        for state, row in zip(self._states, self._rows):
            for successor in row:
                if successor not in self._index:
                    raise MarkovChainError(
                        f"state {state!r} transitions to unknown state {successor!r}"
                    )

    # -- basic accessors -----------------------------------------------------

    @property
    def states(self) -> tuple[S, ...]:
        """All states, in construction order."""
        return self._states

    @property
    def size(self) -> int:
        """Number of states."""
        return len(self._states)

    def index_of(self, state: S) -> int:
        """Integer index of a state (raises for unknown states)."""
        try:
            return self._index[state]
        except KeyError:
            raise MarkovChainError(f"unknown state {state!r}") from None

    def __contains__(self, state: S) -> bool:
        return state in self._index

    def successors(self, state: S) -> Distribution[S]:
        """The transition distribution out of ``state``."""
        return self._rows[self.index_of(state)]

    def probability(self, source: S, target: S) -> Fraction | float:
        """One-step transition probability P(source → target)."""
        return self.successors(source).probability(target)

    def edges(self) -> Iterator[tuple[S, S, Fraction | float]]:
        """All positive-probability transitions as (source, target, p)."""
        for state, row in zip(self._states, self._rows):
            for successor, weight in row.items():
                yield state, successor, weight

    def __repr__(self) -> str:
        return f"MarkovChain({self.size} states)"

    # -- numeric export --------------------------------------------------------

    def transition_matrix(self) -> np.ndarray:
        """The row-stochastic transition matrix as float64, with
        ``matrix[i, j] = P(states[i] → states[j])``."""
        matrix = np.zeros((self.size, self.size))
        for state, successor, weight in self.edges():
            matrix[self._index[state], self._index[successor]] = float(weight)
        return matrix

    def exact_matrix(self) -> list[list[Fraction]]:
        """The transition matrix with exact Fraction entries."""
        from repro.probability.distribution import as_fraction

        matrix = [[Fraction(0)] * self.size for _ in range(self.size)]
        for state, successor, weight in self.edges():
            matrix[self._index[state]][self._index[successor]] = as_fraction(weight)
        return matrix

    # -- evolution ----------------------------------------------------------------

    def step_distribution(self, current: Distribution[S]) -> Distribution[S]:
        """One exact step: the distribution after one transition from
        ``current``."""
        return current.bind(self.successors)

    def distribution_after(self, start: S, steps: int) -> Distribution[S]:
        """Exact state distribution after ``steps`` transitions from
        ``start``.  Exponential-size intermediate distributions are
        possible; use the float matrix powers of
        :mod:`repro.markov.mixing` for larger chains."""
        current = Distribution.point(start)
        for _ in range(steps):
            current = self.step_distribution(current)
        return current

    def walk(self, start: S, steps: int, rng: random.Random) -> Iterator[S]:
        """A random walk: yields ``steps`` successive states after
        ``start`` (the start state itself is not yielded)."""
        state = start
        if state not in self._index:
            raise MarkovChainError(f"unknown start state {state!r}")
        for _ in range(steps):
            state = self.successors(state).sample(rng)
            yield state

    # -- transforms ------------------------------------------------------------

    def restricted_to(self, states: Iterable[S]) -> "MarkovChain[S]":
        """The sub-chain on a closed subset of states.

        Raises :class:`MarkovChainError` if any kept state can leave the
        subset (the subset must be closed under transitions) — used to
        extract leaf strongly-connected components in Theorem 5.5.
        """
        keep = set(states)
        transitions: dict[S, Distribution[S]] = {}
        for state in self._states:
            if state not in keep:
                continue
            row = self.successors(state)
            if not row.support() <= keep:
                raise MarkovChainError(
                    f"state {state!r} has transitions leaving the subset"
                )
            transitions[state] = row
        if keep - set(transitions):
            raise MarkovChainError(f"unknown states {keep - set(transitions)!r}")
        return MarkovChain(transitions)

    def relabelled(self, label: Callable[[S], Hashable]) -> "MarkovChain":
        """A chain with states renamed by an *injective* labelling."""
        mapping = {s: label(s) for s in self._states}
        if len(set(mapping.values())) != len(mapping):
            raise MarkovChainError("relabelling is not injective")
        return MarkovChain(
            {
                mapping[s]: self.successors(s).map(lambda t: mapping[t])
                for s in self._states
            }
        )


def chain_from_edges(
    edges: Iterable[tuple[S, S, Fraction | float | int]],
) -> MarkovChain[S]:
    """Build a chain from weighted edges; per-state weights are
    normalised to one (so plain counts work as weights).

    Examples
    --------
    >>> chain = chain_from_edges([("a", "b", 1), ("a", "c", 1), ("b", "a", 1), ("c", "a", 1)])
    >>> chain.probability("a", "b")
    Fraction(1, 2)
    """
    outgoing: dict[S, dict[S, Fraction | float | int]] = {}
    seen: set[S] = set()
    for source, target, weight in edges:
        outgoing.setdefault(source, {})
        bucket = outgoing[source]
        bucket[target] = bucket.get(target, 0) + weight
        seen.add(source)
        seen.add(target)
    missing = seen - set(outgoing)
    if missing:
        raise MarkovChainError(
            f"states {sorted(map(repr, missing))} have no outgoing transitions; "
            "add self-loops to make them absorbing"
        )
    return MarkovChain({s: Distribution(w) for s, w in outgoing.items()})
