"""Conductance and the Cheeger bounds on mixing (Section 5.1).

The paper points to conductance and coupling as the standard techniques
for certifying that a Markov chain mixes in time polynomial in its
state count — precisely the situation where the Theorem 5.6 sampler is
efficient.  This module computes the conductance of small explicit
chains exactly (by subset enumeration) and relates it to the spectral
gap through the Cheeger inequalities

    Φ² / 2  ≤  gap  ≤  2 Φ

(valid for reversible chains; for non-reversible chains the
additive-reversibilisation version is used, see
:func:`is_reversible`).

Conductance of a set S with stationary mass π(S) ≤ 1/2 is

    Φ(S) = Q(S, S̄) / π(S),   Q(S, S̄) = Σ_{i∈S, j∉S} π(i) P(i, j)

and the chain's conductance Φ is the minimum over such sets.
"""

from __future__ import annotations

import itertools
from typing import Hashable, TypeVar

from repro.errors import MarkovChainError
from repro.markov.chain import MarkovChain
from repro.markov.mixing import eigenvalue_gap
from repro.markov.stationary import stationary_distribution_float

S = TypeVar("S", bound=Hashable)

#: Largest chain size for which exact subset enumeration is attempted.
MAX_EXACT_STATES = 18


def is_reversible(chain: MarkovChain[S], tolerance: float = 1e-9) -> bool:
    """Detailed-balance check π(i)P(i,j) = π(j)P(j,i) (numerically)."""
    pi = stationary_distribution_float(chain)
    for source, target, weight in chain.edges():
        forward = pi[source] * float(weight)
        backward = pi[target] * float(chain.probability(target, source))
        if abs(forward - backward) > tolerance:
            return False
    return True


def set_conductance(chain: MarkovChain[S], subset: frozenset[S]) -> float:
    """Φ(S) for one set of states (requires 0 < π(S) ≤ 1/2)."""
    pi = stationary_distribution_float(chain)
    mass = sum(pi[state] for state in subset)
    if mass <= 0 or mass > 0.5 + 1e-12:
        raise MarkovChainError(
            f"set conductance needs 0 < π(S) ≤ 1/2, got π(S) = {mass}"
        )
    flow = 0.0
    for source, target, weight in chain.edges():
        if source in subset and target not in subset:
            flow += pi[source] * float(weight)
    return flow / mass


def conductance(chain: MarkovChain[S]) -> tuple[float, frozenset[S]]:
    """The chain's conductance Φ and a minimising set.

    Exact by enumeration of all non-trivial subsets with π(S) ≤ 1/2 —
    exponential in the state count, so limited to
    :data:`MAX_EXACT_STATES` states.  Requires irreducibility (the
    stationary distribution must be unique).
    """
    if chain.size > MAX_EXACT_STATES:
        raise MarkovChainError(
            f"exact conductance enumeration limited to {MAX_EXACT_STATES} "
            f"states; chain has {chain.size}"
        )
    pi = stationary_distribution_float(chain)
    states = list(chain.states)
    best = float("inf")
    best_set: frozenset[S] = frozenset()
    # Fix one state out of the subset to halve the enumeration (S and
    # its complement give related cuts; we still scan all π(S) ≤ 1/2).
    for size in range(1, len(states)):
        for subset in itertools.combinations(states, size):
            mass = sum(pi[s] for s in subset)
            if mass <= 0 or mass > 0.5 + 1e-12:
                continue
            phi = set_conductance(chain, frozenset(subset))
            if phi < best:
                best = phi
                best_set = frozenset(subset)
    if best == float("inf"):
        raise MarkovChainError("no subset with 0 < π(S) ≤ 1/2 found")
    return best, best_set


def cheeger_bounds(chain: MarkovChain[S]) -> dict[str, float]:
    """Conductance, spectral gap, and the Cheeger sandwich.

    Returns a mapping with keys ``conductance``, ``gap``,
    ``cheeger_lower`` (= Φ²/2), ``cheeger_upper`` (= 2Φ) and
    ``reversible``.  For reversible chains the sandwich
    Φ²/2 ≤ gap ≤ 2Φ holds; the caller can assert it.
    """
    phi, _witness = conductance(chain)
    gap = eigenvalue_gap(chain)
    return {
        "conductance": phi,
        "gap": gap,
        "cheeger_lower": phi * phi / 2.0,
        "cheeger_upper": 2.0 * phi,
        "reversible": float(is_reversible(chain)),
    }
