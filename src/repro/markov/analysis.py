"""Structural analysis of finite Markov chains.

Implements the chain properties of Section 2.3: irreducibility, state
periods and aperiodicity, positive recurrence, ergodicity, and the DAG
of strongly connected components used by Theorem 5.5.  For a *finite*
chain, irreducibility implies positive recurrence, and the recurrent
states are exactly those in the *leaf* (closed) SCCs of the condensation
— facts this module relies on and its docstrings record.
"""

from __future__ import annotations

from math import gcd
from typing import Hashable, TypeVar

import networkx as nx

from repro.errors import MarkovChainError
from repro.markov.chain import MarkovChain

S = TypeVar("S", bound=Hashable)


def transition_graph(chain: MarkovChain[S]) -> "nx.DiGraph":
    """The directed graph of positive-probability transitions."""
    graph = nx.DiGraph()
    graph.add_nodes_from(chain.states)
    for source, target, _weight in chain.edges():
        graph.add_edge(source, target)
    return graph


def strongly_connected_components(chain: MarkovChain[S]) -> list[frozenset[S]]:
    """All SCCs, in a topological order of the condensation (sources
    first, leaves last)."""
    graph = transition_graph(chain)
    condensation = nx.condensation(graph)
    ordered = nx.topological_sort(condensation)
    return [frozenset(condensation.nodes[i]["members"]) for i in ordered]


def leaf_components(chain: MarkovChain[S]) -> list[frozenset[S]]:
    """The *closed* (leaf) SCCs: components with no transition leaving
    them.  A random walk is absorbed into one of these with probability
    one (Theorem 5.5)."""
    leaves = []
    for component in strongly_connected_components(chain):
        closed = all(
            chain.successors(state).support() <= component for state in component
        )
        if closed:
            leaves.append(component)
    return leaves


def is_irreducible(chain: MarkovChain[S]) -> bool:
    """True when every state reaches every other state (one SCC)."""
    return len(strongly_connected_components(chain)) == 1


def period_of_component(chain: MarkovChain[S], component: frozenset[S]) -> int:
    """The common period of the states of one SCC.

    Uses the standard BFS-level argument: fix a root, compute BFS levels
    within the component; the period is the gcd of
    ``level(u) + 1 − level(v)`` over all intra-component edges u→v.
    Singleton components without a self-loop have no cycles; the period
    is undefined and this function raises.
    """
    component_list = sorted(component, key=repr)
    root = component_list[0]
    if len(component) == 1:
        if chain.probability(root, root) > 0:
            return 1
        raise MarkovChainError(
            f"state {root!r} is transient (no return path); period undefined"
        )
    level: dict[S, int] = {root: 0}
    frontier = [root]
    while frontier:
        nxt = []
        for state in frontier:
            for successor in chain.successors(state):
                if successor in component and successor not in level:
                    level[successor] = level[state] + 1
                    nxt.append(successor)
        frontier = nxt
    period = 0
    for state in component:
        for successor in chain.successors(state):
            if successor in component:
                period = gcd(period, level[state] + 1 - level[successor])
    return abs(period)


def period(chain: MarkovChain[S], state: S) -> int:
    """The period of one state: gcd of the lengths of all return paths."""
    for component in strongly_connected_components(chain):
        if state in component:
            return period_of_component(chain, component)
    raise MarkovChainError(f"unknown state {state!r}")


def is_aperiodic(chain: MarkovChain[S]) -> bool:
    """True when every recurrent state has period 1.

    Transient states (outside every leaf SCC) never recur, so their
    period is irrelevant to long-run behaviour; for irreducible chains
    this reduces to the usual definition.
    """
    return all(
        period_of_component(chain, component) == 1
        for component in leaf_components(chain)
    )


def is_positively_recurrent(chain: MarkovChain[S]) -> bool:
    """True when *all* states are positively recurrent.

    In a finite chain, a state is positively recurrent iff it lies in a
    closed (leaf) SCC, so this holds iff every SCC is closed.
    """
    leaves = leaf_components(chain)
    covered = frozenset().union(*leaves) if leaves else frozenset()
    return covered == frozenset(chain.states)


def is_ergodic(chain: MarkovChain[S]) -> bool:
    """Ergodic = aperiodic and positively recurrent (Section 2.3).

    Together with irreducibility this is the hypothesis of the MCMC
    sampling algorithm (Theorem 5.6).  Note the paper's definition of
    ergodic does not itself require irreducibility, but the stationary
    distribution is unique only for irreducible chains; callers that
    need uniqueness should check :func:`is_irreducible` as well.
    """
    return is_aperiodic(chain) and is_positively_recurrent(chain)


def is_absorbing_state(chain: MarkovChain[S], state: S) -> bool:
    """True when the state transitions to itself with probability 1."""
    row = chain.successors(state)
    return row.support() == frozenset({state})


def reachable_states(chain: MarkovChain[S], start: S) -> frozenset[S]:
    """States reachable from ``start`` (including itself)."""
    seen = {start}
    frontier = [start]
    while frontier:
        nxt = []
        for state in frontier:
            for successor in chain.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    nxt.append(successor)
        frontier = nxt
    return frozenset(seen)


def classify(chain: MarkovChain[S]) -> dict[str, object]:
    """A structural summary used by diagnostics and benchmark output."""
    components = strongly_connected_components(chain)
    leaves = leaf_components(chain)
    return {
        "states": chain.size,
        "sccs": len(components),
        "leaf_sccs": len(leaves),
        "irreducible": len(components) == 1,
        "aperiodic": is_aperiodic(chain),
        "positively_recurrent": is_positively_recurrent(chain),
        "ergodic": is_ergodic(chain),
    }
