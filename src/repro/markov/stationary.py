"""Stationary distributions of finite Markov chains.

For an irreducible (finite, hence positively recurrent) chain the
stationary distribution π with π = πP uniquely exists (Section 2.3) and
equals the Cesàro limit in the paper's Definition 3.2 semantics, even
when the chain is periodic.  Two solvers are provided:

* :func:`stationary_distribution` — exact, over rationals, by Gaussian
  elimination on the system ``π(P − I) = 0, Σπ = 1`` (the "Gaussian
  elimination on this matrix to compute the principal eigenvector" step
  of Proposition 5.4);
* :func:`stationary_distribution_float` — float64 via numpy, for larger
  chains.

Also here: :func:`power_iteration` (converges for aperiodic irreducible
chains) and :func:`cesaro_average` (converges for all irreducible
chains; useful to validate the Definition 3.2 limit empirically).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Hashable, TypeVar

import numpy as np

from repro.errors import MarkovChainError
from repro.markov.analysis import is_irreducible, period
from repro.markov.chain import MarkovChain
from repro.markov.linalg import solve_exact_vector
from repro.probability.distribution import Distribution

S = TypeVar("S", bound=Hashable)


def _chain_period(chain: MarkovChain[S], state: S) -> int | None:
    """The period of ``state``'s SCC, or ``None`` when undefined."""
    try:
        return period(chain, state)
    except MarkovChainError:  # transient singleton: no return path
        return None


def stationary_distribution(
    chain: MarkovChain[S], tracer: Any = None
) -> Distribution[S]:
    """The unique stationary distribution of an irreducible chain, exact.

    Solves the transposed balance equations ``(Pᵀ − I)π = 0`` with one
    equation replaced by the normalisation ``Σᵢ πᵢ = 1``.

    Raises :class:`MarkovChainError` for reducible chains, where the
    stationary distribution is not unique (use
    :mod:`repro.markov.absorption` and per-leaf stationary distributions
    instead, per Theorem 5.5).

    ``tracer`` forwards to :func:`~repro.markov.linalg.solve_exact` for
    per-pivot elimination events.
    """
    if not is_irreducible(chain):
        raise MarkovChainError(
            "stationary distribution requested for a reducible chain; "
            "it is not unique — use leaf-SCC analysis (Theorem 5.5)"
        )
    n = chain.size
    matrix = chain.exact_matrix()
    # Build (Pᵀ − I), then replace the last row by the normalisation.
    system = [[matrix[j][i] - (1 if i == j else 0) for j in range(n)] for i in range(n)]
    system[n - 1] = [Fraction(1)] * n
    rhs = [Fraction(0)] * (n - 1) + [Fraction(1)]
    solution = solve_exact_vector(system, rhs, tracer=tracer)
    return Distribution(
        {state: value for state, value in zip(chain.states, solution)},
        normalise=False,
    )


def stationary_distribution_float(chain: MarkovChain[S]) -> dict[S, float]:
    """Float64 stationary distribution of an irreducible chain (numpy).

    The direct balance-equation solve is exact for any irreducible
    chain, periodic or not — but a badly conditioned (or numerically
    singular) system can hand back garbage without LAPACK complaining.
    The result is therefore verified against the balance equations
    before it is returned; a residual above ``1e-8`` raises a
    :class:`~repro.errors.MarkovChainError` whose ``details`` carry the
    residual and the chain's period rather than returning silently
    wrong floats.
    """
    if not is_irreducible(chain):
        raise MarkovChainError(
            "stationary distribution requested for a reducible chain"
        )
    n = chain.size
    matrix = chain.transition_matrix()
    system = matrix.T - np.eye(n)
    system[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    try:
        solution = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as error:
        raise MarkovChainError(
            f"float64 stationary solve failed: {error}",
            details={"period": _chain_period(chain, chain.states[0])},
        ) from error
    residual = float(np.abs(solution @ matrix - solution).sum())
    if not np.isfinite(residual) or residual > 1e-8:
        raise MarkovChainError(
            "float64 stationary solve is numerically unreliable "
            f"(balance residual {residual:.3e}); use the exact solver "
            "or the certified sparse rung",
            details={
                "residual": residual,
                "period": _chain_period(chain, chain.states[0]),
            },
        )
    # Clip tiny negative round-off and renormalise.
    solution = np.clip(solution, 0.0, None)
    solution /= solution.sum()
    return {state: float(p) for state, p in zip(chain.states, solution)}


def power_iteration(
    chain: MarkovChain[S],
    start: S,
    tolerance: float = 1e-12,
    max_steps: int = 100_000,
) -> dict[S, float]:
    """Iterate ``μ ← μP`` from a point mass until the L1 change is below
    ``tolerance``.  Converges to π for irreducible *aperiodic* chains;
    periodic chains oscillate — use :func:`cesaro_average` for those.
    """
    matrix = chain.transition_matrix()
    mu = np.zeros(chain.size)
    mu[chain.index_of(start)] = 1.0
    for _ in range(max_steps):
        nxt = mu @ matrix
        if np.abs(nxt - mu).sum() < tolerance:
            mu = nxt
            break
        mu = nxt
    else:
        chain_period = _chain_period(chain, start)
        hint = (
            f"the chain has period {chain_period}, so the iterates "
            "oscillate instead of converging; use cesaro_average or "
            "stationary_distribution_float"
            if chain_period is not None and chain_period > 1
            else "the chain may be periodic or slowly mixing"
        )
        raise MarkovChainError(
            f"power iteration did not converge in {max_steps} steps: {hint}",
            details={
                "max_steps": max_steps,
                "tolerance": tolerance,
                "period": chain_period,
            },
        )
    return {state: float(p) for state, p in zip(chain.states, mu)}


def cesaro_average(chain: MarkovChain[S], start: S, steps: int) -> dict[S, float]:
    """The time-averaged occupancy ``(1/t) Σ_{k<t} P^k(start, ·)``.

    This is exactly the quantity inside the paper's Definition 3.2
    limit; for irreducible chains it converges to π as ``steps → ∞``
    regardless of periodicity.
    """
    if steps < 1:
        raise MarkovChainError("cesaro_average needs at least one step")
    matrix = chain.transition_matrix()
    mu = np.zeros(chain.size)
    mu[chain.index_of(start)] = 1.0
    acc = mu.copy()
    for _ in range(steps - 1):
        mu = mu @ matrix
        acc += mu
    acc /= steps
    return {state: float(p) for state, p in zip(chain.states, acc)}


def is_stationary(chain: MarkovChain[S], pi: Distribution[S]) -> bool:
    """Exact check of the balance equations π = πP (any chain)."""
    stepped = chain.step_distribution(pi)
    return stepped == pi
