"""Random-walk simulation utilities.

Thin, seeded wrappers around :meth:`MarkovChain.walk` used by the
Theorem 5.6 sampler and by the empirical-validation benchmarks (e.g.
checking the Definition 3.2 Cesàro limit by simulation).

Every walk accepts an optional :class:`~repro.runtime.RunContext`;
each transition is charged one budget step and the cancellation token
is polled, so even a million-step simulation stops within one
transition of a deadline or a cancel request.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable, Hashable, TypeVar

from repro.errors import MarkovChainError
from repro.markov.chain import MarkovChain
from repro.probability.rng import RngLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.context import RunContext

S = TypeVar("S", bound=Hashable)


def walk_states(
    chain: MarkovChain[S],
    start: S,
    steps: int,
    rng: RngLike = None,
    context: "RunContext | None" = None,
) -> list[S]:
    """The full trajectory [start, X₁, ..., X_steps] of one random walk."""
    generator = make_rng(rng)
    trajectory = [start]
    for state in chain.walk(start, steps, generator):
        if context is not None:
            context.tick_steps()
        trajectory.append(state)
    return trajectory


def state_after(
    chain: MarkovChain[S],
    start: S,
    steps: int,
    rng: RngLike = None,
    context: "RunContext | None" = None,
) -> S:
    """The state reached after ``steps`` transitions from ``start``."""
    generator = make_rng(rng)
    state = start
    for state in chain.walk(start, steps, generator):
        if context is not None:
            context.tick_steps()
    return state


def occupancy_frequencies(
    chain: MarkovChain[S],
    start: S,
    steps: int,
    rng: RngLike = None,
    context: "RunContext | None" = None,
) -> dict[S, float]:
    """Empirical occupancy of one long walk: the fraction of the first
    ``steps`` positions (after the start) spent in each state.

    This is a single-trajectory estimate of the paper's Definition 3.2
    long-run probability; for irreducible chains it converges to π by
    the ergodic theorem.
    """
    if steps < 1:
        raise MarkovChainError("occupancy needs at least one step")
    generator = make_rng(rng)
    counts: Counter[S] = Counter()
    for state in chain.walk(start, steps, generator):
        if context is not None:
            context.tick_steps()
        counts[state] += 1
    return {state: count / steps for state, count in counts.items()}


def event_frequency(
    chain: MarkovChain[S],
    start: S,
    event: Callable[[S], bool],
    steps: int,
    rng: RngLike = None,
    context: "RunContext | None" = None,
) -> float:
    """Fraction of the walk's time during which ``event`` holds —
    the simulated counterpart of Definition 3.2's query result."""
    if steps < 1:
        raise MarkovChainError("event frequency needs at least one step")
    generator = make_rng(rng)
    hits = 0
    for state in chain.walk(start, steps, generator):
        if context is not None:
            context.tick_steps()
        if event(state):
            hits += 1
    return hits / steps
