"""Markov-chain substrate (Section 2.3 of the paper): finite chains,
structural analysis, stationary distributions, absorption into leaf
SCCs, mixing times, and random-walk simulation."""

from repro.markov.absorption import (
    absorption_probabilities,
    expected_absorption_time,
    long_run_event_probability,
    long_run_state_distribution,
)
from repro.markov.analysis import (
    classify,
    is_absorbing_state,
    is_aperiodic,
    is_ergodic,
    is_irreducible,
    is_positively_recurrent,
    leaf_components,
    period,
    period_of_component,
    reachable_states,
    strongly_connected_components,
    transition_graph,
)
from repro.markov.chain import MarkovChain, chain_from_edges
from repro.markov.conductance import (
    cheeger_bounds,
    conductance,
    is_reversible,
    set_conductance,
)
from repro.markov.linalg import identity, solve_exact, solve_exact_gauss, solve_exact_vector
from repro.markov.lumping import (
    coarsest_lumping,
    is_lumpable,
    lumped_event_probability,
    quotient_chain,
)
from repro.markov.passage import (
    expected_hitting_time,
    hitting_probability,
    hitting_time_distribution,
)
from repro.markov.numeric import (
    absorption_probabilities_float,
    long_run_event_probability_float,
    long_run_state_distribution_float,
)
from repro.markov.mixing import (
    eigenvalue_gap,
    mixing_time,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    relaxation_time,
    tv_distance_curve,
    tv_from_stationary,
)
from repro.markov.simulate import (
    event_frequency,
    occupancy_frequencies,
    state_after,
    walk_states,
)
from repro.markov.stationary import (
    cesaro_average,
    is_stationary,
    power_iteration,
    stationary_distribution,
    stationary_distribution_float,
)

__all__ = [
    "MarkovChain",
    "absorption_probabilities",
    "absorption_probabilities_float",
    "cesaro_average",
    "chain_from_edges",
    "cheeger_bounds",
    "classify",
    "coarsest_lumping",
    "conductance",
    "eigenvalue_gap",
    "event_frequency",
    "expected_absorption_time",
    "expected_hitting_time",
    "hitting_probability",
    "hitting_time_distribution",
    "identity",
    "is_absorbing_state",
    "is_aperiodic",
    "is_ergodic",
    "is_irreducible",
    "is_lumpable",
    "is_positively_recurrent",
    "is_reversible",
    "is_stationary",
    "leaf_components",
    "long_run_event_probability",
    "long_run_event_probability_float",
    "long_run_state_distribution",
    "long_run_state_distribution_float",
    "lumped_event_probability",
    "mixing_time",
    "mixing_time_lower_bound",
    "mixing_time_upper_bound",
    "occupancy_frequencies",
    "period",
    "period_of_component",
    "power_iteration",
    "quotient_chain",
    "reachable_states",
    "relaxation_time",
    "set_conductance",
    "solve_exact",
    "solve_exact_gauss",
    "solve_exact_vector",
    "state_after",
    "stationary_distribution",
    "stationary_distribution_float",
    "strongly_connected_components",
    "transition_graph",
    "tv_distance_curve",
    "tv_from_stationary",
    "walk_states",
]
