"""Exact linear algebra over rationals.

The exact evaluators of Proposition 5.4 and Theorem 5.5 need stationary
distributions and absorption probabilities as *exact* rationals (so that
e.g. Lemma 5.2's "p = 1 iff satisfiable" can be checked with ``==``).
This module implements Gaussian elimination with partial (first-nonzero)
pivoting over :class:`fractions.Fraction` — cubic time, no rounding.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import MarkovChainError

Matrix = list[list[Fraction]]


def solve_exact(a: Sequence[Sequence[Fraction]], b: Sequence[Sequence[Fraction]]) -> Matrix:
    """Solve ``A · X = B`` exactly for possibly-multiple right-hand sides.

    ``a`` is an n×n matrix, ``b`` an n×k matrix (k right-hand columns).
    Raises :class:`MarkovChainError` when A is singular.
    """
    n = len(a)
    if any(len(row) != n for row in a):
        raise MarkovChainError("coefficient matrix is not square")
    if len(b) != n:
        raise MarkovChainError("right-hand side has wrong row count")
    k = len(b[0]) if n else 0
    if any(len(row) != k for row in b):
        raise MarkovChainError("ragged right-hand side")

    # Work on an augmented copy.
    aug: Matrix = [list(map(Fraction, a[i])) + list(map(Fraction, b[i])) for i in range(n)]

    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot_row is None:
            raise MarkovChainError("singular system in exact solve")
        if pivot_row != col:
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        if pivot != 1:
            aug[col] = [value / pivot for value in aug[col]]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col]
            if factor == 0:
                continue
            pivot_row_values = aug[col]
            aug[row] = [
                value - factor * pivot_value
                for value, pivot_value in zip(aug[row], pivot_row_values)
            ]

    return [row[n:] for row in aug]


def solve_exact_vector(a: Sequence[Sequence[Fraction]], b: Sequence[Fraction]) -> list[Fraction]:
    """Solve ``A · x = b`` exactly for a single right-hand vector."""
    solution = solve_exact(a, [[value] for value in b])
    return [row[0] for row in solution]


def identity(n: int) -> Matrix:
    """The n×n identity matrix over Fractions."""
    return [[Fraction(1) if i == j else Fraction(0) for j in range(n)] for i in range(n)]
