"""Exact linear algebra over rationals.

The exact evaluators of Proposition 5.4 and Theorem 5.5 need stationary
distributions and absorption probabilities as *exact* rationals (so that
e.g. Lemma 5.2's "p = 1 iff satisfiable" can be checked with ``==``).

Two solvers are provided, both cubic-time and rounding-free:

* :func:`solve_exact` — **Bareiss fraction-free elimination**, the
  default.  Each row of the augmented system is scaled once by the LCM
  of its denominators, after which the entire elimination runs in
  integer arithmetic: the Bareiss two-by-two update
  ``(a·p − b·q) // prev_pivot`` divides exactly (every intermediate is
  a minor determinant of the scaled matrix), so the per-operation gcd
  normalisation that dominates :class:`fractions.Fraction` arithmetic
  is paid only once per result entry during back-substitution instead
  of at every inner-loop multiply.
* :func:`solve_exact_gauss` — the original Gauss–Jordan elimination
  over :class:`Fraction`, kept as the independent reference
  implementation; ``benchmarks/run_benchmarks.py`` and the test suite
  verify the two agree entry-for-entry.

Singular and malformed systems raise :class:`MarkovChainError` whose
message and ``details`` carry the matrix dimensions (and, for
singularity, the failing column index) so chain-level callers can
report *which* system died, matching the diagnostic style of the
runtime layer.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Any, Sequence

from repro.errors import MarkovChainError

Matrix = list[list[Fraction]]


def _check_shapes(
    a: Sequence[Sequence[Fraction]], b: Sequence[Sequence[Fraction]]
) -> tuple[int, int]:
    """Validate an ``A · X = B`` system, returning ``(n, k)``."""
    n = len(a)
    for index, row in enumerate(a):
        if len(row) != n:
            raise MarkovChainError(
                f"coefficient matrix is not square: row {index} has "
                f"{len(row)} entries in a {n}-row matrix",
                details={"rows": n, "row": index, "row_length": len(row)},
            )
    if len(b) != n:
        raise MarkovChainError(
            f"right-hand side has wrong row count: {len(b)} rows for a "
            f"{n}x{n} coefficient matrix",
            details={"rows": n, "rhs_rows": len(b)},
        )
    k = len(b[0]) if n else 0
    for index, row in enumerate(b):
        if len(row) != k:
            raise MarkovChainError(
                f"ragged right-hand side: row {index} has {len(row)} "
                f"entries, expected {k} (system is {n}x{n})",
                details={"rows": n, "rhs_columns": k, "row": index},
            )
    return n, k


def _singular(n: int, k: int, col: int) -> MarkovChainError:
    return MarkovChainError(
        f"singular system in exact solve: no pivot in column {col} "
        f"of the {n}x{n} coefficient matrix ({k} right-hand columns)",
        details={"rows": n, "columns": n, "rhs_columns": k, "column": col},
    )


def solve_exact(
    a: Sequence[Sequence[Fraction]],
    b: Sequence[Sequence[Fraction]],
    tracer: Any = None,
) -> Matrix:
    """Solve ``A · X = B`` exactly for possibly-multiple right-hand sides.

    ``a`` is an n×n matrix, ``b`` an n×k matrix (k right-hand columns).
    Uses Bareiss fraction-free elimination (denominators cleared once
    per row, one exact division per update, Fractions only rebuilt
    during back-substitution).  Raises :class:`MarkovChainError` when A
    is singular; the error's ``details`` name the failing column.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`, optional) receives
    one bounded ``pivot`` event per elimination column — column index,
    whether rows were swapped, and the pivot's bit length, enough to
    watch coefficient growth on big chains.
    """
    n, k = _check_shapes(a, b)
    width = n + k

    # Clear denominators row-by-row: scaling a row of [A | B] by a
    # positive integer does not change the solution set.
    aug: list[list[int]] = []
    for i in range(n):
        row = [Fraction(value) for value in a[i]] + [Fraction(value) for value in b[i]]
        scale = 1
        for value in row:
            scale = scale * value.denominator // gcd(scale, value.denominator)
        aug.append([int(value * scale) for value in row])

    # Bareiss forward elimination to upper-triangular form.  Every
    # division by the previous pivot is exact (Sylvester's identity).
    previous_pivot = 1
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot_row is None:
            raise _singular(n, k, col)
        if pivot_row != col:
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        if tracer is not None and tracer.enabled:
            tracer.event(
                "pivot",
                column=col,
                swapped=pivot_row != col,
                pivot_bits=pivot.bit_length(),
            )
        pivot_values = aug[col]
        for r in range(col + 1, n):
            row = aug[r]
            factor = row[col]
            if factor == 0:
                for c in range(col, width):
                    row[c] = row[c] * pivot // previous_pivot
            else:
                for c in range(col, width):
                    row[c] = (row[c] * pivot - factor * pivot_values[c]) // previous_pivot
        previous_pivot = pivot

    # Back-substitution, rebuilding exact Fractions once per entry.
    solution: Matrix = [[Fraction(0)] * k for _ in range(n)]
    for i in reversed(range(n)):
        diagonal = aug[i][i]
        for j in range(k):
            acc = Fraction(aug[i][n + j])
            for c in range(i + 1, n):
                acc -= aug[i][c] * solution[c][j]
            solution[i][j] = acc / diagonal
    return solution


def solve_exact_gauss(
    a: Sequence[Sequence[Fraction]], b: Sequence[Sequence[Fraction]]
) -> Matrix:
    """Reference solver: Gauss–Jordan elimination over ``Fraction``.

    Kept as the independent implementation that :func:`solve_exact` is
    verified against (tests and the benchmark harness's checksum
    guard); prefer :func:`solve_exact` everywhere else.
    """
    n, k = _check_shapes(a, b)

    # Work on an augmented copy.
    aug: Matrix = [
        list(map(Fraction, a[i])) + list(map(Fraction, b[i])) for i in range(n)
    ]

    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot_row is None:
            raise _singular(n, k, col)
        if pivot_row != col:
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        if pivot != 1:
            aug[col] = [value / pivot for value in aug[col]]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col]
            if factor == 0:
                continue
            pivot_row_values = aug[col]
            aug[row] = [
                value - factor * pivot_value
                for value, pivot_value in zip(aug[row], pivot_row_values)
            ]

    return [row[n:] for row in aug]


def solve_exact_vector(
    a: Sequence[Sequence[Fraction]],
    b: Sequence[Fraction],
    tracer: Any = None,
) -> list[Fraction]:
    """Solve ``A · x = b`` exactly for a single right-hand vector."""
    solution = solve_exact(a, [[value] for value in b], tracer=tracer)
    return [row[0] for row in solution]


def identity(n: int) -> Matrix:
    """The n×n identity matrix over Fractions."""
    return [[Fraction(1) if i == j else Fraction(0) for j in range(n)] for i in range(n)]
