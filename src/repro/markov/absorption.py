"""Absorption analysis: the general case of Theorem 5.5.

A random walk on a finite chain is absorbed, with probability one, into
one of the *leaf* (closed) strongly connected components of the SCC
condensation.  Theorem 5.5 evaluates a non-inflationary query by
(1) computing the probability of reaching each leaf component and
(2) the stationary distribution within each leaf, then combining.

The paper sketches step (1) as a (potentially doubly-exponential)
enumeration of DAG paths; we compute the same quantity exactly with the
standard absorbing-chain linear system

    h_i(L) = Σ_j P_ij · h_j(L)   for transient i,   h_i(L) = [i ∈ L] on leaves,

solved over rationals with one right-hand column per leaf.  This is a
faithful substitution: it computes exactly the probability mass the
path enumeration sums, in polynomial time in the (already exponential)
chain size.  See DESIGN.md §2 "Substitutions".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Hashable, TypeVar

from repro.errors import MarkovChainError
from repro.markov.analysis import leaf_components
from repro.markov.chain import MarkovChain
from repro.markov.linalg import solve_exact
from repro.markov.stationary import stationary_distribution
from repro.probability.distribution import as_fraction

S = TypeVar("S", bound=Hashable)


def absorption_probabilities(
    chain: MarkovChain[S], start: S
) -> dict[frozenset[S], Fraction]:
    """Exact probability of eventual absorption into each leaf SCC,
    starting from ``start``.

    The probabilities sum to one (absorption is almost sure on finite
    chains).
    """
    leaves = leaf_components(chain)
    leaf_of: dict[S, int] = {}
    for leaf_index, leaf in enumerate(leaves):
        for state in leaf:
            leaf_of[state] = leaf_index

    if start in leaf_of:
        return {
            leaf: Fraction(1) if index == leaf_of[start] else Fraction(0)
            for index, leaf in enumerate(leaves)
        }

    transient = [state for state in chain.states if state not in leaf_of]
    t_index = {state: i for i, state in enumerate(transient)}
    n = len(transient)
    k = len(leaves)

    # (I − Q) h = B, where Q is the transient-to-transient block and
    # B[i][l] is the one-step probability of jumping from transient i
    # into leaf l.
    system = [[Fraction(0)] * n for _ in range(n)]
    rhs = [[Fraction(0)] * k for _ in range(n)]
    for state in transient:
        i = t_index[state]
        system[i][i] = Fraction(1)
        for successor, weight in chain.successors(state).items():
            p = as_fraction(weight)
            if successor in t_index:
                system[i][t_index[successor]] -= p
            else:
                rhs[i][leaf_of[successor]] += p

    solution = solve_exact(system, rhs)
    start_row = solution[t_index[start]]
    result = {leaf: start_row[index] for index, leaf in enumerate(leaves)}
    total = sum(result.values())
    if total != 1:
        raise MarkovChainError(
            f"absorption probabilities sum to {total}, expected 1 — "
            "the chain is not closed"
        )
    return result


def long_run_event_probability(
    chain: MarkovChain[S],
    start: S,
    event: Callable[[S], bool],
    tracer: Any = None,
) -> Fraction:
    """The paper's Definition 3.2 query result, exactly (Theorem 5.5).

    ``Pr(event) = Σ_leaf Pr[absorbed into leaf] · Σ_{s ∈ leaf, event(s)} π_leaf(s)``

    where π_leaf is the stationary (= Cesàro) distribution of the
    sub-chain restricted to the leaf.  Transient states contribute
    nothing: they are visited only finitely often, so their share of the
    time-average in Definition 3.2 vanishes in the limit.

    Implementation note: rather than solving one absorption system per
    leaf, the per-leaf event masses are folded into the boundary values
    of a *single* system — f(i) = Σ_j P(i,j) f(j) on transient states
    with f ≡ (leaf's event mass) on each leaf — which computes the same
    sum with one right-hand side.
    """
    leaves = leaf_components(chain)
    # Event mass of each leaf under its stationary distribution.
    leaf_value: dict[S, Fraction] = {}
    for leaf in leaves:
        sub_chain = chain.restricted_to(leaf)
        pi = stationary_distribution(sub_chain, tracer=tracer)
        mass = sum(
            (as_fraction(weight) for state, weight in pi.items() if event(state)),
            Fraction(0),
        )
        for state in leaf:
            leaf_value[state] = mass

    if start in leaf_value:
        return leaf_value[start]

    transient = [state for state in chain.states if state not in leaf_value]
    t_index = {state: i for i, state in enumerate(transient)}
    n = len(transient)
    system = [[Fraction(0)] * n for _ in range(n)]
    rhs = [[Fraction(0)] for _ in range(n)]
    for state in transient:
        i = t_index[state]
        system[i][i] = Fraction(1)
        for successor, weight in chain.successors(state).items():
            p = as_fraction(weight)
            if successor in t_index:
                system[i][t_index[successor]] -= p
            else:
                rhs[i][0] += p * leaf_value[successor]
    solution = solve_exact(system, rhs, tracer=tracer)
    return solution[t_index[start]][0]


def long_run_state_distribution(
    chain: MarkovChain[S], start: S
) -> dict[S, Fraction]:
    """Long-run occupancy Pr(s) per state (Definition 3.2), exactly.

    Transient states get probability zero; recurrent states get
    ``Pr[absorb leaf] · π_leaf(s)``.  The values sum to one.
    """
    occupancy: dict[S, Fraction] = {state: Fraction(0) for state in chain.states}
    for leaf, reach in absorption_probabilities(chain, start).items():
        if reach == 0:
            continue
        sub_chain = chain.restricted_to(leaf)
        pi = stationary_distribution(sub_chain)
        for state, weight in pi.items():
            occupancy[state] = reach * as_fraction(weight)
    return occupancy


def expected_absorption_time(chain: MarkovChain[S], start: S) -> Fraction:
    """Expected number of steps before entering a leaf SCC from ``start``
    (zero when ``start`` is already recurrent).  Useful for calibrating
    burn-in in the Theorem 5.6 sampler on reducible chains."""
    leaves = leaf_components(chain)
    recurrent = frozenset().union(*leaves) if leaves else frozenset()
    if start in recurrent:
        return Fraction(0)
    transient = [state for state in chain.states if state not in recurrent]
    t_index = {state: i for i, state in enumerate(transient)}
    n = len(transient)
    system = [[Fraction(0)] * n for _ in range(n)]
    rhs = [[Fraction(1)] for _ in range(n)]
    for state in transient:
        i = t_index[state]
        system[i][i] = Fraction(1)
        for successor, weight in chain.successors(state).items():
            if successor in t_index:
                system[i][t_index[successor]] -= as_fraction(weight)
    solution = solve_exact(system, rhs)
    return solution[t_index[start]][0]
