"""Query builders for the paper's worked examples.

Each builder returns a ready-to-evaluate query plus its initial
database, encoding the examples exactly as the paper writes them:

* :func:`random_walk_query` — Example 3.3 (random walk in a graph);
* :func:`pagerank_query` — the Example 3.3 PageRank variant;
* :func:`reachability_query` — Example 3.5 (inflationary fixpoint);
* :func:`reachability_program` — Example 3.9 (probabilistic datalog);
* :func:`unguarded_reachability_query` — the Example 3.6 pitfall
  (tuple re-use without the ``C − C_old`` guard).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.events import TupleIn
from repro.core.interpretation import Interpretation
from repro.core.queries import ForeverQuery, InflationaryQuery
from repro.datalog.ast import Program
from repro.datalog.parser import parse_program
from repro.errors import ReproError
from repro.relational.algebra import (
    Expression,
    difference,
    join,
    literal,
    product,
    project,
    rel,
    rename,
    repair_key,
    union,
)
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.workloads.graphs import Node, WeightedGraph


def _walk_step(current: str = "C") -> Expression:
    """``ρ_{J→I} π_J (repair-key_{I@P}(C ⋈ E))`` — one walk step."""
    return rename(
        project(repair_key(join(rel(current), rel("E")), ("I",), "P"), "J"),
        J="I",
    )


def random_walk_query(
    graph: WeightedGraph, start: Node, target: Node
) -> tuple[ForeverQuery, Database]:
    """Example 3.3: the forever-query whose result is the long-run
    probability of the walk sitting at ``target``.

    The kernel rewrites the current-position relation ``C`` with one
    repair-key step over the edge relation; ``E`` stays unchanged.
    """
    if start not in graph.nodes or target not in graph.nodes:
        raise ReproError("start/target must be graph nodes")
    db = Database(
        {
            "C": Relation(("I",), [(start,)]),
            "E": graph.edge_relation(),
        }
    )
    kernel = Interpretation({"C": _walk_step()})
    return ForeverQuery(kernel, TupleIn("C", (target,))), db


def pagerank_query(
    graph: WeightedGraph,
    alpha: Fraction,
    start: Node,
    target: Node,
) -> tuple[ForeverQuery, Database]:
    """The Example 3.3 PageRank variant.

    With probability 1 − α the walk follows an edge from the current
    node; with probability α it jumps to a node chosen uniformly from
    V = π_I(E) ∪ π_J(E).  The paper expresses both the jump choice and
    the arbitration between "follow" and "jump" with keyless
    repair-key applications over weight columns {1 − α} and {α}; we
    follow that structure (the inner node choice is the keyless uniform
    ``repair-key(V)``, so the two union arms carry total weights 1 − α
    and α and the outer ``repair-key_{@P}`` realises the dampening
    exactly).
    """
    if not 0 < alpha < 1:
        raise ReproError("dampening factor alpha must lie in (0, 1)")
    alpha = Fraction(alpha)
    follow = product(_walk_step(), literal(("P",), [(1 - alpha,)]))
    nodes = union(project(rel("E"), "I"), rename(project(rel("E"), "J"), J="I"))
    jump = product(repair_key(nodes), literal(("P",), [(alpha,)]))
    step = project(repair_key(union(follow, jump), key=(), weight="P"), "I")
    db = Database(
        {
            "C": Relation(("I",), [(start,)]),
            "E": graph.edge_relation(),
        }
    )
    kernel = Interpretation({"C": step})
    return ForeverQuery(kernel, TupleIn("C", (target,))), db


def reachability_query(
    graph: WeightedGraph, start: Node, target: Node
) -> tuple[InflationaryQuery, Database]:
    """Example 3.5: the inflationary fixpoint query for the probability
    that ``target`` is eventually reached.

    Kernel (all right-hand sides read the old state)::

        Cold := C
        C    := C ∪ ρ_{J→I} π_J (repair-key_{I@P}((C − Cold) ⋈ E))
        E    := E   % unchanged
    """
    if start not in graph.nodes or target not in graph.nodes:
        raise ReproError("start/target must be graph nodes")
    frontier = difference(rel("C"), rel("Cold"))
    step = rename(
        project(repair_key(join(frontier, rel("E")), ("I",), "P"), "J"),
        J="I",
    )
    kernel = Interpretation(
        {
            "C": union(rel("C"), step),
            "Cold": rel("C"),
        }
    )
    db = Database(
        {
            "C": Relation(("I",), [(start,)]),
            "Cold": Relation(("I",), []),
            "E": graph.edge_relation(),
        }
    )
    return InflationaryQuery(kernel, TupleIn("C", (target,))), db


def unguarded_reachability_query(
    graph: WeightedGraph, start: Node, target: Node
) -> tuple[InflationaryQuery, Database]:
    """Example 3.6: the same query *without* the ``C − Cold`` guard.

    Every node of C keeps re-choosing a successor forever, so every
    tuple derivable ignoring repair-key ends up in the result with
    probability 1 — the pitfall the example illustrates.
    """
    step = rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"),
        J="I",
    )
    kernel = Interpretation({"C": union(rel("C"), step)})
    db = Database(
        {
            "C": Relation(("I",), [(start,)]),
            "E": graph.edge_relation(),
        }
    )
    return InflationaryQuery(kernel, TupleIn("C", (target,))), db


def reachability_program(graph: WeightedGraph, start: Node) -> tuple[Program, Database]:
    """Example 3.9: reachability as a probabilistic datalog program.

    The weighted variant of the paper's program — ``c2`` carries the
    edge weight so the per-node successor choice follows the edge
    probabilities::

        c(<start>).
        c2(X*, Y)@P :- c(X), e(X, Y, P).
        c(Y) :- c2(X, Y).
    """
    program = parse_program(
        f"""
        c('{start}').
        c2(X*, Y)@P :- c(X), e(X, Y, P).
        c(Y) :- c2(X, Y).
        """
    )
    edb = Database({"e": graph.edge_relation(columns=("I", "J", "P"))})
    return program, edb
