"""Random probabilistic-datalog program generator.

Produces small, *safe* programs over a random EDB, for differential
testing: the Section 3.3 operational engine, the Proposition 3.8
compiled form, and the Theorem 4.3 sampler must all agree on every
generated instance (see ``tests/property/test_datalog_properties.py``).

Generated shape:

* one binary EDB relation ``e`` over a small constant domain, with a
  positive integer weight column available for ``@P`` rules;
* IDB predicates ``p/1`` and ``q/2``;
* one seed fact plus 2–4 rules with random bodies (over ``e``, ``p``,
  ``q``), random-but-safe heads, and random key markers / weight
  annotations.

Everything is driven by a seeded RNG, so instances are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datalog.ast import Atom, Const, Program, Rule, Var
from repro.errors import DatalogError
from repro.probability.rng import RngLike, make_rng
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Constant domain of generated instances.
DOMAIN = ("d0", "d1", "d2")
#: Variable pool for rule bodies.
VARIABLES = ("X", "Y", "Z")


def random_edb(rng: random.Random, max_rows: int = 5) -> Database:
    """A random weighted edge relation ``e(I, J, P)``."""
    rows = set()
    for _ in range(rng.randint(2, max_rows)):
        rows.add(
            (
                rng.choice(DOMAIN),
                rng.choice(DOMAIN),
                rng.randint(1, 3),
            )
        )
    return Database({"e": Relation(("I", "J", "P"), rows)})


def _random_body(rng: random.Random) -> tuple[Atom, ...]:
    """1–2 random body atoms over e/p/q with mixed vars and constants."""
    atoms = []
    for _ in range(rng.randint(1, 2)):
        predicate = rng.choice(("e", "p", "q"))
        if predicate == "e":
            arity = 3
        elif predicate == "q":
            arity = 2
        else:
            arity = 1
        terms: list[Var | Const] = []
        for position in range(arity):
            if predicate == "e" and position == 2:
                # the weight column binds a dedicated variable
                terms.append(Var("P"))
            elif rng.random() < 0.75:
                terms.append(Var(rng.choice(VARIABLES)))
            else:
                terms.append(Const(rng.choice(DOMAIN)))
        atoms.append(Atom(predicate, terms))
    return tuple(atoms)


def _random_head(rng: random.Random, body: Sequence[Atom]) -> Atom:
    """A safe head: every head variable occurs in the body."""
    body_vars = [
        term.name
        for atom in body
        for term in atom.terms
        if isinstance(term, Var) and term.name != "P"
    ]
    predicate = rng.choice(("p", "q"))
    arity = 1 if predicate == "p" else 2
    terms: list[Var | Const] = []
    for _ in range(arity):
        if body_vars and rng.random() < 0.8:
            terms.append(Var(rng.choice(body_vars)))
        else:
            terms.append(Const(rng.choice(DOMAIN)))
    return Atom(predicate, terms)


def _random_rule(rng: random.Random) -> Rule:
    body = _random_body(rng)
    head = _random_head(rng, body)
    head_vars = [t.name for t in head.terms if isinstance(t, Var)]
    keys: frozenset[str] = frozenset()
    weight = None
    if head_vars and rng.random() < 0.6:
        key_count = rng.randint(0, len(head_vars))
        keys = frozenset(rng.sample(head_vars, key_count))
        body_has_weight = any(
            isinstance(term, Var) and term.name == "P"
            for atom in body
            for term in atom.terms
        )
        if body_has_weight and rng.random() < 0.5:
            weight = "P"
    return Rule(head, body, key_variables=keys, weight_variable=weight)


def random_program(rng: RngLike = None, max_rules: int = 4) -> tuple[Program, Database]:
    """A random safe probabilistic-datalog program with its EDB.

    Retries rule generation until safety validation passes, so the
    returned program always type-checks.

    Examples
    --------
    >>> program, edb = random_program(rng=7)
    >>> program.validate_all() if hasattr(program, "validate_all") else None
    >>> len(program) >= 2
    True
    """
    generator = make_rng(rng)
    edb = random_edb(generator)

    rules: list[Rule] = [
        # deterministic seed facts: both IDB predicates are always
        # defined (bodies may mention them freely) and never empty
        Rule(Atom("p", (Const(generator.choice(DOMAIN)),)), ()),
        Rule(
            Atom(
                "q",
                (Const(generator.choice(DOMAIN)), Const(generator.choice(DOMAIN))),
            ),
            (),
        ),
    ]
    attempts = 0
    while len(rules) < 1 + generator.randint(2, max_rules) and attempts < 200:
        attempts += 1
        candidate = _random_rule(generator)
        try:
            candidate.validate()
        except DatalogError:
            continue
        rules.append(candidate)
    return Program(rules), edb
