"""The paper's literal example instances.

These are the concrete relations and graphs printed in the paper, kept
verbatim so the tests and benchmarks can cite them: Table 2 (the
basketball players), the Example 3.3 / 3.6 two-successor graph, and the
Example 3.9 evaluation instance.
"""

from __future__ import annotations

from fractions import Fraction

from repro.relational.relation import Relation
from repro.workloads.graphs import WeightedGraph

#: Table 2 of the paper: (Player, Team, Belief).
BASKETBALL_COLUMNS = ("Player", "Team", "Belief")
BASKETBALL_ROWS = (
    ("Bryant", "LA Lakers", 17),
    ("Bryant", "NY Knicks", 3),
    ("Iverson", "Philadelphia 76ers", 8),
    ("Iverson", "Memphis Grizzlies", 7),
)


def basketball_table() -> Relation:
    """The Table 2 relation of Example 2.2."""
    return Relation(BASKETBALL_COLUMNS, BASKETBALL_ROWS)


#: Exact world probabilities of repair-key_{Player@Belief}(Table 2):
#: the four team combinations and their product probabilities.
BASKETBALL_WORLD_PROBABILITIES = {
    ("LA Lakers", "Philadelphia 76ers"): Fraction(17, 20) * Fraction(8, 15),
    ("LA Lakers", "Memphis Grizzlies"): Fraction(17, 20) * Fraction(7, 15),
    ("NY Knicks", "Philadelphia 76ers"): Fraction(3, 20) * Fraction(8, 15),
    ("NY Knicks", "Memphis Grizzlies"): Fraction(3, 20) * Fraction(7, 15),
}


def example_36_graph() -> WeightedGraph:
    """E = {(a, b, 0.5), (a, c, 0.5)} of Examples 3.3 / 3.6 — the
    two-successor instance where Pr[b ∈ C] is 1/2 with the guarded
    encoding and 1 with the unguarded one.  Successor nodes get
    self-loops so walks over the graph stay defined."""
    return WeightedGraph(
        nodes=("a", "b", "c"),
        edges=(
            ("a", "b", Fraction(1, 2)),
            ("a", "c", Fraction(1, 2)),
            ("b", "b", 1),
            ("c", "c", 1),
        ),
    )


def example_39_edb() -> Relation:
    """E = {(v, w, 0.5), (v, u, 0.5)} of Example 3.9 (binary edges with
    an explicit uniform weight column)."""
    return Relation(
        ("I", "J", "P"),
        [("v", "w", Fraction(1, 2)), ("v", "u", Fraction(1, 2))],
    )
