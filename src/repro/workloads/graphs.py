"""Weighted-graph workloads.

The paper's running examples (random walk, PageRank, reachability) all
operate on a directed graph with probability-annotated edges, stored as
a ternary relation ``E(I, J, P)`` (Example 3.3).  This module provides
the graph value type, conversions to relations and Markov chains, and a
family of generators with controlled structure: fast-mixing (complete),
slow-mixing (cycle, barbell), layered DAGs (for reachability), and
random graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Sequence

from repro.errors import ReproError
from repro.markov.chain import MarkovChain, chain_from_edges
from repro.probability.rng import RngLike, make_rng
from repro.relational.relation import Relation

Node = Any
Edge = tuple[Node, Node, Fraction]


class GraphError(ReproError):
    """An ill-formed workload graph."""


@dataclass(frozen=True)
class WeightedGraph:
    """A directed graph with positive edge weights.

    Weights are interpreted as *relative* transition weights: the random
    walk normalises them per source node (exactly what
    ``repair-key_{I@P}`` does in Example 3.3), so they need not sum
    to 1.
    """

    nodes: tuple[Node, ...]
    edges: tuple[Edge, ...]

    def __init__(self, nodes: Iterable[Node], edges: Iterable[tuple[Node, Node, Any]]):
        node_tuple = tuple(nodes)
        node_set = set(node_tuple)
        if len(node_set) != len(node_tuple):
            raise GraphError("duplicate nodes")
        normalised = []
        for source, target, weight in edges:
            if source not in node_set or target not in node_set:
                raise GraphError(f"edge ({source!r}, {target!r}) uses unknown nodes")
            fraction = Fraction(weight)
            if fraction <= 0:
                raise GraphError(f"edge weight must be positive, got {weight!r}")
            normalised.append((source, target, fraction))
        object.__setattr__(self, "nodes", node_tuple)
        object.__setattr__(self, "edges", tuple(normalised))

    # -- views ----------------------------------------------------------------

    def out_edges(self, node: Node) -> list[Edge]:
        """Outgoing edges of one node."""
        return [e for e in self.edges if e[0] == node]

    def sinks(self) -> list[Node]:
        """Nodes with no outgoing edge (a random walk gets stuck there)."""
        sources = {source for source, _target, _weight in self.edges}
        return [node for node in self.nodes if node not in sources]

    def edge_relation(self, columns: Sequence[str] = ("I", "J", "P")) -> Relation:
        """The ``E(I, J, P)`` relation of Example 3.3."""
        return Relation(columns, [(s, t, w) for s, t, w in self.edges])

    def to_markov_chain(self) -> MarkovChain[Node]:
        """The random-walk chain (per-node weight normalisation).

        Raises :class:`GraphError` when some node has no outgoing edge.
        """
        stuck = self.sinks()
        if stuck:
            raise GraphError(
                f"nodes {stuck!r} have no outgoing edges; the walk is undefined"
            )
        return chain_from_edges(self.edges)

    def __repr__(self) -> str:
        return f"WeightedGraph({len(self.nodes)} nodes, {len(self.edges)} edges)"


# -- generators ------------------------------------------------------------------


def _names(count: int) -> list[str]:
    return [f"n{i}" for i in range(count)]


def complete_graph(size: int, self_loops: bool = True) -> WeightedGraph:
    """The complete directed graph with uniform weights — fast mixing."""
    if size < 2:
        raise GraphError("complete graph needs at least 2 nodes")
    nodes = _names(size)
    edges = [
        (u, v, 1)
        for u in nodes
        for v in nodes
        if self_loops or u != v
    ]
    return WeightedGraph(nodes, edges)


def cycle_graph(size: int, laziness: Fraction = Fraction(1, 2)) -> WeightedGraph:
    """A lazy directed cycle — mixing time Θ(size²) at fixed laziness.

    Each node stays put with weight ``laziness`` and advances with the
    complement; the self-loop makes the chain aperiodic.
    """
    if size < 2:
        raise GraphError("cycle needs at least 2 nodes")
    if not 0 < laziness < 1:
        raise GraphError("laziness must lie strictly between 0 and 1")
    nodes = _names(size)
    edges = []
    for index, node in enumerate(nodes):
        edges.append((node, node, laziness))
        edges.append((node, nodes[(index + 1) % size], 1 - laziness))
    return WeightedGraph(nodes, edges)


def barbell_graph(side: int) -> WeightedGraph:
    """Two complete ``side``-cliques joined by a single bridge edge —
    the classical slow-mixing bottleneck family."""
    if side < 2:
        raise GraphError("barbell sides need at least 2 nodes")
    left = [f"l{i}" for i in range(side)]
    right = [f"r{i}" for i in range(side)]
    edges: list[tuple[str, str, int]] = []
    for clique in (left, right):
        edges.extend((u, v, 1) for u in clique for v in clique)
    edges.append((left[-1], right[0], 1))
    edges.append((right[0], left[-1], 1))
    return WeightedGraph(left + right, edges)


def chain_graph(size: int) -> WeightedGraph:
    """A reflecting path: each inner node steps left/right uniformly;
    the endpoints bounce back (with a self-loop for aperiodicity)."""
    if size < 2:
        raise GraphError("chain needs at least 2 nodes")
    nodes = _names(size)
    edges = []
    for index, node in enumerate(nodes):
        if index > 0:
            edges.append((node, nodes[index - 1], 1))
        if index + 1 < size:
            edges.append((node, nodes[index + 1], 1))
    edges.append((nodes[0], nodes[0], 1))
    return WeightedGraph(nodes, edges)


def layered_dag(
    layers: int,
    width: int,
    rng: RngLike = None,
    edge_probability: float = 0.7,
) -> WeightedGraph:
    """A layered DAG with random forward edges plus an absorbing sink.

    Every node of layer i points to a random non-empty subset of layer
    i+1 with random weights; the last layer and any otherwise-stuck node
    point to the absorbing ``sink``.  Good reachability workload: the
    walk always terminates at the sink, and each node is reached with a
    non-trivial probability.
    """
    if layers < 1 or width < 1:
        raise GraphError("layered DAG needs positive layers and width")
    generator = make_rng(rng)
    grid = [[f"v{layer}_{pos}" for pos in range(width)] for layer in range(layers)]
    nodes = [node for layer in grid for node in layer] + ["sink"]
    edges: list[tuple[str, str, int]] = []
    for layer_index in range(layers - 1):
        for node in grid[layer_index]:
            targets = [
                target
                for target in grid[layer_index + 1]
                if generator.random() < edge_probability
            ]
            if not targets:
                targets = [generator.choice(grid[layer_index + 1])]
            for target in targets:
                edges.append((node, target, generator.randint(1, 4)))
    for node in grid[layers - 1]:
        edges.append((node, "sink", 1))
    edges.append(("sink", "sink", 1))
    return WeightedGraph(nodes, edges)


def erdos_renyi(
    size: int,
    edge_probability: float,
    rng: RngLike = None,
    weighted: bool = True,
) -> WeightedGraph:
    """A directed G(n, p) with a cycle backbone so every node has an
    outgoing edge and the walk is irreducible."""
    if size < 2:
        raise GraphError("random graph needs at least 2 nodes")
    generator = make_rng(rng)
    nodes = _names(size)
    edge_set: dict[tuple[str, str], int] = {}
    for index, node in enumerate(nodes):
        edge_set[(node, nodes[(index + 1) % size])] = (
            generator.randint(1, 4) if weighted else 1
        )
    for u in nodes:
        for v in nodes:
            if u != v and generator.random() < edge_probability:
                edge_set.setdefault(
                    (u, v), generator.randint(1, 4) if weighted else 1
                )
    edges = [(u, v, w) for (u, v), w in edge_set.items()]
    return WeightedGraph(nodes, edges)


def star_graph(leaves: int, laziness: Fraction = Fraction(1, 2)) -> WeightedGraph:
    """A hub with ``leaves`` spokes; all walks bounce hub ↔ leaf.

    The hub self-loop (weight ``laziness`` of its mass) keeps the walk
    aperiodic; leaves always return to the hub.
    """
    if leaves < 1:
        raise GraphError("star needs at least one leaf")
    if not 0 < laziness < 1:
        raise GraphError("laziness must lie strictly between 0 and 1")
    hub = "hub"
    nodes = [hub] + [f"leaf{i}" for i in range(leaves)]
    hub_total = Fraction(1)
    edges: list[tuple[str, str, Fraction]] = [
        (hub, hub, laziness * hub_total)
    ]
    spoke_weight = (1 - laziness) * hub_total / leaves
    for i in range(leaves):
        leaf = f"leaf{i}"
        edges.append((hub, leaf, spoke_weight))
        edges.append((leaf, hub, Fraction(1)))
    return WeightedGraph(nodes, edges)


def grid_graph(rows: int, columns: int) -> WeightedGraph:
    """A lazy king-less grid: each cell steps to its 4-neighbours
    uniformly, with a self-loop for aperiodicity."""
    if rows < 1 or columns < 1:
        raise GraphError("grid needs positive dimensions")
    if rows * columns < 2:
        raise GraphError("grid needs at least two cells")
    nodes = [f"g{r}_{c}" for r in range(rows) for c in range(columns)]
    edges: list[tuple[str, str, int]] = []
    for r in range(rows):
        for c in range(columns):
            node = f"g{r}_{c}"
            edges.append((node, node, 1))
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < columns:
                    edges.append((node, f"g{nr}_{nc}", 1))
    return WeightedGraph(nodes, edges)


def random_ergodic_chain(size: int, rng: RngLike = None) -> "MarkovChain":
    """A random irreducible, aperiodic Markov chain on ``size`` states.

    A lazy-cycle backbone guarantees ergodicity; random extra edges
    with random weights provide variety.  Used by mixing-time and
    stationary-distribution experiments that want chains rather than
    graphs.
    """
    if size < 2:
        raise GraphError("chain needs at least 2 states")
    generator = make_rng(rng)
    edges: list[tuple[int, int, int]] = []
    for state in range(size):
        edges.append((state, state, generator.randint(1, 3)))
        edges.append((state, (state + 1) % size, generator.randint(1, 3)))
        for _ in range(generator.randint(0, 2)):
            edges.append((state, generator.randrange(size), generator.randint(1, 3)))
    return chain_from_edges(edges)


def two_component_graph(component_size: int, components: int = 2) -> WeightedGraph:
    """Several disjoint lazy cycles — the partitioning (Section 5.1)
    workload: classes are the components."""
    if components < 1:
        raise GraphError("need at least one component")
    nodes: list[str] = []
    edges: list[tuple[str, str, Fraction]] = []
    for c in range(components):
        part = cycle_graph(component_size)
        renamed = {node: f"g{c}_{node}" for node in part.nodes}
        nodes.extend(renamed.values())
        edges.extend(
            (renamed[s], renamed[t], w) for s, t, w in part.edges
        )
    return WeightedGraph(nodes, edges)
