"""Synthetic workload generators and the paper's literal example
instances: weighted graphs, query builders for Examples 3.3–3.9,
Bayesian networks (Example 3.10), and Table 2."""

from repro.workloads.bayesnets import (
    BayesError,
    BayesianNetwork,
    random_network,
    sprinkler_network,
)
from repro.workloads.graphs import (
    GraphError,
    WeightedGraph,
    barbell_graph,
    chain_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    layered_dag,
    random_ergodic_chain,
    star_graph,
    two_component_graph,
)
from repro.workloads.gibbs import (
    gibbs_chain,
    gibbs_marginal_estimate,
    gibbs_step,
)
from repro.workloads.paper_examples import (
    BASKETBALL_WORLD_PROBABILITIES,
    basketball_table,
    example_36_graph,
    example_39_edb,
)
from repro.workloads.queries import (
    pagerank_query,
    random_walk_query,
    reachability_program,
    reachability_query,
    unguarded_reachability_query,
)

__all__ = [
    "BASKETBALL_WORLD_PROBABILITIES",
    "BayesError",
    "BayesianNetwork",
    "GraphError",
    "WeightedGraph",
    "barbell_graph",
    "basketball_table",
    "chain_graph",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "example_36_graph",
    "example_39_edb",
    "gibbs_chain",
    "gibbs_marginal_estimate",
    "gibbs_step",
    "grid_graph",
    "layered_dag",
    "pagerank_query",
    "random_ergodic_chain",
    "random_network",
    "random_walk_query",
    "reachability_program",
    "reachability_query",
    "sprinkler_network",
    "star_graph",
    "two_component_graph",
    "unguarded_reachability_query",
]
