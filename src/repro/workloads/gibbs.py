"""Gibbs sampling over Bayesian networks — the paper's MCMC motivation.

The introduction argues that declarative Markov-chain languages would
let MCMC applications be programmed at a higher level of abstraction.
This module builds the classical *random-scan Gibbs sampler* for a
Boolean Bayesian network as an explicit chain over complete valuations
— states are full assignments, one step resamples a uniformly chosen
node from its conditional given the Markov blanket — and runs it
through the same machinery as the query languages: ergodicity checks,
exact stationary distributions, mixing times, Theorem 5.6-style
burn-in sampling.

The invariant (verified exactly in the tests): the Gibbs chain's
stationary distribution **is** the network's joint distribution,
provided every CPT entry is strictly inside (0, 1) (zero entries can
disconnect the state graph).

A note on declarativity: expressing the Gibbs *conditional* as a
repair-key weight would require multiplying probabilities inside a
query, an arithmetic capability the paper's algebra (and therefore this
reproduction's) deliberately lacks — its Example 3.10 sidesteps the
issue by chaining one repair-key per CPT row.  The sampler is therefore
built directly on the Markov substrate; the induced chain is the same
object a declarative front-end would denote.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.errors import ReproError
from repro.markov.chain import MarkovChain
from repro.probability.distribution import Distribution
from repro.workloads.bayesnets import BayesianNetwork

#: A chain state: the complete valuation as a sorted tuple of
#: (node, value) pairs (hashable, order-canonical).
Valuation = tuple[tuple[str, int], ...]


def as_state(valuation: Mapping[str, int]) -> Valuation:
    """Canonicalise a valuation mapping into a chain state."""
    return tuple(sorted(valuation.items()))


def as_mapping(state: Valuation) -> dict[str, int]:
    """The inverse of :func:`as_state`."""
    return dict(state)


def _require_positive_cpts(network: BayesianNetwork) -> None:
    for node in network.nodes:
        for probability in network.cpts[node].values():
            if not 0 < probability < 1:
                raise ReproError(
                    "Gibbs sampling needs CPT entries strictly inside (0, 1); "
                    f"node {node!r} violates this (the chain could be reducible)"
                )


def conditional_probability(
    network: BayesianNetwork, valuation: Mapping[str, int], node: str
) -> Fraction:
    """Pr[node = 1 | all other variables] under the network.

    Proportional to Pr[node = 1 | parents] times the children's CPT
    factors — the Markov-blanket conditional that one Gibbs step
    resamples from.
    """
    weights = {}
    for value in (0, 1):
        probe = dict(valuation)
        probe[node] = value
        weight = Fraction(1)
        # own factor
        parent_values = tuple(probe[p] for p in network.parents.get(node, ()))
        p_one = network.cpts[node][parent_values]
        weight *= p_one if value == 1 else 1 - p_one
        # children factors
        for child in network.nodes:
            if node not in network.parents.get(child, ()):
                continue
            child_parents = tuple(probe[p] for p in network.parents[child])
            p_child_one = network.cpts[child][child_parents]
            weight *= p_child_one if probe[child] == 1 else 1 - p_child_one
        weights[value] = weight
    total = weights[0] + weights[1]
    if total == 0:
        raise ReproError(
            f"conditional of {node!r} is undefined (zero total weight)"
        )
    return weights[1] / total


def gibbs_chain(network: BayesianNetwork) -> MarkovChain[Valuation]:
    """The random-scan Gibbs chain over all 2ⁿ complete valuations.

    One step: pick a node uniformly, resample it from its
    Markov-blanket conditional.  Exact rational transition
    probabilities; exponential state count (this is the *explicit*
    chain used to verify the sampler — simulation via
    :func:`gibbs_step` never materialises it).
    """
    _require_positive_cpts(network)
    import itertools

    n = len(network.nodes)
    pick = Fraction(1, n)
    transitions: dict[Valuation, Distribution[Valuation]] = {}
    for bits in itertools.product((0, 1), repeat=n):
        valuation = dict(zip(network.nodes, bits))
        state = as_state(valuation)
        weights: dict[Valuation, Fraction] = {}
        for node in network.nodes:
            p_one = conditional_probability(network, valuation, node)
            for value, probability in ((1, p_one), (0, 1 - p_one)):
                successor = dict(valuation)
                successor[node] = value
                key = as_state(successor)
                weights[key] = weights.get(key, Fraction(0)) + pick * probability
        transitions[state] = Distribution(weights, normalise=False)
    return MarkovChain(transitions)


def gibbs_step(
    network: BayesianNetwork, valuation: dict[str, int], rng
) -> dict[str, int]:
    """One simulated Gibbs transition (polynomial; no chain build)."""
    node = network.nodes[rng.randrange(len(network.nodes))]
    p_one = float(conditional_probability(network, valuation, node))
    updated = dict(valuation)
    updated[node] = 1 if rng.random() < p_one else 0
    return updated


def gibbs_marginal_estimate(
    network: BayesianNetwork,
    conditions: Mapping[str, int],
    samples: int,
    burn_in: int,
    rng,
    thinning: int = 1,
) -> float:
    """Estimate Pr[⋀ conditions] with a burned-in, thinned Gibbs run.

    One long chain: ``burn_in`` steps discarded, then every
    ``thinning``-th state contributes one sample until ``samples``
    are collected.
    """
    if samples < 1 or burn_in < 0 or thinning < 1:
        raise ReproError("need samples ≥ 1, burn_in ≥ 0, thinning ≥ 1")
    _require_positive_cpts(network)
    valuation = network.sample(rng)
    for _ in range(burn_in):
        valuation = gibbs_step(network, valuation, rng)
    hits = 0
    collected = 0
    while collected < samples:
        for _ in range(thinning):
            valuation = gibbs_step(network, valuation, rng)
        collected += 1
        if all(valuation[node] == value for node, value in conditions.items()):
            hits += 1
    return hits / samples


def joint_distribution(network: BayesianNetwork) -> Distribution[Valuation]:
    """The network's exact joint, keyed like the Gibbs chain's states."""
    import itertools

    weights = {}
    for bits in itertools.product((0, 1), repeat=len(network.nodes)):
        valuation = dict(zip(network.nodes, bits))
        probability = network.joint_probability(valuation)
        if probability > 0:
            weights[as_state(valuation)] = probability
    return Distribution(weights, normalise=False)
