"""Bayesian-network workloads (Example 3.10).

A :class:`BayesianNetwork` over Boolean random variables, with bounded
in-degree K, translates to the paper's K+1-rule probabilistic datalog
program: relations ``s<k>`` list each node's parents and ``t<k>`` hold
the conditional probability tables; a single IDB predicate ``v(N, V)``
carries one complete valuation per possible world, built root-to-leaf
by repair-key choices keyed on the node name.

Includes a seeded random-network generator and the classic "sprinkler"
network as a fixed instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.datalog.ast import Program
from repro.datalog.parser import parse_program
from repro.errors import ReproError
from repro.probability.rng import RngLike, make_rng
from repro.relational.database import Database
from repro.relational.relation import Relation


class BayesError(ReproError):
    """An ill-formed Bayesian network."""


@dataclass(frozen=True)
class BayesianNetwork:
    """A Boolean Bayesian network.

    Attributes
    ----------
    nodes:
        Node names in a topological order (parents precede children).
    parents:
        Node → its (ordered) parent tuple.
    cpts:
        Node → mapping from a tuple of parent values (0/1, in the
        ``parents`` order) to Pr[node = 1 | parents]; probabilities are
        exact :class:`Fraction` values.
    """

    nodes: tuple[str, ...]
    parents: Mapping[str, tuple[str, ...]]
    cpts: Mapping[str, Mapping[tuple[int, ...], Fraction]]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for node in self.nodes:
            for parent in self.parents.get(node, ()):
                if parent not in seen:
                    raise BayesError(
                        f"node {node!r} lists parent {parent!r} that does not "
                        "precede it (nodes must be topologically ordered)"
                    )
            table = self.cpts.get(node)
            if table is None:
                raise BayesError(f"node {node!r} has no CPT")
            arity = len(self.parents.get(node, ()))
            expected = set(itertools.product((0, 1), repeat=arity))
            if set(table) != expected:
                raise BayesError(
                    f"CPT of {node!r} must cover all {2**arity} parent "
                    "combinations"
                )
            for probability in table.values():
                if not 0 <= probability <= 1:
                    raise BayesError(f"CPT of {node!r} has probability outside [0,1]")
            seen.add(node)

    @property
    def max_in_degree(self) -> int:
        """The bound K of Example 3.10."""
        return max((len(self.parents.get(n, ())) for n in self.nodes), default=0)

    # -- exact semantics (the baseline for Example 3.10) -----------------------

    def joint_probability(self, valuation: Mapping[str, int]) -> Fraction:
        """Pr[X₁ = v₁ ∧ ... ∧ Xₙ = vₙ] for a complete valuation."""
        probability = Fraction(1)
        for node in self.nodes:
            parent_values = tuple(valuation[p] for p in self.parents.get(node, ()))
            p_one = self.cpts[node][parent_values]
            probability *= p_one if valuation[node] == 1 else 1 - p_one
        return probability

    def marginal_probability(self, conditions: Mapping[str, int]) -> Fraction:
        """Pr[⋀ node = value] by explicit enumeration (exponential)."""
        unknown = [n for n in conditions if n not in self.nodes]
        if unknown:
            raise BayesError(f"conditions mention unknown nodes {unknown!r}")
        total = Fraction(0)
        free = [n for n in self.nodes if n not in conditions]
        for bits in itertools.product((0, 1), repeat=len(free)):
            valuation = dict(conditions)
            valuation.update(zip(free, bits))
            total += self.joint_probability(valuation)
        return total

    def sample(self, rng: RngLike = None) -> dict[str, int]:
        """Ancestral sampling of one complete valuation."""
        generator = make_rng(rng)
        valuation: dict[str, int] = {}
        for node in self.nodes:
            parent_values = tuple(valuation[p] for p in self.parents.get(node, ()))
            p_one = float(self.cpts[node][parent_values])
            valuation[node] = 1 if generator.random() < p_one else 0
        return valuation

    # -- Example 3.10 translation ------------------------------------------------

    def to_datalog(
        self, conditions: Mapping[str, int] | None = None
    ) -> tuple[Program, Database]:
        """The Example 3.10 program and EDB for this network.

        One rule per in-degree k ≤ K::

            v(N0*, V0)@P :- t<k>(N0, V0, V1, ..., Vk, P),
                            s<k>(N0, N1, ..., Nk),
                            v(N1, V1), ..., v(Nk, Vk).

        With ``conditions`` given, the marginal-query rule
        ``q() :- v(x, vx), v(y, vy), ...`` is appended, so
        ``Pr[⋀ conditions]`` is the probability of the event
        ``() ∈ q``.
        """
        degrees = sorted(
            {len(self.parents.get(node, ())) for node in self.nodes}
        )
        rules = []
        for k in degrees:
            parent_vars = [f"N{i}" for i in range(1, k + 1)]
            value_vars = [f"V{i}" for i in range(1, k + 1)]
            t_args = ", ".join(["N0", "V0", *value_vars, "P"])
            s_args = ", ".join(["N0", *parent_vars])
            body = [f"t{k}({t_args})", f"s{k}({s_args})"]
            body += [f"v({n}, {v})" for n, v in zip(parent_vars, value_vars)]
            rules.append(f"v(N0*, V0)@P :- {', '.join(body)}.")
        if conditions is not None:
            if not conditions:
                raise BayesError("marginal query needs at least one condition")
            body = ", ".join(
                f"v('{node}', {value})" for node, value in sorted(conditions.items())
            )
            rules.append(f"q() :- {body}.")
        program = parse_program("\n".join(rules))

        relations: dict[str, Relation] = {}
        for k in degrees:
            s_rows = []
            t_rows = []
            for node in self.nodes:
                node_parents = self.parents.get(node, ())
                if len(node_parents) != k:
                    continue
                s_rows.append((node, *node_parents))
                for parent_values, p_one in self.cpts[node].items():
                    # repair-key requires strictly positive weights
                    # (Section 2.2), so impossible values are omitted.
                    if p_one > 0:
                        t_rows.append((node, 1, *parent_values, p_one))
                    if p_one < 1:
                        t_rows.append((node, 0, *parent_values, 1 - p_one))
            s_cols = tuple(f"n{i}" for i in range(k + 1))
            t_cols = ("n0", "v0", *[f"v{i}" for i in range(1, k + 1)], "p")
            relations[f"s{k}"] = Relation(s_cols, s_rows)
            relations[f"t{k}"] = Relation(t_cols, t_rows)
        return program, Database(relations)


def sprinkler_network() -> BayesianNetwork:
    """The classic rain / sprinkler / wet-grass network."""
    return BayesianNetwork(
        nodes=("rain", "sprinkler", "grass"),
        parents={"rain": (), "sprinkler": ("rain",), "grass": ("sprinkler", "rain")},
        cpts={
            "rain": {(): Fraction(1, 5)},
            "sprinkler": {(0,): Fraction(2, 5), (1,): Fraction(1, 100)},
            "grass": {
                (0, 0): Fraction(0),
                (0, 1): Fraction(4, 5),
                (1, 0): Fraction(9, 10),
                (1, 1): Fraction(99, 100),
            },
        },
    )


def random_network(
    num_nodes: int,
    max_in_degree: int = 2,
    rng: RngLike = None,
) -> BayesianNetwork:
    """A random Boolean network: each node picks up to ``max_in_degree``
    parents among its predecessors and random rational CPT entries."""
    if num_nodes < 1:
        raise BayesError("network needs at least one node")
    generator = make_rng(rng)
    nodes = tuple(f"b{i}" for i in range(num_nodes))
    parents: dict[str, tuple[str, ...]] = {}
    cpts: dict[str, dict[tuple[int, ...], Fraction]] = {}
    for index, node in enumerate(nodes):
        degree = generator.randint(0, min(max_in_degree, index))
        chosen = tuple(generator.sample(nodes[:index], degree)) if degree else ()
        parents[node] = chosen
        table = {}
        for bits in itertools.product((0, 1), repeat=degree):
            table[bits] = Fraction(generator.randint(1, 9), 10)
        cpts[node] = table
    return BayesianNetwork(nodes=nodes, parents=parents, cpts=cpts)
