"""Exact finite probability distributions over hashable outcomes.

:class:`Distribution` is the workhorse of every exact algorithm in this
library: possible-worlds sets of ``repair-key`` (Section 2.2), the
probabilistic databases Q(A) produced by probabilistic first-order
interpretations (Definition 3.1), and the transition rows of the Markov
chain over database states all *are* finite distributions.

Weights may be :class:`fractions.Fraction` (the default for all exact
code paths — probabilities stay exact rationals end-to-end) or floats.
Outcomes with equal value are merged and their weights summed, so a
distribution is a canonical mapping outcome → probability.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Any, Callable, Generic, Hashable, Iterable, Iterator, Mapping, TypeVar

from repro.errors import ProbabilityError

T = TypeVar("T", bound=Hashable)
U = TypeVar("U", bound=Hashable)

Numeric = Any  # Fraction | int | float

#: Tolerance used when checking float-weighted distributions for
#: normalisation.  Exact (Fraction) distributions are checked exactly.
FLOAT_TOLERANCE = 1e-9


def as_fraction(value: Numeric) -> Fraction:
    """Convert a numeric weight to an exact :class:`Fraction`.

    Floats convert to their exact binary value (so ``0.5`` becomes
    ``1/2`` exactly); ints and Fractions pass through.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ProbabilityError(f"weight must be finite, got {value!r}")
        return Fraction(value)
    raise ProbabilityError(f"cannot interpret {value!r} as a probability weight")


class Distribution(Generic[T]):
    """A finite probability distribution over hashable outcomes.

    Parameters
    ----------
    weights:
        Mapping (or iterable of pairs) from outcome to non-negative
        weight.  Outcomes of zero weight are dropped; duplicate outcomes
        are merged.
    normalise:
        When true (default), weights are divided by their sum.  When
        false, the weights must already sum to one (checked exactly for
        Fractions, up to :data:`FLOAT_TOLERANCE` for floats).

    Examples
    --------
    >>> d = Distribution({"a": Fraction(1, 2), "b": Fraction(1, 2)})
    >>> d.probability("a")
    Fraction(1, 2)
    >>> d.map(str.upper).probability("A")
    Fraction(1, 2)
    """

    __slots__ = ("_weights",)

    def __init__(
        self,
        weights: Mapping[T, Numeric] | Iterable[tuple[T, Numeric]],
        normalise: bool = True,
    ):
        items = weights.items() if isinstance(weights, Mapping) else weights
        merged: dict[T, Numeric] = {}
        for outcome, weight in items:
            if isinstance(weight, (int, Fraction)):
                pass
            elif isinstance(weight, float):
                if not math.isfinite(weight):
                    raise ProbabilityError(f"weight must be finite, got {weight!r}")
            else:
                raise ProbabilityError(f"invalid weight {weight!r} for {outcome!r}")
            if weight < 0:
                raise ProbabilityError(f"negative weight {weight!r} for {outcome!r}")
            if weight == 0:
                continue
            if outcome in merged:
                merged[outcome] = merged[outcome] + weight
            else:
                merged[outcome] = weight
        if not merged:
            raise ProbabilityError("distribution must have at least one outcome of positive weight")
        total = sum(merged.values())
        if normalise:
            if any(isinstance(w, float) for w in merged.values()):
                merged = {o: w / total for o, w in merged.items()}
            else:
                ftotal = as_fraction(total)
                merged = {o: as_fraction(w) / ftotal for o, w in merged.items()}
        else:
            if any(isinstance(w, float) for w in merged.values()):
                if abs(total - 1.0) > FLOAT_TOLERANCE:
                    raise ProbabilityError(f"weights sum to {total!r}, expected 1")
            elif as_fraction(total) != 1:
                raise ProbabilityError(f"weights sum to {total!r}, expected 1")
        self._weights: dict[T, Numeric] = merged

    # -- constructors ------------------------------------------------------

    @classmethod
    def _trusted(cls, weights: dict) -> "Distribution[T]":
        """Internal: wrap an already-validated, already-normalised weight
        dict without re-checking.  Only for combinator outputs whose
        invariants hold by construction (map/bind/product of valid
        distributions)."""
        instance = cls.__new__(cls)
        instance._weights = weights
        return instance

    @classmethod
    def point(cls, outcome: T) -> "Distribution[T]":
        """The Dirac distribution on a single outcome."""
        return cls._trusted({outcome: Fraction(1)})

    @classmethod
    def uniform(cls, outcomes: Iterable[T]) -> "Distribution[T]":
        """The uniform distribution over the given (distinct) outcomes."""
        items = list(outcomes)
        if not items:
            raise ProbabilityError("uniform distribution over empty set")
        weight = Fraction(1, len(items))
        merged: dict[T, Fraction] = {}
        for item in items:
            merged[item] = merged.get(item, Fraction(0)) + weight
        return cls(merged, normalise=False)

    @classmethod
    def bernoulli(cls, p: Numeric, true_outcome: T = True, false_outcome: T = False) -> "Distribution[T]":
        """A two-outcome distribution: ``true_outcome`` w.p. ``p``."""
        frac = as_fraction(p)
        if not 0 <= frac <= 1:
            raise ProbabilityError(f"Bernoulli parameter {p!r} outside [0, 1]")
        return cls({true_outcome: frac, false_outcome: 1 - frac})

    # -- mapping / container protocol ---------------------------------------

    def probability(self, outcome: T) -> Numeric:
        """P(outcome); zero for outcomes outside the support."""
        return self._weights.get(outcome, Fraction(0))

    def __getitem__(self, outcome: T) -> Numeric:
        return self.probability(outcome)

    def __contains__(self, outcome: T) -> bool:
        return outcome in self._weights

    def __iter__(self) -> Iterator[T]:
        return iter(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def items(self) -> Iterable[tuple[T, Numeric]]:
        """(outcome, probability) pairs."""
        return self._weights.items()

    def support(self) -> frozenset[T]:
        """The outcomes of positive probability."""
        return frozenset(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:
        return hash(frozenset(self._weights.items()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{o!r}: {w}" for o, w in list(self._weights.items())[:4])
        suffix = ", ..." if len(self._weights) > 4 else ""
        return f"Distribution({{{parts}{suffix}}})"

    # -- combinators ---------------------------------------------------------

    def map(self, func: Callable[[T], U]) -> "Distribution[U]":
        """Pushforward distribution of ``func``; colliding images merge."""
        out: dict[U, Numeric] = {}
        for outcome, weight in self._weights.items():
            image = func(outcome)
            if image in out:
                out[image] = out[image] + weight
            else:
                out[image] = weight
        return Distribution._trusted(out)

    def product(self, other: "Distribution[U]") -> "Distribution[tuple[T, U]]":
        """Joint distribution of two *independent* distributions."""
        out: dict[tuple[T, U], Numeric] = {}
        for a, wa in self._weights.items():
            for b, wb in other._weights.items():
                out[(a, b)] = wa * wb
        return Distribution._trusted(out)

    def bind(self, func: Callable[[T], "Distribution[U]"]) -> "Distribution[U]":
        """Monadic bind: draw ``x ~ self`` then ``y ~ func(x)``.

        This is exactly one probabilistic computation step followed by
        another, as in the world-sequence semantics of Definition 3.2.
        """
        out: dict[U, Numeric] = {}
        for outcome, weight in self._weights.items():
            for image, iw in func(outcome).items():
                contribution = weight * iw
                if image in out:
                    out[image] = out[image] + contribution
                else:
                    out[image] = contribution
        return Distribution._trusted(out)

    def condition(self, event: Callable[[T], bool]) -> "Distribution[T]":
        """The conditional distribution given ``event`` (renormalised)."""
        kept = {o: w for o, w in self._weights.items() if event(o)}
        if not kept:
            raise ProbabilityError("conditioning on an event of probability zero")
        return Distribution(kept)

    def expectation(self, func: Callable[[T], Numeric]) -> Numeric:
        """E[func(X)]."""
        return sum(w * func(o) for o, w in self._weights.items())

    def probability_of(self, event: Callable[[T], bool]) -> Numeric:
        """P(event)."""
        total: Numeric = Fraction(0)
        for outcome, weight in self._weights.items():
            if event(outcome):
                total = total + weight
        return total

    def total_variation(self, other: "Distribution[T]") -> Numeric:
        """Total-variation distance (1/2) Σ |p(x) − q(x)|."""
        keys = set(self._weights) | set(other._weights)
        gap = sum(abs(self.probability(k) - other.probability(k)) for k in keys)
        if isinstance(gap, int):
            gap = Fraction(gap)
        return gap / 2

    # -- sampling -------------------------------------------------------------

    def sample(self, rng: random.Random) -> T:
        """Draw one outcome using the supplied seeded RNG."""
        # random.choices is float-based; an explicit inverse-CDF walk over
        # exact weights keeps tiny probabilities honest.
        outcomes = list(self._weights)
        weights = [float(self._weights[o]) for o in outcomes]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        for outcome, weight in zip(outcomes, weights):
            acc += weight
            if pick < acc:
                return outcome
        return outcomes[-1]

    def sample_many(self, rng: random.Random, count: int) -> list[T]:
        """Draw ``count`` independent outcomes."""
        return [self.sample(rng) for _ in range(count)]

    def as_floats(self) -> dict[T, float]:
        """The distribution as a plain float dict."""
        return {o: float(w) for o, w in self._weights.items()}


def product_distribution(parts: Iterable[Distribution[Any]]) -> Distribution[tuple[Any, ...]]:
    """Joint distribution of several independent distributions.

    The outcome is the tuple of per-part outcomes, in input order.
    An empty input yields the point distribution on the empty tuple.
    """
    result: Distribution[tuple[Any, ...]] = Distribution.point(())
    for part in parts:
        result = result.bind(
            lambda prefix, part=part: part.map(lambda x, prefix=prefix: prefix + (x,))
        )
    return result
