"""Probability substrate: exact finite distributions, Chernoff planning,
seeded RNG helpers."""

from repro.probability.chernoff import (
    hoeffding_epsilon,
    hoeffding_failure_probability,
    hoeffding_sample_count,
    majority_vote_failure_probability,
    majority_vote_runs,
    paper_sample_count,
)
from repro.probability.distribution import (
    Distribution,
    as_fraction,
    product_distribution,
)
from repro.probability.rng import RngLike, make_rng, spawn

__all__ = [
    "Distribution",
    "RngLike",
    "as_fraction",
    "hoeffding_epsilon",
    "hoeffding_failure_probability",
    "hoeffding_sample_count",
    "majority_vote_failure_probability",
    "majority_vote_runs",
    "make_rng",
    "paper_sample_count",
    "product_distribution",
    "spawn",
]
