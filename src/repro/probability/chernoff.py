"""Chernoff–Hoeffding sample-size planning.

Section 2.1 and Theorem 4.3 of the paper use two standard Chernoff-bound
arguments:

* the (additive) Hoeffding bound on an empirical mean of i.i.d. Boolean
  samples, giving ``Pr(|p − p̂| ≥ ε) ≤ 2·exp(−2·ε²·m)``, which yields the
  sample count ``m ≥ ln(1/δ)/(4ε²)`` quoted in the proof of Theorem 4.3
  (the paper's own, slightly conservative, constant is kept so measured
  numbers line up with the paper); and

* the BPP error-amplification argument (majority vote over independent
  runs), whose required run count is logarithmic in the inverse target
  error Γ (end of the proof of Theorem 4.1).

Both calculations are implemented here so the evaluators and benchmarks
share a single audited source of sample counts.
"""

from __future__ import annotations

import math

from repro.errors import ProbabilityError


def _check_epsilon_delta(epsilon: float, delta: float) -> None:
    if not 0 < epsilon < 1:
        raise ProbabilityError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    if not 0 < delta < 1:
        raise ProbabilityError(f"delta must lie in (0, 1), got {delta!r}")


def paper_sample_count(epsilon: float, delta: float) -> int:
    """Sample count from the proof of Theorem 4.3: ``m ≥ ln(1/δ)/(4ε²)``.

    With ``m`` samples, the empirical mean p̂ of a Boolean variable
    satisfies ``Pr(|p̂ − p| ≥ ε) ≤ δ`` under the paper's bound
    ``2·e^{−2ε²m} ≤ e^{ln(δ)/2}``.  Note the paper states the guarantee
    as holding "with probability at least δ"; throughout this library
    ``delta`` is the *failure* probability (the conventional reading).
    """
    _check_epsilon_delta(epsilon, delta)
    return max(1, math.ceil(math.log(1.0 / delta) / (4.0 * epsilon * epsilon)))


def hoeffding_sample_count(epsilon: float, delta: float) -> int:
    """The tight two-sided Hoeffding count ``m ≥ ln(2/δ)/(2ε²)``.

    Guarantees ``Pr(|p̂ − p| ≥ ε) ≤ 2·exp(−2ε²m) ≤ δ``.
    """
    _check_epsilon_delta(epsilon, delta)
    return max(1, math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))


def hoeffding_failure_probability(epsilon: float, samples: int) -> float:
    """Upper bound ``2·exp(−2ε²m)`` on ``Pr(|p̂ − p| ≥ ε)``."""
    if samples < 1:
        raise ProbabilityError(f"sample count must be positive, got {samples!r}")
    if not 0 < epsilon < 1:
        raise ProbabilityError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    return min(1.0, 2.0 * math.exp(-2.0 * epsilon * epsilon * samples))


def hoeffding_epsilon(samples: int, delta: float) -> float:
    """The additive accuracy achievable with ``m`` samples at failure
    probability ``δ``: ``ε = sqrt(ln(2/δ) / (2m))``."""
    if samples < 1:
        raise ProbabilityError(f"sample count must be positive, got {samples!r}")
    if not 0 < delta < 1:
        raise ProbabilityError(f"delta must lie in (0, 1), got {delta!r}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * samples))


def majority_vote_runs(per_run_error: float, target_error: float) -> int:
    """Number of independent runs N so that a majority vote over runs,
    each individually wrong with probability ``per_run_error`` < 1/2,
    is wrong with probability at most ``target_error``.

    This is the amplification step closing the proof of Theorem 4.1:
    with β = 1 − 1/(2(1−δ)), the failure probability is bounded by
    ``exp(−N(1−δ)β²/2)``, so ``N > 2·ln(1/Γ) / ((1−δ)·β²)`` suffices.
    """
    if not 0 < per_run_error < 0.5:
        raise ProbabilityError(
            f"per-run error must lie in (0, 0.5) for amplification, got {per_run_error!r}"
        )
    if not 0 < target_error < 1:
        raise ProbabilityError(f"target error must lie in (0, 1), got {target_error!r}")
    success = 1.0 - per_run_error
    beta = 1.0 - 1.0 / (2.0 * success)
    runs = 2.0 * math.log(1.0 / target_error) / (success * beta * beta)
    n = max(1, math.ceil(runs))
    # Majority vote needs an odd run count to avoid ties.
    return n if n % 2 == 1 else n + 1


def majority_vote_failure_probability(per_run_error: float, runs: int) -> float:
    """Chernoff upper bound on the majority vote being wrong after
    ``runs`` independent runs with the given per-run error."""
    if runs < 1:
        raise ProbabilityError(f"run count must be positive, got {runs!r}")
    if not 0 < per_run_error < 0.5:
        raise ProbabilityError(
            f"per-run error must lie in (0, 0.5), got {per_run_error!r}"
        )
    success = 1.0 - per_run_error
    beta = 1.0 - 1.0 / (2.0 * success)
    return min(1.0, math.exp(-runs * success * beta * beta / 2.0))
