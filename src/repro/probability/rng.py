"""Seeded random-number-generator helpers.

Every sampling entry point in this library takes either a seed or a
``random.Random`` instance, never the global RNG, so that all
experiments are reproducible run-to-run.  :func:`make_rng` normalises
the accepted spellings.
"""

from __future__ import annotations

import random
from typing import Union

RngLike = Union[random.Random, int, None]


def make_rng(rng: RngLike = None) -> random.Random:
    """Normalise a seed / RNG / None argument to a ``random.Random``.

    * ``random.Random`` instances pass through unchanged (shared state).
    * Integers seed a fresh generator deterministically.
    * ``None`` creates a fresh OS-seeded generator (non-reproducible;
      fine for exploratory use, avoided by tests and benchmarks).
    """
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a task fans out into parallel sub-tasks that must not
    interleave draws from the parent stream.
    """
    return random.Random(rng.getrandbits(64))
