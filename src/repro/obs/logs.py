"""Structured stdlib logging for the service with job/run correlation.

One logger hierarchy rooted at ``repro.service``; scheduler, session,
and HTTP layers log through child loggers (``repro.service.scheduler``
etc.).  Every record carries a ``job_id`` correlation field — filled by
passing ``extra={"job_id": ...}`` or by wrapping a logger with
:func:`job_logger` — defaulting to ``-`` so the format string never
KeyErrors on uncorrelated records.

``repro serve --log-level`` calls :func:`configure_service_logging`;
library code only ever *gets* loggers and never installs handlers, so
embedders keep control of output.
"""

from __future__ import annotations

import logging

#: The root of the service logger hierarchy.
SERVICE_LOGGER = "repro.service"

#: One line per record: time, level, logger, job correlation, message.
LOG_FORMAT = (
    "%(asctime)s %(levelname)-7s %(name)s [job=%(job_id)s] %(message)s"
)


class _JobIdFilter(logging.Filter):
    """Default the ``job_id`` field so the formatter always finds it."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "job_id"):
            record.job_id = "-"
        return True


def get_logger(component: str | None = None) -> logging.Logger:
    """The service logger, or a component child (``scheduler``, ``http``…)."""
    name = SERVICE_LOGGER if not component else f"{SERVICE_LOGGER}.{component}"
    return logging.getLogger(name)


def job_logger(logger: logging.Logger, job_id: str) -> logging.LoggerAdapter:
    """Bind a job id to every record logged through the adapter."""
    return logging.LoggerAdapter(logger, {"job_id": job_id})


def configure_service_logging(
    level: str | int = "info", stream=None
) -> logging.Logger:
    """Install a stderr handler on ``repro.service`` (idempotent).

    Called by ``repro serve``; re-configuring replaces the previous
    handler rather than stacking duplicates.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = parsed
    logger = logging.getLogger(SERVICE_LOGGER)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.addFilter(_JobIdFilter())
    logger.addHandler(handler)
    return logger
