"""End-to-end query profiling: worker span buffers, resource ledgers,
and EXPLAIN-ANALYZE-style rendering.

PR 5's tracer stops at process boundaries: spans recorded inside the
supervisor's warm workers (trial chunks, pooled partition components)
never reach the parent's sink, so a slow partitioned query cannot be
attributed to a component, rung, or operator.  This module closes the
gap in three pieces:

* :class:`SpanBuffer` — a :class:`~repro.obs.trace.Tracer` writing to a
  bounded in-memory sink whose records are plain picklable dicts.
  Workers attach one to their :class:`~repro.perf.parallel.WorkerContext`
  and ship ``drain()`` back on the results queue inside the ordinary
  task payload.
* :func:`stitch_spans` — the parent-side merge: worker-local span ids
  are remapped through the parent tracer's id counter, roots are
  re-parented under the dispatching span, and every stitched span is
  labelled with ``worker_id`` / ``spawn_generation`` so the trace shows
  *which* worker (and which restart generation) did the work.
* :class:`ResourceLedger` — a per-run structured ledger on
  :class:`~repro.runtime.context.RunReport` aggregating what was
  previously scattered across result details: states explored,
  transition-cache hits/misses/evictions, kernel ``OpTimings`` per
  operator, sparse-solver iterations and certificate bounds, retries,
  shed decisions, and per-component (ε, δ) — keyed by
  phase/component/rung.

Rendering lives here too: :func:`profile_payload` builds the JSON shape
served at ``GET /v1/jobs/<id>/profile``; :func:`render_profile` prints
the plan → component → rung → phase → kernel-op cost tree with
exclusive wall/CPU, and :func:`folded_stacks` emits folded-stack lines
(``frame;frame;frame <microseconds>``) consumable by standard
flamegraph tooling.

Exclusive-time convention: a span's exclusive wall is its inclusive
wall minus the inclusive wall of its *local* children.  Spans stitched
from worker processes ran concurrently with their parent, so they are
excluded from the subtraction — that is what lets the tree's per-phase
totals reconcile with the (exclusive) ``RunReport.phases`` accounting.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.trace import MemorySink, NullTracer, Tracer

#: Version of the profile payload shape served over HTTP.
PROFILE_VERSION = 1

#: Default cap on step events recorded inside one worker task.
WORKER_MAX_EVENTS = 512

#: Cap on span records shipped back from one worker task; past it the
#: tail is dropped (observability is best-effort, results are not).
WORKER_MAX_SPANS = 512

#: Span attributes surfaced in tree labels, in render order.
_LABEL_ATTRS = (
    "component", "rung", "method", "mode", "worker_id", "spawn_generation",
    "states", "iterations", "workers",
)


class SpanBuffer(Tracer):
    """A tracer recording into a bounded, picklable in-memory buffer.

    Created inside worker processes (one per task chunk); the parent
    never sees the buffer object itself — only the plain record dicts
    returned by :meth:`drain`, shipped back on the results queue.
    """

    def __init__(self, max_events: int = WORKER_MAX_EVENTS):
        super().__init__(MemorySink(), max_events=max_events)

    def drain(self, max_spans: int = WORKER_MAX_SPANS) -> list[dict]:
        """Detach and return recorded span/event records (bounded)."""
        sink = self.sink
        assert isinstance(sink, MemorySink)
        records = [r for r in sink.records if r.get("type") in ("span", "event")]
        sink.records = []
        if len(records) > max_spans:
            records = records[:max_spans]
        return records


def worker_tracer(task: Mapping[str, Any]) -> SpanBuffer | NullTracer:
    """The tracer a worker entry point should evaluate under.

    Tasks carry ``profile: True`` when the dispatching context is
    traced; anything else gets the free null tracer.
    """
    from repro.obs.trace import NULL_TRACER

    if task.get("profile"):
        return SpanBuffer()
    return NULL_TRACER


def drain_worker_spans(tracer: Any) -> list[dict] | None:
    """``tracer.drain()`` if it is a :class:`SpanBuffer`, else ``None``."""
    if isinstance(tracer, SpanBuffer):
        records = tracer.drain()
        return records or None
    return None


def stitch_spans(
    tracer: Any,
    records: Iterable[Mapping[str, Any]] | None,
    *,
    worker_id: int | None = None,
    spawn_generation: int | None = None,
    parent_id: int | None = None,
) -> int:
    """Merge worker-recorded spans into the parent tracer.

    Worker-local span ids are remapped through the parent's id counter
    (ids must be unique per trace), roots are re-parented under
    ``parent_id`` (default: the span currently open on the parent — the
    dispatching span), and ``worker_id`` / ``spawn_generation`` labels
    are stamped onto every stitched span's ``attrs``.  Returns the
    number of records stitched; a disabled tracer stitches nothing.
    """
    if records is None or not getattr(tracer, "enabled", False):
        return 0
    records = list(records)
    if not records:
        return 0
    if parent_id is None:
        parent_id = tracer.current_span_id
    id_map: dict[int, int] = {}
    for record in records:
        if record.get("type") == "span":
            id_map[record["span"]] = next(tracer._ids)
    stitched = 0
    for record in records:
        kind = record.get("type")
        old_parent = record.get("parent")
        if old_parent is not None and old_parent in id_map:
            new_parent: int | None = id_map[old_parent]
        else:
            new_parent = parent_id
        if kind == "span":
            attrs = dict(record.get("attrs") or {})
            if worker_id is not None:
                attrs["worker_id"] = worker_id
            if spawn_generation is not None:
                attrs["spawn_generation"] = spawn_generation
            tracer._emit({
                "type": "span",
                "name": record["name"],
                "span": id_map[record["span"]],
                "parent": new_parent,
                "wall_s": record["wall_s"],
                "cpu_s": record["cpu_s"],
                "attrs": attrs,
            })
            stitched += 1
        elif kind == "event":
            if tracer.events_emitted >= tracer.max_events:
                tracer.events_dropped += 1
                continue
            tracer.events_emitted += 1
            fields = {
                key: value for key, value in record.items()
                if key not in ("type", "parent", "v")
            }
            fields["parent"] = new_parent
            if worker_id is not None:
                fields.setdefault("worker_id", worker_id)
            tracer._emit({"type": "event", **fields})
            stitched += 1
    return stitched


# ---------------------------------------------------------------------------
# Resource ledger
# ---------------------------------------------------------------------------


class ResourceLedger:
    """Structured per-run resource accounting, keyed by phase/component/rung.

    Rows are created/merged by :meth:`add`; repeated adds under the same
    key sum their counters (so per-chunk retries accumulate).  Kernel
    operator timings are a separate table keyed by operator name.  The
    whole ledger serialises deterministically (sorted keys) via
    :meth:`as_dict`, which is what rides on ``RunReport.ledger`` and the
    job payload.
    """

    __slots__ = ("_rows", "_kernel_ops")

    def __init__(self) -> None:
        self._rows: dict[tuple[str, str, str], dict[str, float]] = {}
        self._kernel_ops: dict[str, dict[str, float]] = {}

    @property
    def empty(self) -> bool:
        return not self._rows and not self._kernel_ops

    def add(
        self,
        phase: str,
        *,
        component: str = "",
        rung: str = "",
        **counters: float,
    ) -> None:
        """Accumulate numeric counters under (phase, component, rung)."""
        key = (phase, component, rung)
        row = self._rows.get(key)
        if row is None:
            row = self._rows[key] = {}
        for name, value in counters.items():
            if value is None:
                continue
            row[name] = row.get(name, 0.0) + float(value)

    def record_kernel_ops(
        self, snapshot: Mapping[str, Mapping[str, float]]
    ) -> None:
        """Accumulate a kernel ``OpTimings.snapshot()`` delta."""
        for op, timing in snapshot.items():
            entry = self._kernel_ops.get(op)
            if entry is None:
                entry = self._kernel_ops[op] = {"calls": 0.0, "seconds": 0.0}
            entry["calls"] += float(timing.get("calls", 0))
            entry["seconds"] += float(timing.get("seconds", 0.0))

    def merge_dict(self, payload: Mapping[str, Any] | None) -> None:
        """Absorb a serialised ledger (e.g. shipped back from a worker)."""
        if not payload:
            return
        for row in payload.get("rows", ()):
            self.add(
                row.get("phase", ""),
                component=row.get("component") or "",
                rung=row.get("rung") or "",
                **row.get("counters", {}),
            )
        self.record_kernel_ops(payload.get("kernel_ops", {}))

    def as_dict(
        self, *, cache: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Deterministic JSON shape; optionally folds cache stats in
        as a ``transition-cache`` row (computed fresh, not stored, so
        calling twice cannot double-count)."""
        rows = dict(self._rows)
        if cache:
            stats = {
                name: float(value)
                for name, value in cache.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
            if stats:
                key = ("transition-cache", "", "")
                merged = dict(rows.get(key, {}))
                for name, value in stats.items():
                    merged[name] = merged.get(name, 0.0) + value
                rows[key] = merged
        return {
            "rows": [
                {
                    "phase": phase,
                    "component": component or None,
                    "rung": rung or None,
                    "counters": {
                        name: row[name] for name in sorted(row)
                    },
                }
                for (phase, component, rung), row in sorted(rows.items())
            ],
            "kernel_ops": {
                op: {
                    "calls": self._kernel_ops[op]["calls"],
                    "seconds": self._kernel_ops[op]["seconds"],
                }
                for op in sorted(self._kernel_ops)
            },
        }


# ---------------------------------------------------------------------------
# Span tree + renderers
# ---------------------------------------------------------------------------


def _is_worker_span(node: Mapping[str, Any]) -> bool:
    return "worker_id" in (node.get("attrs") or {})


def _worker_of(node: Mapping[str, Any]) -> Any:
    return (node.get("attrs") or {}).get("worker_id")


def span_tree(records: Iterable[Mapping[str, Any]]) -> list[dict]:
    """Build the span forest (roots in open order) from trace records.

    Each node carries inclusive ``wall_s``/``cpu_s`` plus exclusive
    ``excl_wall_s``/``excl_cpu_s`` — inclusive minus *local* children
    (worker-stitched children ran concurrently in another process and
    are not subtracted).
    """
    nodes: dict[int, dict] = {}
    order: list[int] = []
    for record in records:
        if record.get("type") != "span":
            continue
        nodes[record["span"]] = {
            "name": record["name"],
            "span": record["span"],
            "parent": record.get("parent"),
            "wall_s": record["wall_s"],
            "cpu_s": record["cpu_s"],
            "attrs": dict(record.get("attrs") or {}),
            "children": [],
        }
        order.append(record["span"])
    roots: list[dict] = []
    # Spans open in id order (ids are allocated at open time), so
    # sorting by id restores chronological structure regardless of the
    # child-closes-first emission order.
    for span_id in sorted(order):
        node = nodes[span_id]
        parent = node["parent"]
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        # A child is "local" when it ran in the same process as its
        # parent — the process boundary is where the worker id changes
        # (a stitched subtree's *internal* spans share their parent's
        # worker id and are subtracted normally).
        local = [
            child for child in node["children"]
            if _worker_of(child) == _worker_of(node)
        ]
        local_wall = sum(child["wall_s"] for child in local)
        local_cpu = sum(child["cpu_s"] for child in local)
        node["excl_wall_s"] = max(0.0, node["wall_s"] - local_wall)
        node["excl_cpu_s"] = max(0.0, node["cpu_s"] - local_cpu)
    for node in nodes.values():
        node.pop("parent", None)
    return roots


def phase_totals(tree: Iterable[Mapping[str, Any]]) -> dict[str, float]:
    """Exclusive wall seconds per span name, over local spans only.

    Comparable (within timer noise) to the exclusive accounting in
    ``RunReport.phases`` — the reconciliation the acceptance gate
    checks.  Worker-stitched spans are reported under their own names
    but measured in another process, so they are skipped here.
    """
    totals: dict[str, float] = {}

    def visit(node: Mapping[str, Any]) -> None:
        if not _is_worker_span(node):
            name = node["name"]
            totals[name] = totals.get(name, 0.0) + node["excl_wall_s"]
        for child in node["children"]:
            visit(child)

    for root in tree:
        visit(root)
    return totals


def _frame_label(node: Mapping[str, Any]) -> str:
    """A folded-stack frame name: span name + discriminating attrs.

    Folded format reserves ``;`` (stack separator) and space (count
    separator), so both are scrubbed.
    """
    attrs = node.get("attrs") or {}
    parts = [
        f"{key}={attrs[key]}" for key in ("component", "rung", "worker_id")
        if key in attrs
    ]
    label = node["name"] + (f"[{','.join(parts)}]" if parts else "")
    return label.replace(";", ":").replace(" ", "_")


def folded_stacks(records: Iterable[Mapping[str, Any]]) -> list[str]:
    """Folded-stack lines (``a;b;c <microseconds>``) from trace records.

    One line per span, weighted by *exclusive* wall in integer
    microseconds — the format ``flamegraph.pl`` / speedscope consume.
    """
    lines: list[str] = []

    def visit(node: Mapping[str, Any], stack: list[str]) -> None:
        stack = stack + [_frame_label(node)]
        micros = int(round(node["excl_wall_s"] * 1e6))
        lines.append(";".join(stack) + f" {micros}")
        for child in node["children"]:
            visit(child, stack)

    for root in span_tree(records):
        visit(root, [])
    return lines


def profile_payload(
    records: list[dict] | None,
    report: Mapping[str, Any] | None,
    *,
    job_id: str | None = None,
) -> dict[str, Any]:
    """The JSON profile served at ``GET /v1/jobs/<id>/profile`` and
    rendered by ``repro profile``."""
    tree = span_tree(records or [])
    return {
        "profile_version": PROFILE_VERSION,
        "job_id": job_id,
        "phases": dict((report or {}).get("phases") or {}),
        "ledger": (report or {}).get("ledger"),
        "spans": tree,
        "span_phase_totals": {
            name: round(value, 9)
            for name, value in sorted(phase_totals(tree).items())
        },
        "folded": folded_stacks(records or []),
    }


def profile_from_trace(records: list[dict]) -> dict[str, Any]:
    """Profile payload for a local trace file: the ``RunReport`` rides
    on the closing ``run`` record."""
    report: Mapping[str, Any] | None = None
    job_id = None
    for record in records:
        if record.get("type") == "run":
            report = record.get("report") or None
            job_id = record.get("job_id")
    return profile_payload(records, report, job_id=job_id)


def _format_node(node: Mapping[str, Any]) -> str:
    attrs = node.get("attrs") or {}
    extras = " ".join(
        f"{key}={attrs[key]}" for key in _LABEL_ATTRS if key in attrs
    )
    timing = (
        f"wall {node['wall_s'] * 1000:9.3f} ms  "
        f"excl {node['excl_wall_s'] * 1000:9.3f} ms  "
        f"cpu {node['excl_cpu_s'] * 1000:9.3f} ms"
    )
    return f"{node['name']}  {timing}" + (f"  [{extras}]" if extras else "")


def render_profile(payload: Mapping[str, Any]) -> str:
    """The human-facing ``repro profile`` text: span tree, per-phase
    reconciliation against the report, and the resource ledger."""
    lines: list[str] = []
    title = "query profile"
    if payload.get("job_id"):
        title += f" — job {payload['job_id']}"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append("")

    lines.append("span tree (inclusive wall / exclusive wall / exclusive cpu)")
    lines.append("-----------------------------------------------------------")
    spans = payload.get("spans") or []
    if spans:
        def visit(node: Mapping[str, Any], prefix: str, is_last: bool,
                  is_root: bool) -> None:
            if is_root:
                lines.append(_format_node(node))
                child_prefix = ""
            else:
                branch = "└─ " if is_last else "├─ "
                lines.append(prefix + branch + _format_node(node))
                child_prefix = prefix + ("   " if is_last else "│  ")
            children = node.get("children") or []
            for index, child in enumerate(children):
                visit(child, child_prefix, index == len(children) - 1, False)

        for root in spans:
            visit(root, "", True, True)
    else:
        lines.append("(no spans recorded)")
    lines.append("")

    phases = payload.get("phases") or {}
    span_totals = payload.get("span_phase_totals") or {}
    if phases:
        lines.append("phase reconciliation (report exclusive vs trace exclusive)")
        lines.append("----------------------------------------------------------")
        width = max(len(name) for name in phases)
        for name in sorted(phases):
            timing = phases[name] or {}
            report_ms = float(timing.get("wall_seconds", 0.0)) * 1000
            trace_ms = float(span_totals.get(name, 0.0)) * 1000
            count = timing.get("count", 0)
            lines.append(
                f"{name:<{width}}  report {report_ms:9.3f} ms  "
                f"trace {trace_ms:9.3f} ms  x{count}"
            )
        lines.append("")

    ledger = payload.get("ledger") or {}
    rows = ledger.get("rows") or []
    kernel_ops = ledger.get("kernel_ops") or {}
    if rows or kernel_ops:
        lines.append("resource ledger")
        lines.append("---------------")
        for row in rows:
            key = row.get("phase", "?")
            if row.get("component"):
                key += f" component={row['component']}"
            if row.get("rung"):
                key += f" rung={row['rung']}"
            counters = row.get("counters") or {}
            rendered = ", ".join(
                f"{name}={_render_number(counters[name])}"
                for name in sorted(counters)
            )
            lines.append(f"{key}: {rendered}")
        if kernel_ops:
            lines.append("kernel ops:")
            for op in sorted(kernel_ops):
                timing = kernel_ops[op]
                lines.append(
                    f"  {op:<12} calls {int(timing.get('calls', 0)):>8d}  "
                    f"wall {float(timing.get('seconds', 0.0)) * 1000:9.3f} ms"
                )
        lines.append("")

    return "\n".join(lines).rstrip("\n") + "\n"


def _render_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def render_flame(records: list[dict]) -> str:
    """Folded-stack text (one frame-stack + weight per line)."""
    return "\n".join(folded_stacks(records)) + "\n"
