"""One thread-safe metrics registry for every layer of the engine.

Before this module, instrumentation lived on two disjoint islands:
``ServiceMetrics`` hand-rolled its counters and latency histograms, and
each cache/pool/scheduler exposed ad-hoc ``stats()`` dicts that the
snapshot code sampled *without holding the owners' locks*.  The
:class:`MetricsRegistry` unifies them:

* **Counters** — monotonically increasing, optionally labelled
  (``jobs_finished_total{semantics="forever", outcome="ok"}``).
* **Gauges** — set directly, *or* backed by a callback so the value is
  read under the owner's lock at scrape time (the fix for the
  mid-eviction inconsistent-size bug).
* **Histograms** — fixed cumulative buckets plus sum/count, with
  quantile estimation for the JSON view.

Two renderings of the same registry: :meth:`MetricsRegistry.as_dict`
(JSON, served at ``/v1/metrics``) and
:meth:`MetricsRegistry.render_prometheus` (text exposition format
0.0.4, served at ``/v1/metrics?format=prometheus``).

All mutation goes through per-family locks, so samplers, scheduler
workers and HTTP threads can publish concurrently; a scrape sees each
family atomically.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Iterable, Mapping

#: Latency buckets (seconds) shared by queue-wait and run histograms.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


class Counter:
    """A monotone counter family; label-less use goes through ``inc()``."""

    kind = "counter"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def collect(self) -> list[tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge:
    """A settable value family; may instead be backed by a callback.

    Callback gauges are the lock-correctness mechanism: the owner
    registers ``lambda: self._sample_under_lock()`` and the registry
    calls it only at scrape time, so sizes and hit counts are read in
    one consistent critical section rather than sampled field-by-field.

    A callback may return a plain number (one unlabelled series) or a
    ``Mapping`` of label value → number, rendered as one series per key
    under the ``fn_label`` label name — how per-worker gauges track a
    worker set that changes as the supervisor restarts processes.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 fn: Callable[[], float | Mapping[str, float]] | None = None,
                 fn_label: str = "key"):
        self.name = name
        self.help = help
        self._fn = fn
        self._fn_label = fn_label
        self._lock = threading.Lock()
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        if self._fn is not None:
            result = self._fn()
            if isinstance(result, Mapping):
                if labels:
                    return float(
                        result.get(str(labels.get(self._fn_label)), 0.0)
                    )
                return float(sum(result.values()))
            return float(result)
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def collect(self) -> list[tuple[_LabelKey, float]]:
        if self._fn is not None:
            result = self._fn()
            if isinstance(result, Mapping):
                return sorted(
                    (((self._fn_label, str(key)),), float(value))
                    for key, value in result.items()
                )
            return [((), float(result))]
        with self._lock:
            return sorted(self._values.items())


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count", "observations")

    def __init__(self, n_buckets: int, keep_observations: bool):
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0
        self.observations: list[float] | None = (
            [] if keep_observations else None
        )


class Histogram:
    """Fixed-bucket cumulative histogram family.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the rest.  ``keep_observations`` (bounded by
    ``max_observations``) retains raw values for exact small-sample
    quantiles in the JSON view — the service's latency histograms keep
    them, high-volume engine histograms need not.
    """

    kind = "histogram"

    #: Raw observations kept per series when ``keep_observations``.
    max_observations = 10_000

    def __init__(self, name: str, help: str,
                 buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                 keep_observations: bool = True):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        self._keep = keep_observations
        self._lock = threading.Lock()
        self._series: dict[_LabelKey, _HistogramSeries] = {}

    def _series_for(self, key: _LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets), self._keep)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series_for(key)
            series.total += value
            series.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
                    break
            if (
                series.observations is not None
                and len(series.observations) < self.max_observations
            ):
                series.observations.append(value)

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series else 0.0

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Quantile estimate; ``None`` for an empty histogram.

        Exact (nearest-rank over retained observations) when raw values
        are kept and none overflowed; otherwise interpolated from the
        cumulative buckets, clamped to the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return None
            obs = series.observations
            if obs is not None and len(obs) == series.count:
                ordered = sorted(obs)
                rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
                return ordered[rank]
            target = q * series.count
            cumulative = 0
            for index, bound in enumerate(self.buckets):
                cumulative += series.bucket_counts[index]
                if cumulative >= target:
                    return bound
            return self.buckets[-1]

    def as_dict(self, **labels: Any) -> dict:
        """The JSON shape of one series (``ServiceMetrics``-compatible)."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets), False)
            count = series.count
            total = series.total
            cumulative: list[int] = []
            running = 0
            for bucket_count in series.bucket_counts:
                running += bucket_count
                cumulative.append(running)
        result = {
            "count": count,
            "sum": round(total, 9),
            "mean": round(total / count, 9) if count else None,
            "buckets": {
                _format_value(bound): cum
                for bound, cum in zip(self.buckets, cumulative)
            },
        }
        result["buckets"]["+Inf"] = count
        for name, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            value = self.quantile(q, **labels)
            result[name] = round(value, 9) if value is not None else None
        return result

    def collect(self) -> list[tuple[_LabelKey, tuple[list[int], float, int]]]:
        """``(labels, (cumulative_bucket_counts, sum, count))`` per series."""
        with self._lock:
            out = []
            for key, series in sorted(self._series.items()):
                cumulative: list[int] = []
                running = 0
                for bucket_count in series.bucket_counts:
                    running += bucket_count
                    cumulative.append(running)
                out.append((key, (cumulative, series.total, series.count)))
            return out

    def label_keys(self) -> list[_LabelKey]:
        with self._lock:
            return sorted(self._series)


class MetricsRegistry:
    """The process-wide family registry.

    Families are created idempotently — asking for an existing name
    returns the same object (help text must agree, kind must agree) —
    so distant layers can share a family without plumbing references.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    def _register(self, family: Counter | Gauge | Histogram) -> Any:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family):
                    raise ValueError(
                        f"metric {family.name} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "",
              fn: Callable[[], float | Mapping[str, float]] | None = None,
              fn_label: str = "key") -> Gauge:
        gauge = self._register(Gauge(name, help, fn=fn, fn_label=fn_label))
        if fn is not None and gauge._fn is None:
            gauge._fn = fn
            gauge._fn_label = fn_label
        return gauge

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                  keep_observations: bool = True) -> Histogram:
        return self._register(
            Histogram(name, help, buckets=buckets,
                      keep_observations=keep_observations)
        )

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[Counter | Gauge | Histogram]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- renderings -----------------------------------------------------

    def as_dict(self) -> dict:
        """Nested-JSON view: ``{name: value | {label_repr: value}}``."""
        out: dict[str, Any] = {}
        for family in self.families():
            if isinstance(family, Histogram):
                out[family.name] = {
                    _format_labels(key) or "": family.as_dict(**dict(key))
                    for key in family.label_keys()
                } or {}
                continue
            series = family.collect()
            if len(series) == 1 and series[0][0] == ():
                out[family.name] = series[0][1]
            else:
                out[family.name] = {
                    _format_labels(key): value for key, value in series
                }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, Histogram):
                for key, (cumulative, total, count) in family.collect():
                    for bound, cum in zip(family.buckets, cumulative):
                        le = (("le", _format_value(bound)),)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_format_labels(key, le)} {cum}"
                        )
                    inf = (("le", "+Inf"),)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(key, inf)} {count}"
                    )
                    lines.append(
                        f"{family.name}_sum{_format_labels(key)} "
                        f"{_format_value(total)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(key)} {count}"
                    )
                continue
            series = family.collect()
            if not series:
                series = [((), 0.0)]
            for key, value in series:
                lines.append(
                    f"{family.name}{_format_labels(key)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"
