"""Trace introspection: load a JSONL trace, summarise it for humans.

Backs the ``repro report <trace.jsonl>`` subcommand and the tests'
round-trip checks.  A :class:`TraceSummary` aggregates

* the **phase breakdown** — wall/CPU totals per span name, with call
  counts (phase accounting in ``RunContext`` is exclusive, so the
  phases partition run wall-clock);
* the **convergence curve** of the Cesàro / probability estimate —
  rebuilt from per-sample ``sample`` events (``index``, ``positive``)
  that the Thm 5.6 / Thm 4.3 samplers emit, the same running ratio an
  operator would watch to judge mixing;
* the run envelope — outcome, method, estimate, spent budget, events
  emitted/dropped — from the closing ``run`` record.

Rendering is plain text with an ASCII sparkline for the curve: readable
over SSH, diffable in CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.schema import validate_trace_file, validate_trace_lines

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


@dataclass
class PhaseStat:
    """Aggregated timings for one span name."""

    name: str
    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0


@dataclass
class TraceSummary:
    """Everything ``repro report`` prints, as data."""

    records: list[dict] = field(default_factory=list)
    phases: dict[str, PhaseStat] = field(default_factory=dict)
    events_by_name: dict[str, int] = field(default_factory=dict)
    curve: list[tuple[int, float]] = field(default_factory=list)
    run: dict[str, Any] | None = None

    @property
    def total_wall_seconds(self) -> float:
        return sum(stat.wall_seconds for stat in self.phases.values())

    def as_dict(self) -> dict:
        """JSON shape for ``repro report --json``."""
        return {
            "phases": {
                name: {
                    "count": stat.count,
                    "wall_seconds": round(stat.wall_seconds, 9),
                    "cpu_seconds": round(stat.cpu_seconds, 9),
                }
                for name, stat in self.phases.items()
            },
            "total_wall_seconds": round(self.total_wall_seconds, 9),
            "events": dict(self.events_by_name),
            "curve": [[index, value] for index, value in self.curve],
            "run": self.run,
        }


def summarize(records: list[dict]) -> TraceSummary:
    """Fold validated trace records into a :class:`TraceSummary`."""
    summary = TraceSummary(records=records)
    for record in records:
        kind = record["type"]
        if kind == "span":
            stat = summary.phases.get(record["name"])
            if stat is None:
                stat = summary.phases[record["name"]] = PhaseStat(record["name"])
            stat.count += 1
            stat.wall_seconds += record["wall_s"]
            stat.cpu_seconds += record["cpu_s"]
        elif kind == "event":
            name = record["name"]
            summary.events_by_name[name] = summary.events_by_name.get(name, 0) + 1
            if name == "sample" and "index" in record and "positive" in record:
                index = record["index"]
                if index > 0:
                    summary.curve.append(
                        (index, record["positive"] / index)
                    )
        elif kind == "run":
            summary.run = record
    return summary


def load_summary(path: str) -> TraceSummary:
    """Validate + summarise one trace file."""
    return summarize(validate_trace_file(path))


def summarize_lines(lines: list[str]) -> TraceSummary:
    """Validate + summarise in-memory JSONL lines (the service trace)."""
    return summarize(validate_trace_lines(lines))


def _sparkline(values: list[float], width: int = 60) -> str:
    if not values:
        return ""
    if len(values) > width:
        # Down-sample by striding so the curve keeps its shape.
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_GLYPHS[0] * len(values)
    return "".join(
        _SPARK_GLYPHS[
            min(len(_SPARK_GLYPHS) - 1,
                int((v - low) / span * len(_SPARK_GLYPHS)))
        ]
        for v in values
    )


def render_summary(summary: TraceSummary) -> str:
    """The human-facing report text."""
    lines: list[str] = []
    run = summary.run or {}
    report = run.get("report") or {}

    lines.append("trace report")
    lines.append("============")
    if report:
        lines.append(f"outcome:  {report.get('outcome', '?')}")
        lines.append(f"method:   {report.get('method', '?')}")
    if run.get("estimate") is not None:
        lines.append(f"estimate: {run['estimate']}")
    spent = report.get("spent") or {}
    if spent:
        lines.append(
            "spent:    "
            + ", ".join(f"{key}={value}" for key, value in sorted(spent.items()))
        )
    lines.append("")

    lines.append("phase breakdown")
    lines.append("---------------")
    if summary.phases:
        total = summary.total_wall_seconds
        name_width = max(len(name) for name in summary.phases)
        ordered = sorted(
            summary.phases.values(), key=lambda s: s.wall_seconds, reverse=True
        )
        for stat in ordered:
            share = (stat.wall_seconds / total * 100) if total > 0 else 0.0
            lines.append(
                f"{stat.name:<{name_width}}  "
                f"wall {stat.wall_seconds * 1000:10.3f} ms  "
                f"cpu {stat.cpu_seconds * 1000:10.3f} ms  "
                f"x{stat.count:<5d} {share:5.1f}%"
            )
        lines.append(
            f"{'total':<{name_width}}  wall {total * 1000:10.3f} ms"
        )
    else:
        lines.append("(no spans recorded)")
    lines.append("")

    if summary.curve:
        lines.append("convergence (running estimate per sample)")
        lines.append("-----------------------------------------")
        values = [value for _, value in summary.curve]
        lines.append(_sparkline(values))
        first_i, first_v = summary.curve[0]
        last_i, last_v = summary.curve[-1]
        lines.append(
            f"sample {first_i}: {first_v:.6f}  →  sample {last_i}: {last_v:.6f}"
        )
        lines.append("")

    if summary.events_by_name:
        lines.append("events")
        lines.append("------")
        for name, count in sorted(summary.events_by_name.items()):
            lines.append(f"{name:<24} {count}")
        dropped = run.get("dropped_events", 0)
        if dropped:
            lines.append(f"(+ {dropped} events dropped past the cap)")
    return "\n".join(lines) + "\n"


def render_trace_file(path: str) -> str:
    """Load, validate and render one trace file."""
    return render_summary(load_summary(path))
