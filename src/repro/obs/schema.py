"""Validation for the versioned JSONL trace schema.

Pure-python (no jsonschema dependency): each record type has a table of
required fields with type predicates, plus structural rules — span and
event ``parent`` references must resolve to a span that appears in the
file, every trace opens with a ``start`` record, and at most one
closing ``run`` record exists.  Used by the CI observability-smoke job
and the round-trip tests; readers must tolerate *unknown* keys (the
schema's forward-compatibility contract) so validation only checks the
keys it knows.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.errors import ReproError
from repro.obs.trace import TRACE_SCHEMA_VERSION


class TraceSchemaError(ReproError, ValueError):
    """A trace record or file violates the schema.

    Both a :class:`~repro.errors.ReproError` (so the CLI maps it to a
    clean exit-2 diagnostic, never a traceback) and a ``ValueError``
    (the historical base, kept for callers that catch it)."""

    def __init__(self, message: str, line: int | None = None):
        prefix = f"line {line}: " if line is not None else ""
        details = {"line": line} if line is not None else {}
        super().__init__(prefix + message, details=details)
        self.line = line


_NUMBER = (int, float)

#: required-field tables per record type: name -> accepted types.
_RECORD_FIELDS: dict[str, dict[str, tuple[type, ...]]] = {
    "start": {"ts": _NUMBER},
    "span": {
        "name": (str,),
        "span": (int,),
        "parent": (int, type(None)),
        "wall_s": _NUMBER,
        "cpu_s": _NUMBER,
        "attrs": (dict,),
    },
    "event": {
        "name": (str,),
        "parent": (int, type(None)),
    },
    "run": {
        "ts": _NUMBER,
        "events": (int,),
        "dropped_events": (int,),
    },
}


def validate_record(record: Any, line: int | None = None) -> dict:
    """Check one parsed record; returns it, raises :class:`TraceSchemaError`."""
    if not isinstance(record, dict):
        raise TraceSchemaError(
            f"record must be a JSON object, got {type(record).__name__}", line
        )
    version = record.get("v")
    if not isinstance(version, int):
        raise TraceSchemaError("missing integer schema version 'v'", line)
    if version > TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"record schema version {version} is newer than supported "
            f"{TRACE_SCHEMA_VERSION}", line
        )
    kind = record.get("type")
    fields = _RECORD_FIELDS.get(kind)  # type: ignore[arg-type]
    if fields is None:
        raise TraceSchemaError(
            f"unknown record type {kind!r} "
            f"(expected one of {sorted(_RECORD_FIELDS)})", line
        )
    for field, types in fields.items():
        if field not in record:
            raise TraceSchemaError(f"{kind} record missing field {field!r}", line)
        if not isinstance(record[field], types):
            raise TraceSchemaError(
                f"{kind} record field {field!r} has type "
                f"{type(record[field]).__name__}", line
            )
    if kind == "span":
        if record["wall_s"] < 0 or record["cpu_s"] < 0:
            raise TraceSchemaError("span durations must be non-negative", line)
    return record


def validate_records(records: Iterable[tuple[int, Any]]) -> list[dict]:
    """Validate an ordered stream of ``(line_number, record)`` pairs."""
    validated: list[dict] = []
    span_ids: set[int] = set()
    pending_parents: list[tuple[int, int]] = []
    run_seen = False
    for line, record in records:
        record = validate_record(record, line)
        if not validated and record["type"] != "start":
            raise TraceSchemaError(
                f"trace must open with a 'start' record, got "
                f"{record['type']!r}", line
            )
        if record["type"] == "span":
            if record["span"] in span_ids:
                raise TraceSchemaError(
                    f"duplicate span id {record['span']}", line
                )
            span_ids.add(record["span"])
        if record["type"] in ("span", "event") and record["parent"] is not None:
            # Spans close child-before-parent, so a parent may legally
            # appear after its children; resolve references at the end.
            pending_parents.append((line, record["parent"]))
        if record["type"] == "run":
            if run_seen:
                raise TraceSchemaError("multiple 'run' records", line)
            run_seen = True
        validated.append(record)
    if not validated:
        raise TraceSchemaError(
            "trace is empty: no records found (was the run interrupted "
            "before the tracer wrote anything?)"
        )
    for line, parent in pending_parents:
        if parent not in span_ids:
            raise TraceSchemaError(
                f"parent span {parent} never appears in the trace", line
            )
    return validated


def validate_trace_records(records: Iterable[Any]) -> list[dict]:
    """Validate already-parsed records (e.g. a service job's in-memory
    trace); positions in the sequence stand in for line numbers."""
    return validate_records(enumerate(records, start=1))


def validate_trace_lines(lines: Iterable[str]) -> list[dict]:
    """Parse + validate JSONL text lines (blank lines are skipped)."""
    def parsed() -> Iterable[tuple[int, Any]]:
        for number, text in enumerate(lines, start=1):
            text = text.strip()
            if not text:
                continue
            try:
                yield number, json.loads(text)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(f"invalid JSON: {error}", number)
    return validate_records(parsed())


def validate_trace_file(path: str) -> list[dict]:
    """Validate one JSONL trace file; returns the parsed records."""
    with open(path, encoding="utf-8") as handle:
        return validate_trace_lines(handle)
