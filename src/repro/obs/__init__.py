"""Observability: tracing, unified metrics, run introspection.

A stdlib-only leaf package — :mod:`repro.core` imports it freely
without creating a cycle back through :mod:`repro.runtime` or
:mod:`repro.service`.  See ``docs/observability.md`` for the span
model, the metric-name table, and the trace-schema policy.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    TraceSummary,
    load_summary,
    render_summary,
    render_trace_file,
    summarize,
    summarize_lines,
)
from repro.obs.schema import (
    TraceSchemaError,
    validate_record,
    validate_trace_file,
    validate_trace_lines,
    validate_trace_records,
)
from repro.obs.trace import (
    DEFAULT_MAX_EVENTS,
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    NullTracer,
    Sink,
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSpan,
    phase_scope,
    tracer_of,
)

__all__ = [
    "Counter",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Sink",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "TraceSpan",
    "TraceSummary",
    "Tracer",
    "load_summary",
    "phase_scope",
    "render_summary",
    "render_trace_file",
    "summarize",
    "summarize_lines",
    "tracer_of",
    "validate_record",
    "validate_trace_file",
    "validate_trace_lines",
    "validate_trace_records",
]
