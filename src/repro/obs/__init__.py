"""Observability: tracing, unified metrics, run introspection.

A stdlib-only leaf package — :mod:`repro.core` imports it freely
without creating a cycle back through :mod:`repro.runtime` or
:mod:`repro.service`.  See ``docs/observability.md`` for the span
model, the metric-name table, and the trace-schema policy.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    PROFILE_VERSION,
    ResourceLedger,
    SpanBuffer,
    drain_worker_spans,
    folded_stacks,
    phase_totals,
    profile_from_trace,
    profile_payload,
    render_flame,
    render_profile,
    span_tree,
    stitch_spans,
    worker_tracer,
)
from repro.obs.report import (
    TraceSummary,
    load_summary,
    render_summary,
    render_trace_file,
    summarize,
    summarize_lines,
)
from repro.obs.schema import (
    TraceSchemaError,
    validate_record,
    validate_trace_file,
    validate_trace_lines,
    validate_trace_records,
)
from repro.obs.trace import (
    DEFAULT_MAX_EVENTS,
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    NullTracer,
    Sink,
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSpan,
    phase_scope,
    tracer_of,
)

__all__ = [
    "Counter",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_VERSION",
    "ResourceLedger",
    "Sink",
    "SpanBuffer",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "TraceSpan",
    "TraceSummary",
    "Tracer",
    "drain_worker_spans",
    "folded_stacks",
    "load_summary",
    "phase_scope",
    "phase_totals",
    "profile_from_trace",
    "profile_payload",
    "render_flame",
    "render_profile",
    "render_summary",
    "render_trace_file",
    "span_tree",
    "stitch_spans",
    "summarize",
    "summarize_lines",
    "tracer_of",
    "worker_tracer",
    "validate_record",
    "validate_trace_file",
    "validate_trace_lines",
    "validate_trace_records",
]
