"""Hierarchical evaluation tracing: spans, step events, JSONL emission.

The paper's algorithms are iterative stochastic processes — fixpoint
runs (Thm 4.3), chain construction and stationary solves (Prop 5.4 /
Thm 5.5), mixing-time sampling walks (Thm 5.6) — and a flat result
object hides where the time and state-space budget went.  A
:class:`Tracer` records

* **spans** — timed phases with parent/child structure (``parse`` →
  ``chain-build`` → ``solve`` / ``sample``), wall *and* CPU seconds;
* **step events** — bounded, cheap progress points inside a span
  (fixpoint iteration: tuples added; Markov walk: states discovered,
  frontier size, event hits; sampler: per-sample tallies; solver:
  elimination pivots).

Records are JSON-friendly dicts with a versioned schema (see
:mod:`repro.obs.schema`); sinks decide where they go — a JSONL file
(:class:`JsonlSink`, the CLI ``--trace`` path) or an in-memory ring
(:class:`MemorySink`, the service's per-job trace served by
``GET /v1/jobs/<id>/trace``).

Cost discipline: tracing must be free when off.  :data:`NULL_TRACER`
is a singleton whose methods are no-ops, and every instrumented hot
loop guards event emission with the plain attribute check
``if tracer.enabled:`` — one dictionary-free boolean load per
iteration, measured at < 2% overhead by ``benchmarks/run_benchmarks.py``.
Event volume is bounded per tracer (``max_events``); past the bound
events are counted but dropped, and the drop count is recorded on the
closing ``run`` record so truncation is never silent.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Callable, IO, Mapping

#: Version of the emitted trace schema.  Policy (see DESIGN.md): bump on
#: any backwards-incompatible change to record fields; readers accept
#: records with ``v`` <= their own version and must ignore unknown keys.
#: v2: spans stitched from worker processes (see
#: :mod:`repro.obs.profile`) carry ``worker_id`` / ``spawn_generation``
#: in ``attrs``, and the closing ``run`` record's report may embed a
#: resource ledger; v1 traces remain valid v2 traces.
TRACE_SCHEMA_VERSION = 2

#: Default cap on emitted (not merely counted) step events per tracer.
DEFAULT_MAX_EVENTS = 10_000


class Sink:
    """Where trace records go.  Subclasses implement :meth:`write`."""

    def write(self, record: Mapping[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources (default: nothing to do)."""


class MemorySink(Sink):
    """Collect records in a list (the per-job service trace)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))


class JsonlSink(Sink):
    """Write one JSON object per line to a file handle it owns."""

    def __init__(self, handle: IO[str], close_handle: bool = True):
        self._handle = handle
        self._close_handle = close_handle

    @classmethod
    def open(cls, path: str) -> "JsonlSink":
        return cls(open(path, "w", encoding="utf-8"))

    def write(self, record: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._close_handle:
            self._handle.close()


class TraceSpan:
    """One timed phase of a run; a context manager.

    Created through :meth:`Tracer.span`; records a ``span`` record with
    wall and CPU durations when closed.  Attributes passed at creation
    (or added via :meth:`annotate`) land on the record's ``attrs``.
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "attrs",
        "_wall_start", "_cpu_start", "wall_seconds", "cpu_seconds",
    )

    def __init__(self, tracer: "Tracer", name: str, parent_id: int | None,
                 attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.attrs = attrs
        self.wall_seconds: float | None = None
        self.cpu_seconds: float | None = None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the span record (last write wins)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "TraceSpan":
        self.tracer._stack.append(self.span_id)
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_seconds = time.perf_counter() - self._wall_start
        self.cpu_seconds = time.process_time() - self._cpu_start
        stack = self.tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self.tracer._emit({
            "type": "span",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "wall_s": round(self.wall_seconds, 9),
            "cpu_s": round(self.cpu_seconds, 9),
            "attrs": self.attrs,
        })


class _NullSpan:
    """The reusable do-nothing span of :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a near-zero-cost no-op.

    Hot loops guard with ``if tracer.enabled:`` (a plain attribute
    load); code outside hot loops may call :meth:`span` / :meth:`event`
    unconditionally.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        pass

    def run_record(self, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """An enabled tracer bound to one sink.

    Not thread-safe by design: one tracer traces one run (the service
    gives each job its own).  ``max_events`` bounds the number of step
    events *written*; further events are counted and the overflow is
    reported on the ``run`` record as ``dropped_events``.

    Examples
    --------
    >>> sink = MemorySink()
    >>> tracer = Tracer(sink)
    >>> with tracer.span("solve", states=3):
    ...     tracer.event("pivot", column=0)
    >>> [r["type"] for r in sink.records]
    ['event', 'span']
    >>> sink.records[0]["parent"] == sink.records[1]["span"]
    True
    """

    enabled = True

    def __init__(self, sink: Sink, max_events: int = DEFAULT_MAX_EVENTS,
                 clock: Callable[[], float] = time.time):
        self.sink = sink
        self.max_events = max_events
        self._clock = clock
        self._ids = itertools.count(1)
        self._stack: list[int] = []
        self.events_emitted = 0
        self.events_dropped = 0
        self._emit({"type": "start", "ts": self._clock()})

    # -- record plumbing ----------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        record["v"] = TRACE_SCHEMA_VERSION
        self.sink.write(record)

    @property
    def current_span_id(self) -> int | None:
        return self._stack[-1] if self._stack else None

    # -- the API -------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> TraceSpan:
        """Open a (context-manager) span under the current one."""
        return TraceSpan(self, name, self.current_span_id, attrs)

    def event(self, name: str, **fields: Any) -> None:
        """Record one bounded step event under the current span."""
        if self.events_emitted >= self.max_events:
            self.events_dropped += 1
            return
        self.events_emitted += 1
        self._emit({
            "type": "event",
            "name": name,
            "parent": self.current_span_id,
            **fields,
        })

    def run_record(self, **fields: Any) -> None:
        """Write the closing ``run`` record (report, outcome, totals)."""
        self._emit({
            "type": "run",
            "ts": self._clock(),
            "events": self.events_emitted,
            "dropped_events": self.events_dropped,
            **fields,
        })

    def close(self) -> None:
        self.sink.close()


def tracer_of(context: Any) -> "Tracer | NullTracer":
    """The tracer carried by an optional run context.

    Evaluators receive ``context: RunContext | None``; this normalises
    both the ``None`` case and contexts created before tracing existed
    (duck-typed, so :mod:`repro.core` need not import the runtime
    layer).
    """
    if context is None:
        return NULL_TRACER
    return getattr(context, "tracer", NULL_TRACER)


def phase_scope(context: Any, name: str, **attrs: Any):
    """A phase context manager on an optional run context.

    ``RunContext.phase`` both opens a tracer span and accrues the
    exclusive wall/CPU totals reported on the
    :class:`~repro.runtime.context.RunReport`; with no context the
    scope is the no-op span.
    """
    if context is None:
        return _NULL_SPAN
    phase = getattr(context, "phase", None)
    if phase is None:
        return _NULL_SPAN
    return phase(name, **attrs)
