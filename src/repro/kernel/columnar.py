"""Columnar relations and database snapshots over interned IDs.

A :class:`ColumnarRelation` stores its rows as one C-contiguous
``int64`` array of shape ``(n, arity)`` whose entries are
:class:`~repro.kernel.symbols.SymbolTable` IDs.  The array is always
*normalized*: rows are unique and sorted lexicographically, so two
relations hold the same row set iff their arrays are identical — which
makes equality, hashing (``data.tobytes()``), and cache keys cheap and
canonical.  While the symbol table has seen no dynamic intern, raw-ID
lexicographic order coincides with the canonical value order of the
frozenset interpreter's iteration, row for row.

A :class:`ColumnarDatabase` is the interned counterpart of
:class:`~repro.relational.database.Database`: immutable, hashable,
usable as a Markov-chain state and as a `TransitionCache`/`ResultCache`
key.  :func:`intern_database` / :func:`extern_database` convert between
the two representations losslessly (up to value equality, which is the
equality `frozenset` rows already use).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.errors import SchemaError
from repro.kernel.symbols import SymbolTable
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "ColumnarRelation",
    "ColumnarDatabase",
    "intern_relation",
    "intern_database",
    "extern_relation",
    "extern_database",
]


def normalize_rows(data: np.ndarray) -> np.ndarray:
    """Sort rows lexicographically and drop duplicates.

    When every entry is a non-negative ID small enough to fold the row
    into one base-``max+1`` scalar, rows are keyed, checked for the
    already-normalized common case (one vectorized comparison, no
    copy), and otherwise deduplicated through a 1-D argsort.  The
    general path is a lexsort plus an adjacent-difference mask — still
    far cheaper than ``np.unique(axis=0)``'s structured-dtype view.
    """
    n = data.shape[0]
    if n <= 1:
        return np.ascontiguousarray(data)
    k = data.shape[1]
    if k == 0:
        # All zero-arity rows are the empty tuple; keep one.
        return np.ascontiguousarray(data[:1])
    low = int(data.min())
    base = int(data.max()) + 1
    if low >= 0 and base ** k < 2 ** 62:
        if k == 1:
            keys = data[:, 0]
        else:
            keys = np.ravel_multi_index(
                tuple(data[:, i] for i in range(k)), dims=(base,) * k
            )
        if (keys[1:] > keys[:-1]).all():
            return np.ascontiguousarray(data)
        order = np.argsort(keys, kind="stable")
        ordered = data[order]
        sorted_keys = keys[order]
        changed = sorted_keys[1:] != sorted_keys[:-1]
        if changed.all():
            return ordered
    else:
        ordered = data[np.lexsort(data.T[::-1])]
        changed = (ordered[1:] != ordered[:-1]).any(axis=1)
        if changed.all():
            return ordered
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    keep[1:] = changed
    return np.ascontiguousarray(ordered[keep])


class ColumnarRelation:
    """An immutable interned relation (normalized ID array + columns)."""

    __slots__ = ("columns", "data", "_hash")

    def __init__(self, columns: tuple[str, ...], data: np.ndarray, normalized: bool = False):
        self.columns = tuple(columns)
        array = np.asarray(data, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != len(self.columns):
            raise SchemaError(
                f"columnar data of shape {array.shape!r} does not match "
                f"columns {self.columns!r}"
            )
        if not normalized:
            array = normalize_rows(array)
        self.data = np.ascontiguousarray(array)
        self.data.setflags(write=False)
        self._hash: int | None = None

    @classmethod
    def empty(cls, columns: tuple[str, ...]) -> "ColumnarRelation":
        return cls(columns, np.empty((0, len(columns)), dtype=np.int64), normalized=True)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.data.shape[0]

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise SchemaError(
                f"no column {name!r} in relation with columns {self.columns!r}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarRelation):
            return NotImplemented
        return (
            self.columns == other.columns
            and self.data.shape == other.data.shape
            and bool(np.array_equal(self.data, other.data))
        )

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash((self.columns, self.data.shape, self.data.tobytes()))
        return value

    def __repr__(self) -> str:
        return f"ColumnarRelation(columns={self.columns!r}, rows={len(self)})"

    def issubset(self, other: "ColumnarRelation") -> bool:
        if self.columns != other.columns:
            raise SchemaError(
                f"issubset requires identical columns: "
                f"{self.columns!r} vs {other.columns!r}"
            )
        if len(self) == 0:
            return True
        if len(self) > len(other):
            return False
        theirs = other.row_set()
        return all(row.tobytes() in theirs for row in self.data)

    def row_set(self) -> set[bytes]:
        """The rows as a set of raw byte keys (subset checks)."""
        return {row.tobytes() for row in self.data}


class ColumnarDatabase:
    """An immutable interned database snapshot (a Markov-chain state)."""

    __slots__ = ("_relations", "table", "_hash")

    def __init__(self, relations: Mapping[str, ColumnarRelation], table: SymbolTable):
        self._relations: dict[str, ColumnarRelation] = dict(relations)
        self.table = table
        self._hash: int | None = None

    # -- mapping protocol, mirroring Database --------------------------------

    def __getitem__(self, name: str) -> ColumnarRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"no relation {name!r}; database has {sorted(self._relations)!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        return sorted(self._relations)

    def relations(self) -> dict[str, ColumnarRelation]:
        return dict(self._relations)

    def schema(self) -> dict[str, tuple[str, ...]]:
        return {name: rel.columns for name, rel in self._relations.items()}

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarDatabase):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(
                tuple(
                    (name, hash(self._relations[name]))
                    for name in sorted(self._relations)
                )
            )
        return value

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(r)}]" for n, r in sorted(self._relations.items()))
        return f"ColumnarDatabase({parts})"

    # -- functional updates --------------------------------------------------

    def with_relation(self, name: str, relation: ColumnarRelation) -> "ColumnarDatabase":
        updated = dict(self._relations)
        updated[name] = relation
        return ColumnarDatabase(updated, self.table)

    def with_relations(self, updates: Mapping[str, ColumnarRelation]) -> "ColumnarDatabase":
        updated = dict(self._relations)
        updated.update(updates)
        return ColumnarDatabase(updated, self.table)

    def contains_database(self, other: "ColumnarDatabase") -> bool:
        """Superset check relation-by-relation (Definition 3.4 guard)."""
        for name, rel in other._relations.items():
            mine = self._relations.get(name)
            if mine is None or mine.columns != rel.columns:
                return False
            if len(rel) == 0:
                continue
            if len(rel) > len(mine):
                return False
            mine_rows = mine.row_set()
            if any(row.tobytes() not in mine_rows for row in rel.data):
                return False
        return True

    def canonical_sort_key(self) -> tuple:
        """A sort key order-isomorphic to
        :func:`~repro.relational.ordering.database_sort_key` on the
        externed snapshot, so frozenset and columnar cached-row outcome
        orderings coincide."""
        rank = self.table.rank_array()
        parts = []
        for name in sorted(self._relations):
            rel = self._relations[name]
            data = rel.data if rank is None else normalize_rows(rank[rel.data])
            parts.append((name, rel.columns, tuple(map(tuple, data.tolist()))))
        return tuple(parts)


# -- conversion ---------------------------------------------------------------


def intern_relation(relation: Relation, table: SymbolTable) -> ColumnarRelation:
    """Intern a frozenset relation into the table's ID space."""
    arity = relation.arity
    if len(relation) == 0:
        return ColumnarRelation.empty(relation.columns)
    intern = table.intern
    flat = [intern(value) for row in relation for value in row]
    data = np.asarray(flat, dtype=np.int64).reshape(len(relation), arity)
    return ColumnarRelation(relation.columns, data)


def intern_database(db: Database, table: SymbolTable) -> ColumnarDatabase:
    """Intern a whole database snapshot."""
    return ColumnarDatabase(
        {name: intern_relation(db[name], table) for name in db.names()}, table
    )


def extern_relation(relation: ColumnarRelation, table: SymbolTable) -> Relation:
    """Map a columnar relation back to the frozenset representation."""
    values = [table.value_of(i) for i in relation.data.ravel().tolist()]
    arity = relation.arity
    rows: Iterable[tuple[Any, ...]]
    if arity == 0:
        rows = [()] * len(relation)
    else:
        rows = [
            tuple(values[r * arity : (r + 1) * arity]) for r in range(len(relation))
        ]
    return Relation(relation.columns, rows)


def extern_database(db: ColumnarDatabase, table: SymbolTable | None = None) -> Database:
    """Map a columnar database snapshot back to frozenset form."""
    table = table or db.table
    return Database({name: extern_relation(db[name], table) for name in db.names()})
