"""Vectorized relational operator kernels over normalized ID arrays.

Every function here maps normalized ``(n, arity)`` ID arrays to a
normalized result array; schema bookkeeping lives in the compiled plan
(:mod:`repro.kernel.compile`).  Three implementation techniques carry
all of them:

* **Row encoding** — a block of columns is folded into one scalar key
  per row with :func:`np.ravel_multi_index` over the symbol universe
  (IDs are dense, so ``U**k`` fits ``int64`` for every realistic
  schema); set membership and join-key matching become 1-D sorted-array
  operations (``searchsorted``).  When ``U**k`` would overflow, the
  kernels fall back to byte-key Python sets — correct, merely slower.
* **Bitset fast path** — arity-1 relations (the frontier/current-node
  relations of all the paper's walk examples) short-circuit union,
  difference and intersection through a boolean mask over the universe.
* **Range gather** — the natural join matches sorted key blocks with
  two ``searchsorted`` calls and expands match ranges without a Python
  loop.
"""

from __future__ import annotations

import numpy as np

from repro.kernel.columnar import normalize_rows

__all__ = [
    "encode_rows",
    "union",
    "difference",
    "intersection",
    "project",
    "product",
    "natural_join",
    "member_mask",
]

_EMPTY = np.empty(0, dtype=np.int64)


def encode_rows(data: np.ndarray, universe: int) -> np.ndarray | None:
    """Fold each row into one int64 key, or None when ``U**k`` overflows.

    Keys preserve lexicographic row order (base-``U`` positional
    encoding), so the keys of a normalized array are sorted ascending.
    """
    n, k = data.shape
    if k == 0:
        return np.zeros(n, dtype=np.int64)
    if k == 1:
        return data[:, 0]
    base = max(universe, 1)
    if base ** k >= 2 ** 62:
        return None
    return np.ravel_multi_index(
        tuple(data[:, i] for i in range(k)), dims=(base,) * k
    ).astype(np.int64, copy=False)


def member_mask(rows: np.ndarray, others: np.ndarray, universe: int) -> np.ndarray:
    """Boolean mask: which rows of ``rows`` occur in ``others``.

    Both inputs must be normalized arrays of the same arity.
    """
    if rows.shape[0] == 0 or others.shape[0] == 0:
        return np.zeros(rows.shape[0], dtype=bool)
    keys = encode_rows(rows, universe)
    other_keys = encode_rows(others, universe)
    if keys is None or other_keys is None:
        other_set = {row.tobytes() for row in others}
        return np.fromiter(
            (row.tobytes() in other_set for row in rows), dtype=bool, count=rows.shape[0]
        )
    positions = np.searchsorted(other_keys, keys)
    positions[positions >= other_keys.shape[0]] = other_keys.shape[0] - 1
    return other_keys[positions] == keys


def _mask_of(ids: np.ndarray, universe: int) -> np.ndarray:
    mask = np.zeros(universe, dtype=bool)
    mask[ids] = True
    return mask


def union(a: np.ndarray, b: np.ndarray, universe: int) -> np.ndarray:
    """Set union of two normalized arrays (same arity)."""
    if a.shape[0] == 0:
        return b
    if b.shape[0] == 0:
        return a
    if a.shape[1] == 1:
        mask = _mask_of(a[:, 0], universe)
        mask[b[:, 0]] = True
        return np.flatnonzero(mask).astype(np.int64).reshape(-1, 1)
    return normalize_rows(np.concatenate([a, b], axis=0))


def difference(a: np.ndarray, b: np.ndarray, universe: int) -> np.ndarray:
    """Set difference a − b of two normalized arrays (same arity)."""
    if a.shape[0] == 0 or b.shape[0] == 0:
        return a
    if a.shape[1] == 1:
        mask = _mask_of(a[:, 0], universe)
        mask[b[:, 0]] = False
        return np.flatnonzero(mask).astype(np.int64).reshape(-1, 1)
    keep = ~member_mask(a, b, universe)
    return a[keep]


def intersection(a: np.ndarray, b: np.ndarray, universe: int) -> np.ndarray:
    """Set intersection of two normalized arrays (same arity)."""
    if a.shape[0] == 0 or b.shape[0] == 0:
        return a[:0]
    if a.shape[1] == 1:
        mask = _mask_of(a[:, 0], universe) & _mask_of(b[:, 0], universe)
        return np.flatnonzero(mask).astype(np.int64).reshape(-1, 1)
    return a[member_mask(a, b, universe)]


def project(data: np.ndarray, indices: list[int]) -> np.ndarray:
    """Projection onto the given column positions (set semantics)."""
    picked = np.ascontiguousarray(data[:, indices])
    if picked.shape[0] <= 1 or picked.shape[1] == 0:
        return picked[:1] if picked.shape[1] == 0 and picked.shape[0] > 1 else picked
    return normalize_rows(picked)


def product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cartesian product; result is normalized because inputs are."""
    na, nb = a.shape[0], b.shape[0]
    if na == 0 or nb == 0:
        return np.empty((0, a.shape[1] + b.shape[1]), dtype=np.int64)
    left = np.repeat(a, nb, axis=0)
    right = np.tile(b, (na, 1))
    # Inputs are sorted and unique, so (row_a, row_b) pairs in this
    # order are sorted and unique too — no re-normalization needed.
    return np.concatenate([left, right], axis=1)


def natural_join(
    a: np.ndarray,
    a_shared: list[int],
    b: np.ndarray,
    b_shared: list[int],
    b_keep: list[int],
    universe: int,
) -> np.ndarray:
    """Natural join: match the shared-column blocks, keep ``b_keep``
    columns of the right side.  Returns an (un-normalized) row block;
    the caller normalizes once.
    """
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.empty((0, a.shape[1] + len(b_keep)), dtype=np.int64)
    ka = encode_rows(np.ascontiguousarray(a[:, a_shared]), universe)
    kb = encode_rows(np.ascontiguousarray(b[:, b_shared]), universe)
    if ka is None or kb is None:
        return _join_fallback(a, a_shared, b, b_shared, b_keep)
    if b_shared == list(range(len(b_shared))):
        # The shared block is a prefix of b's (lexicographically sorted)
        # rows, so its encoded keys are already ascending.
        order = None
        kb_sorted = kb
    else:
        order = np.argsort(kb, kind="stable")
        kb_sorted = kb[order]
    if a.shape[0] == 1:
        # Singleton left side (the frontier relation of every walk
        # workload): one binary search, one contiguous slice.
        lo = int(np.searchsorted(kb_sorted, ka[0], side="left"))
        hi = int(np.searchsorted(kb_sorted, ka[0], side="right"))
        if lo == hi:
            return np.empty((0, a.shape[1] + len(b_keep)), dtype=np.int64)
        right_rows = np.arange(lo, hi) if order is None else order[lo:hi]
        left_rows = np.zeros(hi - lo, dtype=np.int64)
    else:
        lo = np.searchsorted(kb_sorted, ka, side="left")
        hi = np.searchsorted(kb_sorted, ka, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return np.empty((0, a.shape[1] + len(b_keep)), dtype=np.int64)
        left_rows = np.repeat(np.arange(a.shape[0]), counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        right_rows = np.repeat(lo, counts) + offsets
        if order is not None:
            right_rows = order[right_rows]
    total = right_rows.shape[0]
    left_part = a[left_rows]
    right_part = b[right_rows][:, b_keep] if b_keep else np.empty((total, 0), dtype=np.int64)
    return np.concatenate([left_part, right_part], axis=1)


def _join_fallback(
    a: np.ndarray, a_shared: list[int], b: np.ndarray, b_shared: list[int], b_keep: list[int]
) -> np.ndarray:
    buckets: dict[bytes, list[int]] = {}
    b_key_block = np.ascontiguousarray(b[:, b_shared])
    for i in range(b.shape[0]):
        buckets.setdefault(b_key_block[i].tobytes(), []).append(i)
    a_key_block = np.ascontiguousarray(a[:, a_shared])
    rows = []
    for i in range(a.shape[0]):
        for j in buckets.get(a_key_block[i].tobytes(), ()):  # pragma: no branch
            rows.append(np.concatenate([a[i], b[j, b_keep]]))
    if not rows:
        return np.empty((0, a.shape[1] + len(b_keep)), dtype=np.int64)
    return np.stack(rows)
