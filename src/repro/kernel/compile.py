"""Lower prepared programs to columnar execution plans.

:func:`compile_query` takes a parsed query (kernel + event) and its
initial database and produces:

* one per-session :class:`~repro.kernel.symbols.SymbolTable` holding the
  closed value universe (database active domain ∪ program constants ∪
  event values);
* the interned initial state (:class:`ColumnarDatabase`);
* a :class:`CompiledKernel` that duck-types
  :class:`~repro.core.interpretation.Interpretation`'s evaluator-facing
  interface (``sample_transition`` / ``transition`` / ``check_schema`` /
  ``cached`` / ...), so every existing evaluator — MCMC walker, chain
  builder, fixpoint sampler, transition cache — runs on columnar states
  without modification;
* a :class:`CompiledEvent` duck-typing ``QueryEvent.holds``.

Compilation is static: schemas are validated once, every constant is
interned up front, predicate masks and join layouts are fixed per node.
Programs the kernel cannot express (attached pc-tables, opaque
``RowPredicate`` selections, foreign event types) raise
:class:`KernelCompileError`; callers fall back to the frozenset
interpreter and report the fallback (PH005 hint +
``repro_kernel_fallback_total`` metric).
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterable

import numpy as np

from repro.core.events import (
    AndEvent,
    ExpressionEvent,
    NotEvent,
    OrEvent,
    QueryEvent,
    RelationNonEmpty,
    TupleIn,
)
from repro.core.queries import ForeverQuery
from repro.errors import ReproError, SchemaError
from repro.kernel import ops
from repro.kernel.columnar import (
    ColumnarDatabase,
    ColumnarRelation,
    intern_database,
)
from repro.kernel.repair import repair_distribution_columnar, sample_repair_columnar
from repro.kernel.symbols import SymbolTable
from repro.probability.distribution import Distribution
from repro.relational import algebra
from repro.relational import predicates as preds
from repro.relational.algebra import Expression
from repro.relational.database import Database

__all__ = [
    "KernelCompileError",
    "OpTimings",
    "CompiledKernel",
    "CompiledEvent",
    "CompiledQuery",
    "compile_kernel",
    "compile_event",
    "compile_query",
    "kernel_ineligibility",
]


class KernelCompileError(ReproError):
    """The program cannot be lowered to the columnar kernel."""


class OpTimings:
    """Cumulative per-operator wall-clock accounting for one kernel."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: dict[str, list] = {}

    def record(self, op: str, seconds: float) -> None:
        entry = self._data.get(op)
        if entry is None:
            self._data[op] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {
            op: {"calls": calls, "seconds": seconds}
            for op, (calls, seconds) in sorted(self._data.items())
        }

    def reset(self) -> None:
        self._data.clear()


# ---------------------------------------------------------------------------
# Eligibility
# ---------------------------------------------------------------------------

_VECTOR_PREDICATES = (
    preds.TruePredicate,
    preds.ColumnEq,
    preds.ValueEq,
    preds.ValueNe,
)

_SUPPORTED_NODES = (
    algebra.RelationRef,
    algebra.Literal,
    algebra.Select,
    algebra.Project,
    algebra.Rename,
    algebra.ExtendedProject,
    algebra.Union,
    algebra.Difference,
    algebra.Product,
    algebra.NaturalJoin,
    algebra.RepairKey,
)


def _predicate_reasons(predicate: preds.Predicate) -> list[str]:
    if isinstance(predicate, (preds.AndPredicate, preds.OrPredicate)):
        return _predicate_reasons(predicate.left) + _predicate_reasons(predicate.right)
    if isinstance(predicate, preds.NotPredicate):
        return _predicate_reasons(predicate.inner)
    if isinstance(predicate, _VECTOR_PREDICATES):
        return []
    return [f"selection predicate {predicate!r} has no vectorized form"]


def _expression_reasons(expr: Expression) -> list[str]:
    reasons: list[str] = []
    if not isinstance(expr, _SUPPORTED_NODES):
        return [f"expression node {type(expr).__name__} is not kernel-lowerable"]
    if isinstance(expr, algebra.Select):
        reasons.extend(_predicate_reasons(expr.predicate))
    for child in expr.children():
        reasons.extend(_expression_reasons(child))
    return reasons


def _event_reasons(event: QueryEvent) -> list[str]:
    if isinstance(event, (AndEvent, OrEvent)):
        return _event_reasons(event.left) + _event_reasons(event.right)
    if isinstance(event, NotEvent):
        return _event_reasons(event.inner)
    if isinstance(event, (TupleIn, RelationNonEmpty)):
        return []
    if isinstance(event, ExpressionEvent):
        return _expression_reasons(event.expression)
    return [f"event type {type(event).__name__} is not kernel-lowerable"]


def kernel_ineligibility(kernel, event: QueryEvent | None = None) -> list[str]:
    """Why a program cannot run on the columnar backend ([] = eligible)."""
    reasons: list[str] = []
    if getattr(kernel, "pc_tables", None) is not None:
        reasons.append("pc-tables are instantiated per sample and stay on the frozenset path")
    for name in sorted(kernel.queries):
        for reason in _expression_reasons(kernel.queries[name]):
            reasons.append(f"{name}: {reason}")
    if event is not None:
        reasons.extend(_event_reasons(event))
    return reasons


# ---------------------------------------------------------------------------
# Constant collection
# ---------------------------------------------------------------------------


def _predicate_constants(predicate: preds.Predicate, out: set) -> None:
    if isinstance(predicate, (preds.ValueEq, preds.ValueNe)):
        out.add(predicate.value)
    elif isinstance(predicate, (preds.AndPredicate, preds.OrPredicate)):
        _predicate_constants(predicate.left, out)
        _predicate_constants(predicate.right, out)
    elif isinstance(predicate, preds.NotPredicate):
        _predicate_constants(predicate.inner, out)


def _expression_constants(expr: Expression, out: set) -> None:
    if isinstance(expr, algebra.Literal):
        out.update(expr.relation.active_domain())
    elif isinstance(expr, algebra.Select):
        _predicate_constants(expr.predicate, out)
    elif isinstance(expr, algebra.ExtendedProject):
        for _name, (kind, value) in expr.outputs:
            if kind == "const":
                out.add(value)
    for child in expr.children():
        _expression_constants(child, out)


def _event_constants(event: QueryEvent, out: set) -> None:
    if isinstance(event, TupleIn):
        out.update(event.row)
    elif isinstance(event, ExpressionEvent):
        _expression_constants(event.expression, out)
    elif isinstance(event, (AndEvent, OrEvent)):
        _event_constants(event.left, out)
        _event_constants(event.right, out)
    elif isinstance(event, NotEvent):
        _event_constants(event.inner, out)


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


class _Node:
    """One compiled operator; ``columns`` is the static output schema."""

    __slots__ = ("columns", "deterministic", "table", "timings")
    op = "?"

    def __init__(self, columns: tuple[str, ...], table: SymbolTable, timings: OpTimings):
        self.columns = columns
        self.table = table
        self.timings = timings
        self.deterministic = True

    # Deterministic evaluation; only called when self.deterministic.
    def evaluate(self, db: ColumnarDatabase) -> ColumnarRelation:
        raise NotImplementedError

    def sample(self, db: ColumnarDatabase, rng: random.Random) -> ColumnarRelation:
        """Mirror of :func:`prob_eval.sample_world`: deterministic
        subtrees consume no randomness."""
        if self.deterministic:
            return self.evaluate(db)
        return self._sample(db, rng)

    def _sample(self, db: ColumnarDatabase, rng: random.Random) -> ColumnarRelation:
        raise NotImplementedError

    def enumerate(self, db: ColumnarDatabase) -> Distribution[ColumnarRelation]:
        """Mirror of :func:`prob_eval.enumerate_worlds`."""
        if self.deterministic:
            return Distribution.point(self.evaluate(db))
        return self._enumerate(db)

    def _enumerate(self, db: ColumnarDatabase) -> Distribution[ColumnarRelation]:
        raise NotImplementedError


class _RefNode(_Node):
    op = "ref"
    __slots__ = ("name",)

    def __init__(self, name, columns, table, timings):
        super().__init__(columns, table, timings)
        self.name = name

    def evaluate(self, db):
        return db[self.name]


class _LitNode(_Node):
    op = "literal"
    __slots__ = ("relation",)

    def __init__(self, relation, table, timings):
        super().__init__(relation.columns, table, timings)
        self.relation = relation

    def evaluate(self, db):
        return self.relation


class _UnaryNode(_Node):
    __slots__ = ("child",)

    def __init__(self, child, columns, table, timings):
        super().__init__(columns, table, timings)
        self.child = child
        self.deterministic = child.deterministic

    def apply(self, relation: ColumnarRelation) -> ColumnarRelation:
        start = time.perf_counter()
        out = self._apply(relation)
        self.timings.record(self.op, time.perf_counter() - start)
        return out

    def _apply(self, relation: ColumnarRelation) -> ColumnarRelation:
        raise NotImplementedError

    def evaluate(self, db):
        return self.apply(self.child.evaluate(db))

    def _sample(self, db, rng):
        return self.apply(self.child.sample(db, rng))

    def _enumerate(self, db):
        return self.child.enumerate(db).map(self.apply)


class _BinaryNode(_Node):
    __slots__ = ("left", "right")

    def __init__(self, left, right, columns, table, timings):
        super().__init__(columns, table, timings)
        self.left = left
        self.right = right
        self.deterministic = left.deterministic and right.deterministic

    def apply(self, left: ColumnarRelation, right: ColumnarRelation) -> ColumnarRelation:
        start = time.perf_counter()
        out = self._apply(left, right)
        self.timings.record(self.op, time.perf_counter() - start)
        return out

    def _apply(self, left, right):
        raise NotImplementedError

    def evaluate(self, db):
        return self.apply(self.left.evaluate(db), self.right.evaluate(db))

    def _sample(self, db, rng):
        # Left before right: the frozenset sampler recurses in this
        # order, and RNG draws must interleave identically.
        left = self.left.sample(db, rng)
        right = self.right.sample(db, rng)
        return self.apply(left, right)

    def _enumerate(self, db):
        pairs = self.left.enumerate(db).product(self.right.enumerate(db))
        return pairs.map(lambda pair: self.apply(pair[0], pair[1]))


class _SelectNode(_UnaryNode):
    op = "select"
    __slots__ = ("mask_fn",)

    def __init__(self, child, mask_fn, table, timings):
        super().__init__(child, child.columns, table, timings)
        self.mask_fn = mask_fn

    def _apply(self, relation):
        if len(relation) == 0:
            return relation
        mask = self.mask_fn(relation.data)
        # A subset of a normalized array stays normalized.
        return ColumnarRelation(self.columns, relation.data[mask], normalized=True)


class _ProjectNode(_UnaryNode):
    op = "project"
    __slots__ = ("indices",)

    def __init__(self, child, columns, indices, table, timings):
        super().__init__(child, columns, table, timings)
        self.indices = indices

    def _apply(self, relation):
        return ColumnarRelation(
            self.columns, ops.project(relation.data, self.indices), normalized=True
        )


class _RenameNode(_UnaryNode):
    op = "rename"
    __slots__ = ()

    def _apply(self, relation):
        return ColumnarRelation(self.columns, relation.data, normalized=True)


class _ExtendedProjectNode(_UnaryNode):
    op = "extended-project"
    __slots__ = ("sources",)

    def __init__(self, child, columns, sources, table, timings):
        # sources: list of ("col", index) | ("const", symbol_id)
        super().__init__(child, columns, table, timings)
        self.sources = sources

    def _apply(self, relation):
        n = len(relation)
        parts = []
        for kind, value in self.sources:
            if kind == "col":
                parts.append(relation.data[:, value])
            else:
                parts.append(np.full(n, value, dtype=np.int64))
        if parts:
            data = np.stack(parts, axis=1)
        else:
            data = np.empty((n, 0), dtype=np.int64)
        return ColumnarRelation(self.columns, data)


class _UnionNode(_BinaryNode):
    op = "union"
    __slots__ = ()

    def _apply(self, left, right):
        return ColumnarRelation(
            self.columns,
            ops.union(left.data, right.data, len(self.table)),
            normalized=True,
        )


class _DifferenceNode(_BinaryNode):
    op = "difference"
    __slots__ = ()

    def _apply(self, left, right):
        return ColumnarRelation(
            self.columns,
            ops.difference(left.data, right.data, len(self.table)),
            normalized=True,
        )


class _ProductNode(_BinaryNode):
    op = "product"
    __slots__ = ()

    def _apply(self, left, right):
        return ColumnarRelation(
            self.columns, ops.product(left.data, right.data), normalized=True
        )


class _JoinNode(_BinaryNode):
    op = "join"
    __slots__ = ("left_shared", "right_shared", "right_keep")

    def __init__(self, left, right, columns, table, timings):
        super().__init__(left, right, columns, table, timings)
        shared = [c for c in left.columns if c in right.columns]
        self.left_shared = [left.columns.index(c) for c in shared]
        self.right_shared = [right.columns.index(c) for c in shared]
        self.right_keep = [
            i for i, c in enumerate(right.columns) if c not in left.columns
        ]

    def _apply(self, left, right):
        if not self.left_shared:
            data = ops.product(left.data, right.data)
            return ColumnarRelation(self.columns, data, normalized=True)
        data = ops.natural_join(
            left.data,
            self.left_shared,
            right.data,
            self.right_shared,
            self.right_keep,
            len(self.table),
        )
        return ColumnarRelation(self.columns, data)


class _RepairNode(_UnaryNode):
    op = "repair-key"
    __slots__ = ("key", "weight")

    def __init__(self, child, key, weight, table, timings):
        super().__init__(child, child.columns, table, timings)
        self.key = key
        self.weight = weight
        self.deterministic = False

    def _sample(self, db, rng):
        child = self.child.sample(db, rng)
        start = time.perf_counter()
        out = sample_repair_columnar(child, self.table, rng, self.key, self.weight)
        self.timings.record(self.op, time.perf_counter() - start)
        return out

    def _enumerate(self, db):
        child = self.child.enumerate(db)
        return child.bind(
            lambda relation: repair_distribution_columnar(
                relation, self.table, self.key, self.weight
            )
        )


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------


def _compile_predicate(
    predicate: preds.Predicate, columns: tuple[str, ...], table: SymbolTable
) -> Callable[[np.ndarray], np.ndarray]:
    if isinstance(predicate, preds.TruePredicate):
        return lambda data: np.ones(data.shape[0], dtype=bool)
    if isinstance(predicate, preds.ColumnEq):
        li, ri = columns.index(predicate.left), columns.index(predicate.right)
        return lambda data: data[:, li] == data[:, ri]
    if isinstance(predicate, (preds.ValueEq, preds.ValueNe)):
        idx = columns.index(predicate.column)
        symbol = table.id_of(predicate.value)
        negate = isinstance(predicate, preds.ValueNe)
        if symbol is None:
            # Constant not interned (yet): re-resolve per call, since a
            # dynamic intern (footnote-1 weight sum) can introduce it.
            value = predicate.value

            def late_mask(data: np.ndarray) -> np.ndarray:
                resolved = table.id_of(value)
                if resolved is None:
                    hits = np.zeros(data.shape[0], dtype=bool)
                else:
                    hits = data[:, idx] == resolved
                return ~hits if negate else hits

            return late_mask
        if negate:
            return lambda data: data[:, idx] != symbol
        return lambda data: data[:, idx] == symbol
    if isinstance(predicate, preds.AndPredicate):
        left = _compile_predicate(predicate.left, columns, table)
        right = _compile_predicate(predicate.right, columns, table)
        return lambda data: left(data) & right(data)
    if isinstance(predicate, preds.OrPredicate):
        left = _compile_predicate(predicate.left, columns, table)
        right = _compile_predicate(predicate.right, columns, table)
        return lambda data: left(data) | right(data)
    if isinstance(predicate, preds.NotPredicate):
        inner = _compile_predicate(predicate.inner, columns, table)
        return lambda data: ~inner(data)
    raise KernelCompileError(
        f"selection predicate {predicate!r} has no vectorized form"
    )


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def _compile_expression(
    expr: Expression,
    schema: dict[str, tuple[str, ...]],
    table: SymbolTable,
    timings: OpTimings,
) -> _Node:
    if isinstance(expr, algebra.RelationRef):
        return _RefNode(expr.name, expr.output_columns(schema), table, timings)
    if isinstance(expr, algebra.Literal):
        from repro.kernel.columnar import intern_relation

        return _LitNode(intern_relation(expr.relation, table), table, timings)
    if isinstance(expr, algebra.Select):
        child = _compile_expression(expr.child, schema, table, timings)
        mask_fn = _compile_predicate(expr.predicate, child.columns, table)
        return _SelectNode(child, mask_fn, table, timings)
    if isinstance(expr, algebra.Project):
        child = _compile_expression(expr.child, schema, table, timings)
        indices = [child.columns.index(c) for c in expr.columns]
        return _ProjectNode(child, tuple(expr.columns), indices, table, timings)
    if isinstance(expr, algebra.Rename):
        child = _compile_expression(expr.child, schema, table, timings)
        renamed = tuple(expr.mapping.get(c, c) for c in child.columns)
        node = _RenameNode(child, renamed, table, timings)
        return node
    if isinstance(expr, algebra.ExtendedProject):
        child = _compile_expression(expr.child, schema, table, timings)
        columns = tuple(name for name, _source in expr.outputs)
        sources = []
        for _name, (kind, value) in expr.outputs:
            if kind == "col":
                sources.append(("col", child.columns.index(value)))
            else:
                sources.append(("const", table.intern(value)))
        return _ExtendedProjectNode(child, columns, sources, table, timings)
    if isinstance(expr, algebra.Union):
        left = _compile_expression(expr.left, schema, table, timings)
        right = _compile_expression(expr.right, schema, table, timings)
        return _UnionNode(left, right, left.columns, table, timings)
    if isinstance(expr, algebra.Difference):
        left = _compile_expression(expr.left, schema, table, timings)
        right = _compile_expression(expr.right, schema, table, timings)
        return _DifferenceNode(left, right, left.columns, table, timings)
    if isinstance(expr, algebra.Product):
        left = _compile_expression(expr.left, schema, table, timings)
        right = _compile_expression(expr.right, schema, table, timings)
        return _ProductNode(left, right, left.columns + right.columns, table, timings)
    if isinstance(expr, algebra.NaturalJoin):
        left = _compile_expression(expr.left, schema, table, timings)
        right = _compile_expression(expr.right, schema, table, timings)
        columns = left.columns + tuple(
            c for c in right.columns if c not in left.columns
        )
        return _JoinNode(left, right, columns, table, timings)
    if isinstance(expr, algebra.RepairKey):
        child = _compile_expression(expr.child, schema, table, timings)
        return _RepairNode(child, tuple(expr.key), expr.weight, table, timings)
    raise KernelCompileError(
        f"expression node {type(expr).__name__} is not kernel-lowerable"
    )


# ---------------------------------------------------------------------------
# Compiled events
# ---------------------------------------------------------------------------


class CompiledEvent:
    """Duck-type of :class:`~repro.core.events.QueryEvent` over columnar
    states."""

    def holds(self, db: ColumnarDatabase) -> bool:
        raise NotImplementedError

    def __call__(self, db: ColumnarDatabase) -> bool:
        return self.holds(db)


class _CTupleIn(CompiledEvent):
    __slots__ = ("relation", "values", "table", "row")

    def __init__(self, relation: str, values: tuple, table: SymbolTable):
        self.relation = relation
        self.values = values
        self.table = table
        self.row: np.ndarray | None = None

    def _resolve(self) -> np.ndarray | None:
        # Lazy: a value may only become interned by a dynamic intern
        # (footnote-1 weight sum) after compile time.  The table is
        # append-only, so a resolved row stays valid.
        if self.row is None:
            ids = [self.table.id_of(value) for value in self.values]
            if not any(i is None for i in ids):
                self.row = np.asarray(ids, dtype=np.int64)
        return self.row

    def holds(self, db):
        row = self._resolve()
        if self.relation not in db or row is None:
            return False
        data = db[self.relation].data
        if data.shape[0] == 0 or data.shape[1] != row.shape[0]:
            return False
        return bool((data == row).all(axis=1).any())


class _CNonEmpty(CompiledEvent):
    __slots__ = ("relation",)

    def __init__(self, relation: str):
        self.relation = relation

    def holds(self, db):
        return self.relation in db and len(db[self.relation]) > 0


class _CExpression(CompiledEvent):
    __slots__ = ("plan",)

    def __init__(self, plan: _Node):
        self.plan = plan

    def holds(self, db):
        return len(self.plan.evaluate(db)) > 0


class _CBool(CompiledEvent):
    __slots__ = ("kind", "parts")

    def __init__(self, kind: str, parts: tuple[CompiledEvent, ...]):
        self.kind = kind
        self.parts = parts

    def holds(self, db):
        if self.kind == "and":
            return all(part.holds(db) for part in self.parts)
        if self.kind == "or":
            return any(part.holds(db) for part in self.parts)
        return not self.parts[0].holds(db)


def _compile_event(
    event: QueryEvent,
    schema: dict[str, tuple[str, ...]],
    table: SymbolTable,
    timings: OpTimings,
) -> CompiledEvent:
    if isinstance(event, TupleIn):
        return _CTupleIn(event.relation, tuple(event.row), table)
    if isinstance(event, RelationNonEmpty):
        return _CNonEmpty(event.relation)
    if isinstance(event, ExpressionEvent):
        plan = _compile_expression(event.expression, schema, table, timings)
        return _CExpression(plan)
    if isinstance(event, AndEvent):
        return _CBool(
            "and",
            (
                _compile_event(event.left, schema, table, timings),
                _compile_event(event.right, schema, table, timings),
            ),
        )
    if isinstance(event, OrEvent):
        return _CBool(
            "or",
            (
                _compile_event(event.left, schema, table, timings),
                _compile_event(event.right, schema, table, timings),
            ),
        )
    if isinstance(event, NotEvent):
        return _CBool("not", (_compile_event(event.inner, schema, table, timings),))
    raise KernelCompileError(
        f"event type {type(event).__name__} is not kernel-lowerable"
    )


# ---------------------------------------------------------------------------
# Compiled kernel
# ---------------------------------------------------------------------------


class CompiledKernel:
    """Columnar counterpart of one
    :class:`~repro.core.interpretation.Interpretation`.

    Duck-types the evaluator-facing interface over
    :class:`ColumnarDatabase` states; attached pc-tables are a
    compile-time rejection, so ``pc_tables`` is always None here.
    """

    pc_tables = None
    source_spans = None

    def __init__(
        self,
        interpretation,
        table: SymbolTable,
        plans: dict[str, _Node],
        timings: OpTimings,
        schema: dict[str, tuple[str, ...]],
    ):
        self.interpretation = interpretation
        self.queries = interpretation.queries
        self.table = table
        self.plans = plans
        self.timings = timings
        self.schema_map = schema
        self._sorted_names = sorted(plans)

    # -- schema ------------------------------------------------------------

    def pc_relation_names(self) -> list[str]:
        return []

    def updated_relations(self) -> list[str]:
        return list(self._sorted_names)

    def check_schema(self, db: ColumnarDatabase) -> None:
        schema = db.schema()
        for name, plan in self.plans.items():
            if name not in schema:
                raise SchemaError(
                    f"kernel rewrites relation {name!r} missing from the database"
                )
            if plan.columns != schema[name]:
                raise SchemaError(
                    f"query for {name!r} produces columns {plan.columns!r}, "
                    f"but the relation has columns {schema[name]!r}"
                )

    def without_pc_tables(self) -> "CompiledKernel":
        return self

    # -- semantics ---------------------------------------------------------

    def transition(self, db: ColumnarDatabase) -> Distribution[ColumnarDatabase]:
        result: Distribution[ColumnarDatabase] = Distribution.point(db)
        for name in self._sorted_names:
            worlds = self.plans[name].enumerate(db)
            result = result.bind(
                lambda state, name=name, worlds=worlds: worlds.map(
                    lambda relation, name=name, state=state: state.with_relation(
                        name, relation
                    )
                )
            )
        return result

    def sample_transition(
        self, db: ColumnarDatabase, rng: random.Random
    ) -> ColumnarDatabase:
        updates = {
            name: self.plans[name].sample(db, rng) for name in self._sorted_names
        }
        return db.with_relations(updates)

    def cached(self, maxsize: int | None = None):
        from repro.perf.cache import DEFAULT_CACHE_SIZE, TransitionCache

        return TransitionCache(
            self, maxsize=DEFAULT_CACHE_SIZE if maxsize is None else maxsize
        )

    def is_deterministic(self) -> bool:
        return self.interpretation.is_deterministic()

    def op_timings(self) -> dict[str, dict[str, float]]:
        """Cumulative per-operator wall-clock totals since compile (or
        the last reset)."""
        return self.timings.snapshot()

    def __repr__(self) -> str:
        return (
            f"CompiledKernel(queries={self._sorted_names!r}, "
            f"symbols={len(self.table)})"
        )


class CompiledQuery:
    """The result of :func:`compile_query`: a backend-swapped query plus
    its interned initial state."""

    __slots__ = ("query", "initial", "kernel", "event", "table")

    def __init__(self, query, initial, kernel, event, table):
        self.query = query
        self.initial = initial
        self.kernel = kernel
        self.event = event
        self.table = table

    def op_timings(self) -> dict[str, dict[str, float]]:
        return self.kernel.op_timings()


def compile_kernel(
    kernel, initial: Database, extra_values: Iterable[Any] = ()
) -> tuple[CompiledKernel, ColumnarDatabase]:
    """Lower one transition kernel (an
    :class:`~repro.core.interpretation.Interpretation`) to the columnar
    backend, event-agnostically.

    The symbol universe is the database's active domain plus every
    constant in the program, plus ``extra_values`` (callers that know
    the event up front can pre-intern its values; otherwise unknown
    event constants resolve lazily).  Raises
    :class:`KernelCompileError` when the program is ineligible.
    """
    reasons = kernel_ineligibility(kernel)
    if reasons:
        raise KernelCompileError(
            "program is not kernel-eligible: " + "; ".join(reasons)
        )
    universe: set = set(initial.active_domain())
    for expression in kernel.queries.values():
        _expression_constants(expression, universe)
    universe.update(extra_values)
    table = SymbolTable(universe)
    schema = initial.schema()
    # Static schema validation, as Interpretation.check_schema does.
    kernel.check_schema(initial)
    timings = OpTimings()
    plans = {
        name: _compile_expression(expression, schema, table, timings)
        for name, expression in sorted(kernel.queries.items())
    }
    compiled = CompiledKernel(kernel, table, plans, timings, schema)
    return compiled, intern_database(initial, table)


def compile_event(event: QueryEvent, kernel: CompiledKernel) -> CompiledEvent:
    """Compile a query event against an already-compiled kernel.

    Raises :class:`KernelCompileError` for event types the kernel
    cannot express (used by sessions that share one compiled kernel
    across many events).
    """
    reasons = _event_reasons(event)
    if reasons:
        raise KernelCompileError(
            "event is not kernel-eligible: " + "; ".join(reasons)
        )
    return _compile_event(event, kernel.schema_map, kernel.table, kernel.timings)


def compile_query(query: ForeverQuery, initial: Database) -> CompiledQuery:
    """Lower a prepared query to the columnar backend.

    Returns a :class:`CompiledQuery` whose ``query`` attribute is an
    instance of the *same class* as the input (so inflationary guards
    keep working) with the kernel and event replaced by their compiled
    counterparts, and whose ``initial`` is the interned start state.

    Raises :class:`KernelCompileError` when the program is ineligible.
    """
    reasons = _event_reasons(query.event)
    if reasons:
        raise KernelCompileError(
            "program is not kernel-eligible: " + "; ".join(reasons)
        )
    event_values: set = set()
    _event_constants(query.event, event_values)
    kernel, interned = compile_kernel(query.kernel, initial, event_values)
    event = compile_event(query.event, kernel)
    compiled = query.__class__(kernel, event)
    return CompiledQuery(compiled, interned, kernel, event, kernel.table)
