"""Vectorized columnar relational kernel.

Compiles prepared programs to integer-ID array execution: values are
interned into a per-session :class:`SymbolTable`, relations become
sorted ``int64`` arrays, and the relational operators plus repair-key
run as numpy kernels.  Results — including sampled trajectories under a
fixed seed — are bit-identical to the frozenset interpreter's.
"""

from repro.kernel.columnar import (
    ColumnarDatabase,
    ColumnarRelation,
    extern_database,
    extern_relation,
    intern_database,
    intern_relation,
)
from repro.kernel.compile import (
    CompiledEvent,
    CompiledKernel,
    CompiledQuery,
    KernelCompileError,
    OpTimings,
    compile_event,
    compile_kernel,
    compile_query,
    kernel_ineligibility,
)
from repro.kernel.repair import repair_distribution_columnar, sample_repair_columnar
from repro.kernel.symbols import SymbolTable

__all__ = [
    "SymbolTable",
    "ColumnarRelation",
    "ColumnarDatabase",
    "intern_relation",
    "intern_database",
    "extern_relation",
    "extern_database",
    "CompiledKernel",
    "CompiledEvent",
    "CompiledQuery",
    "KernelCompileError",
    "OpTimings",
    "compile_kernel",
    "compile_event",
    "compile_query",
    "kernel_ineligibility",
    "sample_repair_columnar",
    "repair_distribution_columnar",
]
