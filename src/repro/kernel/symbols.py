"""Per-session symbol tables: scalar values ⇄ dense integer IDs.

The columnar kernel does not move Python objects through the relational
operators; it interns every scalar value occurring in the database, the
program's constants, and the query event into one per-session
:class:`SymbolTable` and computes on dense ``int64`` IDs.  Two design
points matter for correctness:

* **IDs are assigned in canonical value order** (see
  :func:`~repro.relational.ordering.canonical_key`).  The static
  universe is sorted once at compile time, so for any two statically
  interned values ``u < v`` canonically iff ``id(u) < id(v)`` — sorting
  an ID array lexicographically therefore visits rows in exactly the
  order the frozenset interpreter's canonicalized iteration uses, which
  is what keeps the two backends' RNG streams bit-identical.
* **Dynamic interning is supported but penalised.**  Footnote-1 weight
  merging inside ``repair-key`` sums weight fractions and can create
  values outside the static universe; those are appended past the
  static region and a ``rank`` permutation (ID → canonical position) is
  recomputed lazily.  While no dynamic intern has happened — the common
  case — the rank map is the identity and every kernel skips it.

Values that compare equal (``3 == Fraction(3) == 3.0``) collapse to one
ID, exactly as they collapse to one element of a ``frozenset`` row set.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterable

import numpy as np

from repro.errors import ProbabilityError
from repro.relational.ordering import canonical_key

__all__ = ["SymbolTable"]


class SymbolTable:
    """An append-only interning table over hashable scalar values."""

    __slots__ = ("_values", "_ids", "_static_size", "_rank", "_floats", "_checked_weights")

    def __init__(self, universe: Iterable[Any] = ()):
        deduped: dict[Any, None] = {}
        for value in universe:
            deduped.setdefault(value, None)
        ordered = sorted(deduped, key=canonical_key)
        self._values: list[Any] = ordered
        self._ids: dict[Any, int] = {value: i for i, value in enumerate(ordered)}
        self._static_size = len(ordered)
        # None means "identity": no dynamic intern has happened, raw ID
        # order *is* canonical order.
        self._rank: np.ndarray | None = None
        self._floats: list[float | None] | None = None
        self._checked_weights: set[int] = set()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return value in self._ids

    @property
    def static_size(self) -> int:
        """Number of values interned at compile time."""
        return self._static_size

    @property
    def dynamic_count(self) -> int:
        """Number of values interned after compile time."""
        return len(self._values) - self._static_size

    def id_of(self, value: Any) -> int | None:
        """The ID of an already-interned value, or None."""
        return self._ids.get(value)

    def intern(self, value: Any) -> int:
        """The ID of ``value``, appending it if it is new."""
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        new_id = len(self._values)
        self._values.append(value)
        self._ids[value] = new_id
        # Appended IDs break the ID-order == canonical-order invariant;
        # the rank permutation is rebuilt on next use.
        self._rank = None
        if self._floats is not None:
            self._floats.append(_float_or_none(value))
        return new_id

    def value_of(self, symbol_id: int) -> Any:
        """The value interned under ``symbol_id``."""
        return self._values[symbol_id]

    def extern_row(self, ids: Iterable[int]) -> tuple:
        """Map a row of IDs back to its value tuple."""
        values = self._values
        return tuple(values[i] for i in ids)

    def rank_array(self) -> np.ndarray | None:
        """ID → canonical-position permutation, or None for identity.

        Identity holds exactly while no dynamic intern has happened:
        static IDs were assigned in sorted canonical order.
        """
        if self.dynamic_count == 0:
            return None
        if self._rank is None or len(self._rank) != len(self._values):
            order = sorted(range(len(self._values)), key=lambda i: canonical_key(self._values[i]))
            rank = np.empty(len(self._values), dtype=np.int64)
            rank[np.asarray(order, dtype=np.int64)] = np.arange(len(self._values), dtype=np.int64)
            self._rank = rank
        return self._rank

    def float_list(self) -> list[float | None]:
        """Per-ID ``float(Fraction(value))``; None for non-numeric values.

        This is the weight cache of the vectorized repair-key step: the
        frozenset sampler converts each weight with exactly
        ``float(as_fraction(value))``, and ``float(Fraction(x))`` is
        correctly rounded, so the cached float equals the frozenset
        path's float bit-for-bit.
        """
        if self._floats is None or len(self._floats) != len(self._values):
            self._floats = [_float_or_none(value) for value in self._values]
        return self._floats

    def check_weight(self, symbol_id: int) -> None:
        """Validate one weight ID eagerly, memoizing acceptance.

        IDs are stable, so an ID that validated once validates forever;
        the per-step repair kernel skips re-checking the (static) weight
        column this way.
        """
        if symbol_id in self._checked_weights:
            return
        self.weight_fraction(symbol_id)
        self._checked_weights.add(symbol_id)

    def weight_fraction(self, symbol_id: int) -> Fraction:
        """Exact weight of an interned value; raises like the frozenset
        path for non-numeric or non-positive weights."""
        value = self._values[symbol_id]
        try:
            weight = Fraction(value) if not isinstance(value, Fraction) else value
        except (TypeError, ValueError) as error:
            raise ProbabilityError(
                f"cannot interpret {value!r} as a probability weight"
            ) from error
        if weight <= 0:
            raise ProbabilityError(
                f"repair-key weight column must contain positive values, got {value!r}"
            )
        return weight


def _float_or_none(value: Any) -> float | None:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float, Fraction)):
        try:
            return float(Fraction(value))
        except (ValueError, OverflowError):
            return None
    return None
