"""Vectorized ``repair-key`` over columnar relations.

The semantics is exactly :mod:`repro.relational.repair`; the point of
this module is (a) speed — grouping and ordering are array operations
and the per-row weight floats come from the symbol table's per-ID cache
instead of a fresh ``float(Fraction(...))`` per step — and (b) the
bit-identical RNG stream: groups are visited in canonical key order and
rows within a group in canonical row order (the array is sorted by
``(key columns, full row)`` under the rank permutation, which reduces to
a plain lexsort while no dynamic intern has happened), a uniform group
consumes one ``randrange``, a weighted group one ``random()`` compared
against the same sequential float accumulation.  A fixed seed therefore
draws the same worlds here and in the frozenset interpreter.

Footnote 1 (merging rows that agree on the non-weight columns by
summing their weights) is detected with one ``np.unique`` over the
non-weight block; when it fires — rare in the paper's workloads — the
summed fractions are computed exactly and interned dynamically.
"""

from __future__ import annotations

import random
from fractions import Fraction

import numpy as np

from repro.kernel.columnar import ColumnarRelation
from repro.kernel.ops import encode_rows
from repro.kernel.symbols import SymbolTable
from repro.probability.distribution import Distribution, product_distribution

__all__ = ["sample_repair_columnar", "repair_distribution_columnar"]


def _validate_weights(data: np.ndarray, widx: int, table: SymbolTable) -> None:
    """Raise :class:`ProbabilityError` for non-numeric or non-positive
    weights, matching the frozenset path's eager validation.  Accepted
    IDs are memoized on the table, so steady-state steps only pay set
    lookups."""
    for symbol_id in data[:, widx].tolist():
        table.check_weight(symbol_id)


def _merge_duplicate_weight_rows(
    data: np.ndarray, widx: int, table: SymbolTable
) -> np.ndarray:
    """Footnote 1: merge rows equal on all non-weight columns, summing P."""
    _validate_weights(data, widx, table)
    if data.shape[0] <= 1:
        return data
    nonw = [i for i in range(data.shape[1]) if i != widx]
    sub = data[:, nonw]
    keys = encode_rows(np.ascontiguousarray(sub), len(table))
    if keys is not None:
        sorted_keys = np.sort(keys)
        if (sorted_keys[1:] != sorted_keys[:-1]).all():
            # No two rows agree on the non-weight columns — the common
            # case, detected on one folded key per row.
            return data
        order = np.argsort(keys, kind="stable")
        changed = sorted_keys[1:] != sorted_keys[:-1]
    else:
        order = np.lexsort(sub.T[::-1])
        sorted_sub = sub[order]
        changed = (sorted_sub[1:] != sorted_sub[:-1]).any(axis=1)
        if changed.all():
            return data
    starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
    counts = np.diff(np.append(starts, data.shape[0]))
    merged_rows = []
    for start, count in zip(starts.tolist(), counts.tolist()):
        group = order[start : start + count]
        first = data[group[0]].copy()
        if count > 1:
            total = Fraction(0)
            for row_index in group.tolist():
                total += table.weight_fraction(int(data[row_index, widx]))
            first[widx] = table.intern(total)
        merged_rows.append(first)
    return np.stack(merged_rows)


def _canonical_group_sort(
    data: np.ndarray,
    key_idx: list[int],
    table: SymbolTable,
    assume_sorted: bool = False,
) -> tuple[np.ndarray, list[int], list[int]]:
    """Sort rows by (key columns, full row) in canonical value order and
    return (sorted_data, group_starts, group_ends).

    With ``assume_sorted`` (rows already in raw-ID lexicographic order,
    i.e. straight out of a normalized relation), a prefix key under an
    identity rank needs no sort at all — (key columns, full row) order
    *is* full-row order then.
    """
    n, arity = data.shape
    rank = table.rank_array()
    prefix_key = key_idx == list(range(len(key_idx)))
    if assume_sorted and rank is None and prefix_key:
        sorted_data = data
        if key_idx and n > 1:
            key_block = data[:, : len(key_idx)]
            changed = (key_block[1:] != key_block[:-1]).any(axis=1)
            starts = [0] + (np.flatnonzero(changed) + 1).tolist()
        else:
            starts = [0]
    else:
        view = data if rank is None else rank[data]
        sort_keys = [view[:, i] for i in reversed(range(arity))] + [
            view[:, i] for i in reversed(key_idx)
        ]
        order = np.lexsort(tuple(sort_keys))
        sorted_data = data[order]
        if key_idx:
            key_block = (view[order])[:, key_idx]
            changed = (key_block[1:] != key_block[:-1]).any(axis=1)
            starts = [0] + (np.flatnonzero(changed) + 1).tolist()
        else:
            starts = [0]
    ends = starts[1:] + [n]
    return sorted_data, starts, ends


def sample_repair_columnar(
    relation: ColumnarRelation,
    table: SymbolTable,
    rng: random.Random,
    key: tuple[str, ...] = (),
    weight: str | None = None,
) -> ColumnarRelation:
    """Draw one possible world of ``repair-key`` (vectorized).

    Consumes the RNG stream of
    :func:`repro.relational.repair.sample_repair` bit-for-bit.
    """
    if len(relation) == 0:
        return relation
    widx = relation.column_index(weight) if weight is not None else None
    data = relation.data
    if widx is not None:
        data = _merge_duplicate_weight_rows(data, widx, table)
    key_idx = [relation.column_index(c) for c in key]
    sorted_data, starts, ends = _canonical_group_sort(
        data, key_idx, table, assume_sorted=data is relation.data
    )
    # One chosen row per group, groups ascending by key block: when the
    # key columns are a prefix of the schema and raw-ID order is still
    # canonical (no dynamic intern), the picked rows come out already
    # sorted and unique — skip the normalization pass.
    prenormalized = (
        key_idx == list(range(len(key_idx)))
        and table.rank_array() is None
    )
    chosen: list[int] = []
    if widx is None:
        for start, end in zip(starts, ends):
            chosen.append(start + rng.randrange(end - start))
    else:
        floats = table.float_list()
        weights = [floats[i] for i in sorted_data[:, widx].tolist()]
        for start, end in zip(starts, ends):
            group = weights[start:end]
            total = sum(group)
            pick = rng.random() * total
            acc = 0.0
            selected = end - 1
            for offset, w in enumerate(group):
                acc += w
                if pick < acc:
                    selected = start + offset
                    break
            chosen.append(selected)
    return ColumnarRelation(
        relation.columns,
        sorted_data[np.asarray(chosen, dtype=np.int64)],
        normalized=prenormalized,
    )


def repair_distribution_columnar(
    relation: ColumnarRelation,
    table: SymbolTable,
    key: tuple[str, ...] = (),
    weight: str | None = None,
) -> Distribution[ColumnarRelation]:
    """All possible worlds of ``repair-key`` over a columnar relation.

    Probabilities are exact fractions equal to those of
    :func:`repro.relational.repair.repair_distribution` on the externed
    relation (world-by-world).
    """
    if len(relation) == 0:
        return Distribution.point(relation)
    widx = relation.column_index(weight) if weight is not None else None
    data = relation.data
    if widx is not None:
        data = _merge_duplicate_weight_rows(data, widx, table)
    key_idx = [relation.column_index(c) for c in key]
    sorted_data, starts, ends = _canonical_group_sort(
        data, key_idx, table, assume_sorted=data is relation.data
    )
    per_group: list[Distribution[int]] = []
    for start, end in zip(starts, ends):
        if widx is None:
            per_group.append(
                Distribution({i: Fraction(1) for i in range(start, end)})
            )
        else:
            per_group.append(
                Distribution(
                    {
                        i: table.weight_fraction(int(sorted_data[i, widx]))
                        for i in range(start, end)
                    }
                )
            )
    joint = product_distribution(per_group)
    columns = relation.columns
    return joint.map(
        lambda combo: ColumnarRelation(
            columns, sorted_data[np.asarray(combo, dtype=np.int64)]
        )
    )
