"""Experiment X3 — Examples 3.5 / 3.9: probabilistic reachability.

Three implementations of "probability that node v is eventually
reached": the inflationary fixpoint kernel (Ex 3.5), the probabilistic
datalog program (Ex 3.9), and an independent functional-reachability
oracle.  All three must agree exactly; exact and sampled costs are
measured side by side.
"""

from __future__ import annotations

import time

from repro.baselines import functional_reachability_probability
from repro.core import TupleIn, evaluate_inflationary_exact, evaluate_inflationary_sampling
from repro.datalog import evaluate_datalog_exact, evaluate_datalog_sampling
from repro.workloads import layered_dag, reachability_program, reachability_query

from benchmarks.conftest import format_table


def test_three_way_agreement(benchmark, report):
    graph = layered_dag(3, 2, rng=35)
    start = "v0_0"

    rows = []
    for target in ("v1_0", "v1_1", "v2_0", "v2_1"):
        fix_query, fix_db = reachability_query(graph, start, target)
        fixpoint = evaluate_inflationary_exact(fix_query, fix_db).probability
        program, edb = reachability_program(graph, start)
        datalog = evaluate_datalog_exact(
            program, edb, TupleIn("c", (target,))
        ).probability
        oracle = functional_reachability_probability(graph, start, target)
        assert fixpoint == datalog == oracle
        rows.append([target, str(fixpoint), str(datalog), str(oracle)])

    fix_query, fix_db = reachability_query(graph, start, "v2_0")
    benchmark.pedantic(
        lambda: evaluate_inflationary_exact(fix_query, fix_db),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "X3 — reachability: fixpoint (Ex 3.5) ≡ datalog (Ex 3.9) ≡ oracle",
            ["target", "fixpoint query", "datalog program", "oracle"],
            rows,
        )
    )


def test_exact_vs_sampled_cost(benchmark, report):
    start = "v0_0"
    rows = []
    for layers, width in ((2, 2), (3, 2), (3, 3)):
        graph = layered_dag(layers, width, rng=layers + width)
        target = f"v{layers - 1}_0"
        fix_query, fix_db = reachability_query(graph, start, target)

        t0 = time.perf_counter()
        exact = evaluate_inflationary_exact(fix_query, fix_db)
        exact_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        sampled = evaluate_inflationary_sampling(fix_query, fix_db, samples=400, rng=5)
        sampled_time = time.perf_counter() - t0

        assert abs(sampled.estimate - float(exact.probability)) < 0.08
        rows.append(
            [
                f"{layers}x{width}",
                exact.states_explored,
                f"{exact_time * 1e3:.0f} ms",
                f"{float(exact.probability):.3f}",
                f"{sampled.estimate:.3f}",
                f"{sampled_time * 1e3:.0f} ms",
            ]
        )

    graph = layered_dag(2, 2, rng=4)
    program, edb = reachability_program(graph, start)
    benchmark.pedantic(
        lambda: evaluate_datalog_sampling(
            program, edb, TupleIn("c", ("v1_0",)), samples=200, rng=5
        ),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "X3 — exact computation-tree traversal vs Theorem 4.3 sampling",
            ["DAG", "exact states", "exact time", "exact p", "sampled p̂", "sample time"],
            rows,
        )
    )
