"""Experiment A4 — rational vs float chain solving (implementation
ablation, not a paper claim).

The exact evaluator (Prop 5.4 / Thm 5.5) uses Gaussian elimination over
ℚ so the paper's identities can be checked with ``==``; the float64
twin solves the same systems with LAPACK.  This ablation measures the
crossover: agreement stays ≤ 1e-9 while the rational solver's cost
grows much faster with chain size.
"""

from __future__ import annotations

import time

from repro.core import evaluate_forever_exact, evaluate_forever_numeric
from repro.workloads import erdos_renyi, random_walk_query

from benchmarks.conftest import format_table


def test_exact_vs_numeric(benchmark, report):
    rows = []
    exact_times = {}
    numeric_times = {}
    for size in (4, 8, 12, 16):
        graph = erdos_renyi(size, 0.3, rng=size)
        query, db = random_walk_query(graph, "n0", "n1")

        t0 = time.perf_counter()
        exact = evaluate_forever_exact(query, db)
        exact_times[size] = time.perf_counter() - t0

        t0 = time.perf_counter()
        numeric = evaluate_forever_numeric(query, db)
        numeric_times[size] = time.perf_counter() - t0

        gap = abs(numeric.probability - float(exact.probability))
        assert gap < 1e-9
        rows.append(
            [
                size,
                exact.states_explored,
                f"{exact_times[size] * 1e3:.1f} ms",
                f"{numeric_times[size] * 1e3:.1f} ms",
                f"{gap:.1e}",
            ]
        )

    # the rational solver loses ground as the chain grows
    assert (
        exact_times[16] / numeric_times[16]
        > exact_times[4] / numeric_times[4] * 0.5
    )

    graph = erdos_renyi(10, 0.3, rng=10)
    query, db = random_walk_query(graph, "n0", "n1")
    benchmark.pedantic(
        lambda: evaluate_forever_numeric(query, db), rounds=3, iterations=1
    )

    report(
        *format_table(
            "A4 — exact (ℚ Gaussian elimination) vs float64 (LAPACK) "
            "forever-query evaluation",
            ["graph nodes", "chain states", "exact time", "float time", "|difference|"],
            rows,
        )
    )
