"""Experiment X4 — Example 3.6: the tuple re-use subtlety.

On E = {(a,b,1/2), (a,c,1/2)} the paper contrasts two inflationary
encodings: with the ``C − C_old`` guard, Pr[b ∈ C] = 1/2; without it,
each node re-chooses forever and Pr[b ∈ C] = 1 (the never-terminating
paths carry probability → 0).  Both values are regenerated exactly, and
the sampled convergence of the unguarded program is traced.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import evaluate_inflationary_exact, evaluate_inflationary_sampling
from repro.workloads import (
    example_36_graph,
    reachability_query,
    unguarded_reachability_query,
)

from benchmarks.conftest import format_table


def test_guarded_vs_unguarded_exact(benchmark, report):
    graph = example_36_graph()
    guarded_query, guarded_db = reachability_query(graph, "a", "b")
    unguarded_query, unguarded_db = unguarded_reachability_query(graph, "a", "b")

    guarded = evaluate_inflationary_exact(guarded_query, guarded_db)
    unguarded = evaluate_inflationary_exact(unguarded_query, unguarded_db)
    assert guarded.probability == Fraction(1, 2)
    assert unguarded.probability == 1

    benchmark.pedantic(
        lambda: evaluate_inflationary_exact(unguarded_query, unguarded_db),
        rounds=5,
        iterations=2,
    )

    report(
        *format_table(
            "X4 — Example 3.6: Pr[b ∈ C] under the two encodings",
            ["encoding", "exact Pr[b ∈ C]", "paper value"],
            [
                ["C ∪ f(C − Cold)  (guarded, Ex 3.5)", str(guarded.probability), "1/2"],
                ["C ∪ f(C)        (unguarded, Ex 3.6)", str(unguarded.probability), "1"],
            ],
        )
    )


def test_unguarded_sample_path_lengths(benchmark, report):
    """The unguarded program terminates with probability 1 but has
    unbounded paths: the sampled run-length distribution has a
    geometric tail (the probability-→-0 paths of the example)."""
    graph = example_36_graph()
    query, db = unguarded_reachability_query(graph, "a", "b")

    result = evaluate_inflationary_sampling(query, db, samples=1500, rng=36)
    assert result.estimate == 1.0
    mean_steps = result.details["mean_steps_per_sample"]
    # one repair-key choice per step; reaching the fixpoint {a,b,c}
    # needs both b and c chosen at least once: E[steps] ≈ 3 plus the
    # verification step.
    assert 2.0 < mean_steps < 6.0

    benchmark.pedantic(
        lambda: evaluate_inflationary_sampling(query, db, samples=300, rng=36),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "X4 — Example 3.6: sampled runs of the unguarded program",
            ["samples", "Pr[b ∈ C] estimate", "mean kernel steps per run"],
            [[result.samples, f"{result.estimate:.3f}", f"{mean_steps:.2f}"]],
        )
    )
