"""Experiment A1 — Section 5.1 partitioning ablation.

On databases made of independent components, the partitioned evaluator
must (a) return exactly the same probability as direct evaluation and
(b) explore the *sum* instead of the *product* of the per-class state
spaces — the optimisation's whole point.
"""

from __future__ import annotations

import time

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
    evaluate_forever_partitioned,
)
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import two_component_graph

from benchmarks.conftest import format_table


def _walk_step():
    return rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )


def _setup(components: int, component_size: int):
    graph = two_component_graph(component_size, components)
    starts = [(f"g{c}_n0",) for c in range(components)]
    db = Database({"C": Relation(("I",), starts), "E": graph.edge_relation()})
    kernel = Interpretation({"C": _walk_step()})
    query = ForeverQuery(kernel, TupleIn("C", ("g0_n1",)))
    return query, db


def test_partitioning_correct_and_smaller(benchmark, report):
    rows = []
    for components, component_size in ((2, 3), (2, 4), (3, 3)):
        query, db = _setup(components, component_size)

        t0 = time.perf_counter()
        direct = evaluate_forever_exact(query, db, max_states=100_000)
        direct_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        partitioned = evaluate_forever_partitioned(query, db, max_states=100_000)
        partitioned_time = time.perf_counter() - t0

        assert partitioned.probability == direct.probability
        assert partitioned.details["classes"] == components
        assert partitioned.states_explored < direct.states_explored
        assert direct.states_explored == component_size**components

        rows.append(
            [
                f"{components}×{component_size}",
                direct.states_explored,
                partitioned.states_explored,
                str(direct.probability),
                f"{direct_time * 1e3:.0f} ms",
                f"{partitioned_time * 1e3:.0f} ms",
            ]
        )

    query, db = _setup(2, 3)
    benchmark.pedantic(
        lambda: evaluate_forever_partitioned(query, db), rounds=3, iterations=1
    )

    report(
        *format_table(
            "A1 — Section 5.1 partitioning: joint product vs per-class sum "
            "(walkers on disjoint lazy cycles)",
            [
                "components×size",
                "joint states",
                "partitioned states",
                "probability",
                "direct time",
                "partitioned time",
            ],
            rows,
        )
    )


def test_partition_discovery(benchmark, report):
    from repro.core import compute_partition

    query, db = _setup(3, 3)
    classes = benchmark.pedantic(
        lambda: compute_partition(query, db), rounds=3, iterations=1
    )
    assert len(classes) == 3

    rows = []
    for index, dependency_class in enumerate(
        sorted(classes, key=lambda c: sorted(map(repr, c)))
    ):
        components = {row[0].split("_")[0] for _name, row in dependency_class}
        assert len(components) == 1  # classes never straddle components
        rows.append([index, len(dependency_class), ", ".join(sorted(components))])

    report(
        *format_table(
            "A1 — provenance-discovered dependency classes",
            ["class", "tuples", "component"],
            rows,
        )
    )
