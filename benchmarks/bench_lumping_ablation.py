"""Experiment A7 — state-space lumping (the future-work optimization).

The paper closes asking for "generic optimization techniques for query
evaluation"; strong lumping is the classical chain-level one.  This
ablation runs forever-queries over databases with k walkers of which
the event reads only one: the full chain is the k-fold product (nᵏ
states) while the event-respecting quotient collapses the irrelevant
walkers to n blocks — with the probability preserved exactly.
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
    evaluate_forever_lumped,
)
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import two_component_graph

from benchmarks.conftest import format_table


def _walkers(components: int, size: int):
    graph = two_component_graph(size, components)
    starts = [(f"g{c}_n0",) for c in range(components)]
    db = Database({"C": Relation(("I",), starts), "E": graph.edge_relation()})
    step = rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )
    kernel = Interpretation({"C": step})
    return ForeverQuery(kernel, TupleIn("C", ("g0_n1",))), db


def test_lumping_reduction_and_exactness(benchmark, report):
    rows = []
    for components, size in ((1, 4), (2, 4), (3, 4)):
        query, db = _walkers(components, size)

        t0 = time.perf_counter()
        direct = evaluate_forever_exact(query, db, max_states=100_000)
        direct_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        lumped = evaluate_forever_lumped(query, db, max_states=100_000)
        lumped_time = time.perf_counter() - t0

        assert lumped.probability == direct.probability == Fraction(1, size)
        assert lumped.details["full_states"] == size**components
        assert lumped.details["quotient_states"] == size

        rows.append(
            [
                components,
                size**components,
                lumped.details["quotient_states"],
                str(lumped.probability),
                f"{direct_time * 1e3:.0f} ms",
                f"{lumped_time * 1e3:.0f} ms",
            ]
        )

    query, db = _walkers(2, 4)
    benchmark.pedantic(
        lambda: evaluate_forever_lumped(query, db, max_states=100_000),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "A7 — event-respecting lumping: k walkers, event on walker 0 "
            "(quotient collapses the rest)",
            [
                "walkers",
                "full chain states",
                "quotient states",
                "probability",
                "direct solve",
                "lumped solve",
            ],
            rows,
        )
    )
