"""Experiment T1.E1 — Table 1 rows 1–2, column "exact computation".

Claim: exact evaluation is ♯P-hard (data complexity) already for linear
datalog without probabilistic rules over pc-tables, and for inflationary
fixpoint with repair-key; the algorithm of Proposition 4.4 runs in
PSPACE but exponential time.

Regenerated series: runtime and explored-world count of the exact
evaluator as the number of independent c-table variables n grows — the
possible-world count is exactly 2ⁿ, so time must grow geometrically.
The sampling evaluator at fixed (ε, δ) is run on the same instances as
the contrast column (its cost is flat-ish in n).
"""

from __future__ import annotations

import time

from repro.reductions import build_thm41_instance, random_3cnf
from repro.reductions.thm41 import exact_probability, sampled_probability

from benchmarks.conftest import format_table

#: Variable counts of the scaling sweep (worlds = 2^n).
SWEEP = (3, 5, 7, 9)
#: Clauses per variable in the random 3-CNF instances.
CLAUSE_RATIO = 1.5


def _instances():
    return {
        n: build_thm41_instance(random_3cnf(n, max(1, int(n * CLAUSE_RATIO)), rng=n))
        for n in SWEEP
    }


def test_exact_scaling_is_exponential(benchmark, report):
    instances = _instances()

    rows = []
    timings = {}
    for n, instance in instances.items():
        start = time.perf_counter()
        result = exact_probability(instance)
        elapsed = time.perf_counter() - start
        timings[n] = elapsed
        assert result.details["pc_worlds"] == 2**n
        rows.append(
            [
                n,
                2**n,
                str(result.probability),
                result.states_explored,
                f"{elapsed * 1e3:.1f} ms",
            ]
        )

    # Shape check: the per-n cost grows geometrically (allow generous
    # noise; the world count doubles per variable).
    assert timings[SWEEP[-1]] > 4 * timings[SWEEP[0]]

    benchmark.pedantic(
        lambda: exact_probability(instances[SWEEP[1]]), rounds=3, iterations=1
    )

    report(
        *format_table(
            "T1.E1 — exact inflationary evaluation vs c-table variables "
            "(worlds double per variable)",
            ["n vars", "worlds", "exact p", "states explored", "time"],
            rows,
        )
    )


def test_sampling_contrast_is_flat(benchmark, report):
    """The absolute-approximation column on the same instances: the
    sample count is fixed by (ε, δ), so cost stays polynomial."""
    instances = _instances()
    samples = 200

    rows = []
    timings = {}
    for n, instance in instances.items():
        start = time.perf_counter()
        result = sampled_probability(instance, samples=samples, rng=7)
        elapsed = time.perf_counter() - start
        timings[n] = elapsed
        rows.append([n, samples, f"{result.estimate:.3f}", f"{elapsed * 1e3:.1f} ms"])

    # Shape check: sampling grows at most mildly (polynomial in n),
    # nothing like the 2^n of the exact column.
    exact_style_growth = 2 ** (SWEEP[-1] - SWEEP[0])
    assert timings[SWEEP[-1]] < exact_style_growth * timings[SWEEP[0]]

    benchmark.pedantic(
        lambda: sampled_probability(instances[SWEEP[1]], samples=samples, rng=7),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E1 contrast — Theorem 4.3 sampler on the same instances "
            f"({samples} samples)",
            ["n vars", "samples", "estimate", "time"],
            rows,
        )
    )
