"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one artifact of the paper (a Table 1
cell, Table 2, a worked example, or an ablation) and *prints* the
regenerated rows/series so that ``pytest benchmarks/ --benchmark-only``
produces both timing statistics and the experiment output.  The
``report`` fixture prints through pytest's capture so the tables are
visible in normal runs.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment output live (bypasses pytest output capture)."""

    def _report(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _report


def format_table(title: str, headers: list[str], rows: list[list]) -> list[str]:
    """Render a small fixed-width table as a list of printable lines."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def render(values: list[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths))

    lines = ["", f"=== {title} ===", render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in cells)
    return lines
