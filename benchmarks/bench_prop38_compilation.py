"""Experiment A2 — Proposition 3.8 compilation ablation.

Every probabilistic datalog program has an equivalent inflationary
query.  The dedicated Section 3.3 engine and the compiled
(newVals/oldVals-as-relations) inflationary query must return identical
exact probabilities; the compiled form pays an interpretive overhead the
ablation quantifies.
"""

from __future__ import annotations

import time

from repro.core import InflationaryQuery, TupleIn, evaluate_inflationary_exact
from repro.datalog import (
    evaluate_datalog_exact,
    inflationary_initial_database,
    inflationary_interpretation_for_program,
    parse_program,
)
from repro.relational import Database, Relation
from repro.workloads import layered_dag, reachability_program, sprinkler_network

from benchmarks.conftest import format_table


def _cases():
    cases = []

    graph = layered_dag(2, 2, rng=38)
    program, edb = reachability_program(graph, "v0_0")
    cases.append(("reachability", program, edb, TupleIn("c", ("v1_0",))))

    program = parse_program(
        "c(v). c2(X*, Y)@P :- c(X), e(X, Y, P). c(Y) :- c2(X, Y)."
    )
    edb = Database(
        {"e": Relation(("I", "J", "P"), [("v", "w", 1), ("v", "u", 3)])}
    )
    cases.append(("weighted-choice", program, edb, TupleIn("c", ("u",))))

    network = sprinkler_network()
    program, edb = network.to_datalog(conditions={"rain": 1})
    cases.append(("sprinkler-bayes", program, edb, TupleIn("q", ())))

    return cases


def test_engine_vs_compiled_agreement(benchmark, report):
    rows = []
    for name, program, edb, event in _cases():
        t0 = time.perf_counter()
        engine_result = evaluate_datalog_exact(program, edb, event)
        engine_time = time.perf_counter() - t0

        kernel = inflationary_interpretation_for_program(program, edb.schema())
        init = inflationary_initial_database(program, edb)
        t0 = time.perf_counter()
        compiled_result = evaluate_inflationary_exact(
            InflationaryQuery(kernel, event), init
        )
        compiled_time = time.perf_counter() - t0

        assert engine_result.probability == compiled_result.probability
        overhead = compiled_time / engine_time if engine_time > 0 else float("inf")
        rows.append(
            [
                name,
                str(engine_result.probability),
                f"{engine_time * 1e3:.1f} ms",
                f"{compiled_time * 1e3:.1f} ms",
                f"{overhead:.1f}x",
            ]
        )

    name, program, edb, event = _cases()[1]
    benchmark.pedantic(
        lambda: evaluate_datalog_exact(program, edb, event), rounds=3, iterations=1
    )

    report(
        *format_table(
            "A2 — Proposition 3.8: dedicated engine vs compiled inflationary query",
            ["program", "exact p (both)", "engine time", "compiled time", "overhead"],
            rows,
        )
    )
