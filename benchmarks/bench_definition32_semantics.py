"""Experiment D1 — Definition 3.2 validated as an experiment.

The paper defines the forever-query result as a Cesàro limit over world
sequences.  This bench regenerates the definition's convergence from
three independent directions and checks they meet:

1. the exact running time-average (1/t)·Σ Pr[event at step k], computed
   from the chain's matrix powers, converging to the evaluator's answer;
2. a single simulated trajectory's occupancy fraction (the ergodic
   theorem), converging to the same value;
3. on a *periodic* chain, the pointwise Pr[event at step t] oscillating
   forever while the Cesàro average still converges — the reason the
   definition uses the time-average.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
    event_occupancy_series,
    event_probability_series,
    simulate_trajectory,
)
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import cycle_graph, random_walk_query

from benchmarks.conftest import format_table


def test_cesaro_convergence_to_evaluator(benchmark, report):
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    limit = evaluate_forever_exact(query, db).probability
    occupancy = event_occupancy_series(query, db, 400)

    rows = []
    for t in (10, 50, 200, 400):
        gap = abs(occupancy[t - 1] - limit)
        rows.append([t, f"{float(occupancy[t - 1]):.5f}", f"{float(gap):.5f}"])
    assert abs(occupancy[-1] - limit) < Fraction(1, 100)

    benchmark.pedantic(
        lambda: event_occupancy_series(query, db, 100), rounds=3, iterations=1
    )

    report(
        *format_table(
            f"D1 — exact Cesàro average vs the evaluator's limit "
            f"({limit} on the lazy 4-cycle)",
            ["steps t", "running average", "|gap to limit|"],
            rows,
        )
    )


def test_single_trajectory_ergodic_average(benchmark, report):
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    limit = float(evaluate_forever_exact(query, db).probability)

    rows = []
    final_gap = 1.0
    for steps in (100, 1000, 10_000):
        trajectory = simulate_trajectory(query, db, steps, random.Random(32))
        occupancy = sum(query.event.holds(s) for s in trajectory[1:]) / steps
        final_gap = abs(occupancy - limit)
        rows.append([steps, f"{occupancy:.4f}", f"{limit:.4f}"])
    assert final_gap < 0.02

    benchmark.pedantic(
        lambda: simulate_trajectory(query, db, 500, random.Random(32)),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "D1 — one trajectory's occupancy fraction (ergodic theorem)",
            ["walk length", "occupancy of event", "Definition 3.2 value"],
            rows,
        )
    )


def test_periodic_chain_needs_the_cesaro_average(benchmark, report):
    """A pure 2-cycle: Pr[event at step t] alternates 0/1 forever, the
    running average still settles at 1/2 — the definition's point."""
    db = Database(
        {
            "C": Relation(("I",), [("x",)]),
            "E": Relation(("I", "J", "P"), [("x", "y", 1), ("y", "x", 1)]),
        }
    )
    step = rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )
    query = ForeverQuery(Interpretation({"C": step}), TupleIn("C", ("y",)))

    pointwise = event_probability_series(query, db, 8)
    assert pointwise == [Fraction(t % 2) for t in range(9)]  # oscillates

    occupancy = event_occupancy_series(query, db, 200)
    limit = evaluate_forever_exact(query, db).probability
    assert limit == Fraction(1, 2)
    assert abs(occupancy[-1] - limit) <= Fraction(1, 200)

    benchmark.pedantic(
        lambda: evaluate_forever_exact(query, db), rounds=5, iterations=2
    )

    rows = [
        ["Pr[event at step t]", "0, 1, 0, 1, ... (oscillates, no limit)"],
        ["running Cesàro average at t=200", f"{float(occupancy[-1]):.4f}"],
        ["Definition 3.2 value (evaluator)", str(limit)],
    ]
    report(
        *format_table(
            "D1 — periodic 2-cycle: the Cesàro average exists, the "
            "pointwise limit does not",
            ["quantity", "value"],
            rows,
        )
    )
