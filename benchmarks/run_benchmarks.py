#!/usr/bin/env python
"""The perf-trajectory harness: curated benchmarks + result checksums.

Runs a small, stable subset of the repository's workloads — chain
build, the Theorem 4.3 inflationary sampler, the Theorem 5.6 MCMC
sampler (sequential / ``workers=4`` / transition-cached), the columnar
kernel vs the frozenset interpreter over the Thm 5.6 family (with
per-operator timings), cross-process sampler determinism under varying
``PYTHONHASHSEED``, a closed-loop service loadgen (p50/p99 latency +
QPS per backend, gated against the latest committed baseline), the
supervised warm worker pool vs the legacy spawn-per-call executor, the
exact linear solver (Bareiss vs the Gauss–Jordan reference), and the
sparse certified solver (kernel-streamed CSR assembly + a 10^4-state
birth-death chain solved to a residual-certified 1e-9) — and writes
``BENCH_<date>.json`` with the median wall-clock of each plus SHA-256
checksums of every result that must not drift.

Correctness gates (always enforced; any failure exits nonzero):

* ``workers=1`` sampler results are bit-identical to the sequential
  path, and ``workers=4`` runs are seed-stable (two runs, same tallies);
* the supervised warm pool reproduces spawn-per-call tallies
  bit-for-bit and finishes the run with all workers alive, zero
  restarts;
* the columnar backend's sampler tallies are checksum-equal to the
  frozenset interpreter on every Thm 5.6 family member, its transition
  distribution is Fraction-exact, and seeded tallies are identical
  across interpreter processes with different ``PYTHONHASHSEED``;
* every loadgen request completes (no failures, both backends);
* the Bareiss solver agrees entry-for-entry with ``solve_exact_gauss``;
* sampler estimates sit within the Chernoff tolerance of the exact
  evaluator's answer;
* every sparse certified answer satisfies its own ``SolveCertificate``
  *and* sits within that bound of the exact Fraction reference
  (the closed-form gambler's-ruin value on the large chain, itself
  validated against the dense solver at a dense-feasible size), and an
  unreachable tolerance is *refused*, not silently mis-answered;
* loadgen QPS stays within 20% of the latest committed ``BENCH_*.json``
  baseline per backend (enforced only on a host with the same usable
  core count, and never under ``--quick``);
* the cache-warmed chain rebuild produces the same chain;
* tracing never perturbs sampler results, and the disabled (no-op)
  tracer costs < 2% versus the bare evaluator (the ``tracing_*``
  entries also record per-phase wall/CPU timings from a traced run).

Speedup targets (``workers=4`` ≥ 2x on the Thm 5.6 bench, cache alone
≥ 1.3x at ``workers=1``, columnar ≥ 3x median over the Thm 5.6
family) are measured and recorded in the JSON under
``"targets"``; each is *enforced* only where the machine can express it
(the multi-core target needs ≥ 2 usable cores, and timing-based targets
are advisory under ``--quick``, whose rounds are too short to be
stable).

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py           # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import hashlib
import json
import os
import platform
import random
import statistics
import sys
import time
from fractions import Fraction
from pathlib import Path

from repro.core import (
    evaluate_forever_exact,
    evaluate_forever_mcmc,
    evaluate_inflationary_exact,
    evaluate_inflationary_sampling,
)
from repro.core.chain_builder import build_state_chain
from repro.markov.linalg import identity, solve_exact, solve_exact_gauss
from repro.perf import ParallelConfig
from repro.workloads import (
    cycle_graph,
    layered_dag,
    random_walk_query,
    reachability_query,
)

SEED = 11
WORKERS = 4


def checksum(payload: object) -> str:
    """SHA-256 of a canonical JSON rendering (Fractions as strings)."""
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def timed(fn, rounds: int):
    """(median seconds, last result) over ``rounds`` calls."""
    timings = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings), result


class Harness:
    def __init__(self, quick: bool):
        self.quick = quick
        self.rounds = 3 if quick else 5
        self.benchmarks: dict[str, dict] = {}
        self.checks: list[dict] = []
        self.targets: dict[str, dict] = {}

    def record(self, name: str, median_s: float, result_checksum: str, **extra):
        entry = {"median_s": round(median_s, 6), "rounds": self.rounds,
                 "checksum": result_checksum, **extra}
        self.benchmarks[name] = entry
        print(f"  {name:<28} {median_s * 1e3:9.1f} ms   checksum={result_checksum}")

    def check(self, name: str, ok: bool, detail: str):
        self.checks.append({"name": name, "ok": bool(ok), "detail": detail})
        print(f"  [{'ok' if ok else 'FAIL'}] {name}: {detail}")

    def target(self, name: str, measured: float, floor: float, enforced: bool,
               note: str = ""):
        met = measured >= floor
        self.targets[name] = {
            "measured": round(measured, 3), "target": floor,
            "enforced": enforced, "met": met, "note": note,
        }
        status = "met" if met else ("MISSED" if enforced else "missed (advisory)")
        print(f"  speedup {name}: {measured:.2f}x (target {floor}x) — {status}")

    @property
    def failed(self) -> bool:
        if any(not check["ok"] for check in self.checks):
            return True
        return any(t["enforced"] and not t["met"] for t in self.targets.values())


def bench_chain_build(h: Harness) -> None:
    print("chain build (Prop 5.4 BFS) — cold vs cache-warmed rebuild")
    query, db = random_walk_query(cycle_graph(6 if h.quick else 10), "n0", "n3")
    cold_s, chain = timed(lambda: build_state_chain(query.kernel, db), h.rounds)
    cache = query.kernel.cached()
    build_state_chain(query.kernel, db, cache=cache)  # warm it
    warm_s, rebuilt = timed(
        lambda: build_state_chain(query.kernel, db, cache=cache), h.rounds
    )
    exact = evaluate_forever_exact(query, db)
    h.record("chain_build_cold", cold_s, checksum(
        {"size": chain.size, "probability": exact.probability}))
    h.record("chain_build_warm", warm_s, checksum(
        {"size": rebuilt.size}), cache=cache.stats())
    h.check("chain_rebuild_identical", rebuilt.size == chain.size,
            f"warm rebuild has {rebuilt.size} states, cold {chain.size}")
    h.target("chain_rebuild_cache", cold_s / warm_s if warm_s else float("inf"),
             1.3, enforced=not h.quick,
             note="cache-warmed rebuild vs cold BFS")


def bench_thm43(h: Harness) -> None:
    print("Thm 4.3 inflationary sampler — sequential vs workers")
    graph = layered_dag(3, 3, rng=7)
    query, db = reachability_query(graph, "v0_0", "v2_2")  # P = 89/210
    samples = 150 if h.quick else 600
    seq_s, seq = timed(lambda: evaluate_inflationary_sampling(
        query, db, samples=samples, rng=SEED), h.rounds)
    one = evaluate_inflationary_sampling(
        query, db, samples=samples, rng=SEED, parallel=ParallelConfig(workers=1))
    par_s, par = timed(lambda: evaluate_inflationary_sampling(
        query, db, samples=samples, rng=SEED,
        parallel=ParallelConfig(workers=WORKERS)), h.rounds)
    par_again = evaluate_inflationary_sampling(
        query, db, samples=samples, rng=SEED,
        parallel=ParallelConfig(workers=WORKERS))
    exact = float(evaluate_inflationary_exact(query, db).probability)

    h.record("thm43_sequential", seq_s,
             checksum({"positive": seq.positive, "samples": seq.samples}),
             samples=samples)
    h.record(f"thm43_workers{WORKERS}", par_s,
             checksum({"positive": par.positive, "samples": par.samples}),
             samples=samples)
    h.check("thm43_workers1_bit_identical",
            (one.positive, one.samples) == (seq.positive, seq.samples),
            f"workers=1 positive={one.positive}, sequential={seq.positive}")
    h.check(f"thm43_workers{WORKERS}_seed_stable",
            par.positive == par_again.positive,
            f"two workers={WORKERS} runs: {par.positive} vs {par_again.positive}")
    tolerance = 3.0 / (samples ** 0.5)  # generous Hoeffding envelope
    h.check("thm43_estimate_near_exact",
            abs(seq.estimate - exact) <= tolerance
            and abs(par.estimate - exact) <= tolerance,
            f"exact={exact:.4f} seq={seq.estimate:.4f} par={par.estimate:.4f}")


def bench_thm56(h: Harness, cores: int) -> None:
    print("Thm 5.6 MCMC sampler — sequential vs workers=4 vs cached")
    query, db = random_walk_query(cycle_graph(8), "n0", "n4")
    samples = 200 if h.quick else 1_000
    burn_in = 10 if h.quick else 25

    seq_s, seq = timed(lambda: evaluate_forever_mcmc(
        query, db, samples=samples, burn_in=burn_in, rng=SEED), h.rounds)
    one = evaluate_forever_mcmc(
        query, db, samples=samples, burn_in=burn_in, rng=SEED,
        parallel=ParallelConfig(workers=1))
    par_s, par = timed(lambda: evaluate_forever_mcmc(
        query, db, samples=samples, burn_in=burn_in, rng=SEED,
        parallel=ParallelConfig(workers=WORKERS)), h.rounds)
    par_again = evaluate_forever_mcmc(
        query, db, samples=samples, burn_in=burn_in, rng=SEED,
        parallel=ParallelConfig(workers=WORKERS))
    cached_s, cached = timed(lambda: evaluate_forever_mcmc(
        query, db, samples=samples, burn_in=burn_in, rng=SEED,
        cache_size=256), h.rounds)
    exact = float(evaluate_forever_exact(query, db).probability)

    h.record("thm56_sequential", seq_s,
             checksum({"positive": seq.positive, "samples": seq.samples}),
             samples=samples, burn_in=burn_in)
    h.record(f"thm56_workers{WORKERS}", par_s,
             checksum({"positive": par.positive, "samples": par.samples}),
             samples=samples, burn_in=burn_in)
    h.record("thm56_cached", cached_s,
             checksum({"positive": cached.positive, "samples": cached.samples}),
             samples=samples, burn_in=burn_in,
             cache=cached.details.get("cache"))
    h.check("thm56_workers1_bit_identical",
            (one.positive, one.samples) == (seq.positive, seq.samples),
            f"workers=1 positive={one.positive}, sequential={seq.positive}")
    h.check(f"thm56_workers{WORKERS}_seed_stable",
            par.positive == par_again.positive,
            f"two workers={WORKERS} runs: {par.positive} vs {par_again.positive}")
    tolerance = 3.0 / (samples ** 0.5)
    h.check("thm56_estimates_near_exact",
            all(abs(r.estimate - exact) <= tolerance for r in (seq, par, cached)),
            f"exact={exact:.4f} seq={seq.estimate:.4f} "
            f"par={par.estimate:.4f} cached={cached.estimate:.4f}")

    h.target(f"thm56_workers{WORKERS}", seq_s / par_s if par_s else float("inf"),
             2.0, enforced=cores >= 2 and not h.quick,
             note=f"pool of {WORKERS} on {cores} usable core(s); "
                  "needs >= 2 cores to be expressible")
    h.target("thm56_cache", seq_s / cached_s if cached_s else float("inf"),
             1.3, enforced=not h.quick,
             note="TransitionCache(256) at workers=1 vs uncached sequential")


def bench_kernel(h: Harness) -> None:
    print("columnar kernel vs frozenset interpreter — Thm 5.6 family")
    from repro.kernel import compile_query, extern_database
    from repro.workloads import complete_graph, grid_graph

    family = [
        ("cycle8", random_walk_query(cycle_graph(8), "n0", "n4")),
        ("complete16", random_walk_query(complete_graph(16), "n0", "n4")),
        ("complete20", random_walk_query(complete_graph(20), "n0", "n4")),
        ("grid10x10", random_walk_query(grid_graph(10, 10), "g0_0", "g5_5")),
    ]
    samples = 60 if h.quick else 200
    burn_in = 5 if h.quick else 15
    speedups = []
    for name, (query, db) in family:
        froz_s, froz = timed(lambda: evaluate_forever_mcmc(
            query, db, samples=samples, burn_in=burn_in, rng=SEED), h.rounds)
        col_s, col = timed(lambda: evaluate_forever_mcmc(
            query, db, samples=samples, burn_in=burn_in, rng=SEED,
            backend="columnar"), h.rounds)
        froz_sum = checksum({"positive": froz.positive, "samples": froz.samples})
        col_sum = checksum({"positive": col.positive, "samples": col.samples})
        h.record(f"kernel_frozenset_{name}", froz_s, froz_sum,
                 samples=samples, burn_in=burn_in)
        h.record(f"kernel_columnar_{name}", col_s, col_sum,
                 samples=samples, burn_in=burn_in,
                 speedup=round(froz_s / col_s, 2) if col_s else None)
        h.check(f"kernel_checksum_equal_{name}", froz_sum == col_sum,
                f"columnar={col_sum} frozenset={froz_sum}")
        speedups.append(froz_s / col_s if col_s else float("inf"))

    # Exact transition-distribution parity (Fraction-for-Fraction) on the
    # smallest family member: the strongest per-step equivalence gate.
    query, db = family[0][1]
    compiled = compile_query(query, db)
    exact_f = dict(query.kernel.transition(db).items())
    exact_c = {extern_database(state): weight
               for state, weight in
               compiled.kernel.transition(compiled.initial).items()}
    h.check("kernel_transition_distribution_exact", exact_c == exact_f,
            f"{len(exact_f)} outcomes, exact Fraction weights")

    # Per-operator wall-clock accounting from a compiled run.
    query, db = family[1][1]
    compiled = compile_query(query, db)
    compiled.kernel.timings.reset()
    evaluate_forever_mcmc(compiled.query, compiled.initial,
                          samples=samples, burn_in=burn_in, rng=SEED,
                          backend="columnar")
    per_op = {
        op: {"calls": entry["calls"], "seconds": round(entry["seconds"], 6)}
        for op, entry in compiled.kernel.op_timings().items()
    }
    h.benchmarks["kernel_columnar_complete16"]["op_timings"] = per_op
    print(f"  op timings (complete16): "
          + ", ".join(f"{op}={entry['calls']}" for op, entry in per_op.items()))

    median_speedup = statistics.median(speedups)
    h.target("kernel_columnar_family_median", median_speedup, 3.0,
             enforced=not h.quick,
             note="median columnar speedup over the Thm 5.6 family; "
                  "checksums forced equal above")


_DETERMINISM_SCRIPT = r"""
import json, random
from repro.core import evaluate_forever_mcmc
from repro.workloads import cycle_graph, random_walk_query
query, db = random_walk_query(cycle_graph(6), "n0", "n3")
out = {}
for backend in (None, "columnar"):
    result = evaluate_forever_mcmc(
        query, db, samples=80, burn_in=4, rng=7, backend=backend)
    out[str(backend)] = [str(result.estimate), result.positive]
rng = random.Random(13)
state = db
out["trace"] = [query.event.holds(
    state := query.kernel.sample_transition(state, rng)) for _ in range(20)]
print(json.dumps(out, sort_keys=True))
"""


def bench_determinism(h: Harness) -> None:
    print("cross-process determinism — seeded tallies vs PYTHONHASHSEED")
    import subprocess

    src = str(Path(__file__).resolve().parent.parent / "src")

    def run(hash_seed: str) -> str:
        env = {**os.environ, "PYTHONHASHSEED": hash_seed, "PYTHONPATH": src}
        proc = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT],
            capture_output=True, text=True, env=env, timeout=300,
        )
        if proc.returncode != 0:
            raise RuntimeError(proc.stderr)
        return proc.stdout

    out_a = run("1")
    out_b = run("31337")
    h.check("sampler_cross_process_deterministic", out_a == out_b,
            "seeded tallies identical across interpreter invocations "
            "with different PYTHONHASHSEED")
    h.benchmarks["sampler_determinism"] = {
        "checksum": checksum(out_a),
        "hash_seeds": ["1", "31337"],
    }


def latest_baseline(before: str) -> tuple[str, dict] | None:
    """The newest committed ``BENCH_<date>.json`` strictly older than
    ``before`` (so a rerun never gates against its own output)."""
    root = Path(__file__).resolve().parent.parent
    for path in sorted(root.glob("BENCH_*.json"), reverse=True):
        if path.stem.removeprefix("BENCH_") >= before:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not payload.get("quick"):
            return path.name, payload
    return None


def bench_loadgen(h: Harness, cores: int) -> None:
    print("service loadgen — closed-loop submits, p50/p99 latency + QPS")
    from repro.service.loadgen import default_corpus, run_loadgen

    baseline = latest_baseline(datetime.date.today().isoformat())
    total = 24 if h.quick else 60
    concurrency = 4
    for backend in ("frozenset", "columnar"):
        corpus = default_corpus(total, samples=30, burn_in=5, backend=backend)
        report = run_loadgen(corpus, concurrency=concurrency)
        payload = report.as_dict()
        h.benchmarks[f"loadgen_{backend}"] = payload
        h.check(f"loadgen_{backend}_all_completed",
                report.completed == total and report.failed == 0,
                f"{report.completed}/{total} completed, {report.failed} failed")
        print(f"  loadgen[{backend}]: qps={payload['qps']} "
              f"p50={payload['latency_ms']['p50']}ms "
              f"p99={payload['latency_ms']['p99']}ms")

        # Regression gate: QPS must stay within 20% of the latest
        # committed baseline.  Only comparable when the host exposes the
        # same number of usable cores, and --quick rounds are too short
        # to gate on.
        base_entry = baseline[1]["benchmarks"].get(
            f"loadgen_{backend}") if baseline else None
        base_qps = base_entry.get("qps") if base_entry else None
        if not base_qps:
            payload["baseline"] = {"available": False}
            continue
        base_cores = baseline[1].get("host", {}).get("usable_cores")
        ratio = payload["qps"] / base_qps
        comparable = base_cores == cores and not h.quick
        payload["baseline"] = {
            "file": baseline[0], "qps": base_qps,
            "usable_cores": base_cores, "ratio": round(ratio, 3),
            "enforced": comparable,
        }
        if comparable:
            h.check(f"loadgen_{backend}_qps_regression", ratio >= 0.8,
                    f"qps={payload['qps']} vs baseline {base_qps} "
                    f"({baseline[0]}): {ratio:.2f}x, floor 0.80x")
        else:
            print(f"  loadgen[{backend}]: baseline {baseline[0]} "
                  f"({base_qps} qps) advisory — "
                  f"cores {base_cores} vs {cores}, quick={h.quick}")


def bench_supervisor(h: Harness, cores: int) -> None:
    print("worker supervisor — warm pool vs spawn-per-call dispatch")
    from repro.perf import prewarm, warm_pool_stats

    query, db = random_walk_query(cycle_graph(8), "n0", "n4")
    # Deliberately a *small* job in both modes: this bench measures
    # per-call dispatch overhead (process spawn + import vs warm
    # hand-off), which a long run would amortise into the noise.  The
    # workers=4 throughput story lives in bench_thm56.
    samples = 100
    burn_in = 10

    def run(persistent: bool):
        return evaluate_forever_mcmc(
            query, db, samples=samples, burn_in=burn_in, rng=SEED,
            parallel=ParallelConfig(workers=WORKERS, persistent=persistent))

    prewarm(WORKERS)  # the one-time spawn happens outside the timed region
    warm_s, warm = timed(lambda: run(True), h.rounds)
    spawn_s, spawned = timed(lambda: run(False), h.rounds)
    stats = warm_pool_stats()

    h.record("supervisor_warm_pool", warm_s,
             checksum({"positive": warm.positive, "samples": warm.samples}),
             samples=samples, burn_in=burn_in, pool=stats)
    h.record("supervisor_spawn_per_call", spawn_s,
             checksum({"positive": spawned.positive,
                       "samples": spawned.samples}),
             samples=samples, burn_in=burn_in)
    # Both paths use identical seeds, chunking, and merge order, so the
    # warm pool must reproduce spawn-per-call tallies bit-for-bit.
    h.check("supervisor_matches_spawn_per_call",
            (warm.positive, warm.samples) == (spawned.positive, spawned.samples),
            f"warm positive={warm.positive}, spawn-per-call={spawned.positive}")
    h.check("supervisor_pool_healthy",
            stats["alive"] == WORKERS and stats["restarts"] == 0,
            f"alive={stats['alive']}/{WORKERS} restarts={stats['restarts']}")
    # On a multi-core runner the warm pool also overlaps worker start-up,
    # so the acceptance floor rises from 1.2x to 1.5x when >= 2 cores
    # are usable; a single-core host can only express dispatch overhead.
    floor = 1.5 if cores >= 2 else 1.2
    h.target("supervisor_warm_vs_spawn",
             spawn_s / warm_s if warm_s else float("inf"),
             floor, enforced=not h.quick,
             note=f"same chunks and seeds on {cores} usable core(s); warm "
                  "dispatch skips per-call process spawn + import "
                  "(floor 1.2x on one core, 1.5x on multi-core runners)")


def bench_solver(h: Harness) -> None:
    print("exact solve — Bareiss vs Gauss-Jordan reference")
    n = 24 if h.quick else 60
    rng = random.Random(7)
    a = [[Fraction(rng.randint(-9, 9), rng.randint(1, 7)) for _ in range(n)]
         for _ in range(n)]
    for i in range(n):
        a[i][i] += Fraction(50)
    b = [[Fraction(rng.randint(-9, 9), rng.randint(1, 5))] for _ in range(n)]

    bareiss_s, x_bareiss = timed(lambda: solve_exact(a, b), h.rounds)
    gauss_s, x_gauss = timed(lambda: solve_exact_gauss(a, b), h.rounds)
    h.record("solve_bareiss", bareiss_s, checksum(x_bareiss), n=n)
    h.record("solve_gauss", gauss_s, checksum(x_gauss), n=n)
    h.check("bareiss_matches_gauss", x_bareiss == x_gauss,
            f"{n}x{n} dense Fraction system, entry-for-entry equality")
    h.check("bareiss_identity_sanity",
            solve_exact(identity(3), [[Fraction(1)], [Fraction(2)], [Fraction(3)]])
            == [[Fraction(1)], [Fraction(2)], [Fraction(3)]],
            "I . x = b returns b")
    h.target("bareiss_vs_gauss", gauss_s / bareiss_s if bareiss_s else float("inf"),
             1.0, enforced=False, note="advisory: exactness is the contract")


def _birth_death(n: int, down: Fraction):
    """Drifted gambler's ruin: absorbing walls at 0 and n."""
    from repro.markov.chain import chain_from_edges

    edges = []
    for i in range(1, n):
        edges.append((i, i - 1, down))
        edges.append((i, i + 1, 1 - down))
    edges.append((0, 0, Fraction(1)))
    edges.append((n, n, Fraction(1)))
    return chain_from_edges(edges)


def _ruin_probability(n: int, k: int, down: Fraction) -> Fraction:
    """Closed-form P[hit 0 before n | start k]: (r^k - r^n) / (1 - r^n)
    with r = down/up — the exact Fraction reference at sizes where the
    dense solver is infeasible."""
    r = down / (1 - down)
    return (r ** k - r ** n) / (1 - r ** n)


def bench_sparse(h: Harness) -> None:
    print("sparse certified solver — CSR assembly + (eps, delta) certificates")
    from repro.errors import SolveRefusedError
    from repro.markov.absorption import long_run_event_probability
    from repro.sparse import (
        evaluate_forever_sparse,
        solve_long_run,
        sparse_chain_from_markov,
    )

    epsilon = 1e-9

    # (1) Kernel-streamed assembly + solve vs the exact evaluator.
    query, db = random_walk_query(cycle_graph(8), "n0", "n4")
    kernel_s, certified = timed(
        lambda: evaluate_forever_sparse(query, db, epsilon=epsilon), h.rounds)
    exact = float(evaluate_forever_exact(query, db).probability)
    cert = certified.certificate
    err = abs(certified.probability - exact)
    h.record("sparse_kernel_cycle8", kernel_s,
             checksum({"interval": [repr(x) for x in certified.interval]}),
             states=certified.states_explored,
             certificate=cert.as_dict())
    h.check("sparse_kernel_within_certificate",
            cert.satisfies() and err <= cert.bound <= epsilon,
            f"|answer - exact| = {err:.3e} <= bound = {cert.bound:.3e} "
            f"<= eps = {epsilon:.0e}")

    # (2) An unreachable tolerance must be *refused*, never mis-answered.
    try:
        evaluate_forever_sparse(query, db, epsilon=1e-300)
        refused, detail = False, "no refusal raised"
    except SolveRefusedError as exc:
        refused = exc.details["certified_bound"] > 1e-300
        detail = (f"refused: certified bound "
                  f"{exc.details['certified_bound']:.3e} > eps=1e-300")
    h.check("sparse_unreachable_tolerance_refused", refused, detail)

    # (3) Closed-form reference validated against the dense Fraction
    # solver at a dense-feasible size; the dense wall-clock also anchors
    # the cubic extrapolation below.
    down = Fraction(55, 100)
    n_dense = 100 if h.quick else 200
    dense_chain = _birth_death(n_dense, down)
    dense_s, dense_exact = timed(lambda: long_run_event_probability(
        dense_chain, n_dense // 2, lambda s: s == 0), 1)
    h.record("sparse_dense_reference", dense_s,
             checksum({"probability": dense_exact}), n=n_dense, rounds=1)
    h.check("sparse_closed_form_matches_dense",
            _ruin_probability(n_dense, n_dense // 2, down) == dense_exact,
            f"gambler's-ruin closed form == dense Fraction solve at "
            f"n={n_dense}")

    # (4) The large chain: certified solve at 10^4 states (2·10^3 under
    # --quick), gated against the closed form.
    n_large = 2_000 if h.quick else 10_000
    chain = _birth_death(n_large, down)
    sparse = sparse_chain_from_markov(
        chain, n_large // 2, event=lambda s: s == 0)
    solve_rounds = max(1, h.rounds - 2)
    large_s, (value, large_cert, structure) = timed(
        lambda: solve_long_run(sparse, epsilon=epsilon), solve_rounds)
    exact_large = float(_ruin_probability(n_large, n_large // 2, down))
    err_large = abs(value - exact_large)
    h.record("sparse_certified_large", large_s,
             checksum({"interval": [repr(value - large_cert.bound),
                                    repr(value + large_cert.bound)]}),
             n=n_large, rounds=solve_rounds, structure=structure,
             certificate=large_cert.as_dict())
    h.check("sparse_large_within_certificate",
            large_cert.satisfies() and err_large <= large_cert.bound <= epsilon,
            f"n={n_large}: |answer - exact| = {err_large:.3e} <= bound = "
            f"{large_cert.bound:.3e} <= eps = {epsilon:.0e}")

    # The dense Fraction solver is O(n^3) with bignum growth on top;
    # extrapolating its n_dense wall-clock cubically (an undercount) to
    # n_large shows why the sparse rung exists at all.
    dense_projected = dense_s * (n_large / n_dense) ** 3
    h.target("sparse_vs_dense_projected",
             dense_projected / large_s if large_s else float("inf"),
             50.0, enforced=not h.quick,
             note=f"dense O(n^3) extrapolated {n_dense}->{n_large} "
                  f"({dense_projected:.0f}s projected) vs certified sparse "
                  f"solve ({large_s:.2f}s median)")


def _walker_family(quick: bool):
    """Independent lazy walkers, one relation per walker: the static
    planner splits them, monolithic evaluation pays the product chain."""
    return ((2, 4), (3, 3), (2, 6)) if quick else ((2, 6), (3, 4), (2, 10))


def _walker_problem(walkers: int, size: int):
    from repro.core import ForeverQuery, Interpretation, TupleIn
    from repro.core.events import AndEvent
    from repro.relational import (
        Database, Relation, join, project, rel, rename, repair_key,
    )

    edges = cycle_graph(size).edge_relation()
    relations = {}
    queries = {}
    factors = []
    for i in range(walkers):
        walker, graph = f"W{i}", f"E{i}"
        relations[walker] = Relation(("I",), [("n0",)])
        relations[graph] = edges
        queries[walker] = rename(
            project(
                repair_key(join(rel(walker), rel(graph)), ("I",), "P"), "J"
            ),
            J="I",
        )
        factors.append(TupleIn(walker, (f"n{size // 2}",)))
    event = factors[0]
    for factor in factors[1:]:
        event = AndEvent(event, factor)
    return ForeverQuery(Interpretation(queries), event), Database(relations)


def bench_partition(h: Harness) -> None:
    print("partition planner — static decomposition vs monolithic exact")
    from repro.analysis.partition import compute_partition_plan
    from repro.runtime import evaluate_partitioned

    speedups = []
    plan_s = part_s = 0.0
    for walkers, size in _walker_family(h.quick):
        label = f"{walkers}x{size}"
        query, db = _walker_problem(walkers, size)

        plan_s, plan = timed(
            lambda: compute_partition_plan(
                query.kernel, database=db, semantics="forever"
            ),
            h.rounds,
        )
        h.check(f"partition_plan_splits_{label}",
                plan.splittable and len(plan.components) == walkers,
                f"{len(plan.components)} components for {walkers} walkers "
                f"(planned in {plan_s * 1e3:.1f} ms)")

        whole_s, whole = timed(
            lambda: evaluate_forever_exact(query, db, max_states=200_000),
            h.rounds,
        )
        part_s, part = timed(
            lambda: evaluate_partitioned(
                query, db, plan, max_states=200_000
            ),
            h.rounds,
        )
        h.check(f"partition_bit_identical_{label}",
                part.probability == whole.probability
                and part.method == "partition-exact",
                f"partitioned == monolithic == {whole.probability} "
                f"({part.states_explored} vs {whole.states_explored} states)")
        speedup = whole_s / part_s if part_s else float("inf")
        speedups.append(speedup)
        h.record(f"partition_{label}", part_s,
                 checksum({"probability": part.probability}),
                 monolithic_s=round(whole_s, 6),
                 states=part.states_explored,
                 monolithic_states=whole.states_explored,
                 speedup=round(speedup, 3))

    # Pruning: an event touching one walker must skip the others.
    query, db = _walker_problem(3, 4)
    from repro.core import ForeverQuery, TupleIn
    pruned_query = ForeverQuery(query.kernel, TupleIn("W0", ("n2",)))
    result = evaluate_partitioned(pruned_query, db, max_states=200_000)
    h.check("partition_prunes_untouched_components",
            len(result.details["pruned"]) == 2,
            f"event on W0 pruned {result.details['pruned']}")

    h.record("partition_plan_3x4", plan_s,
             checksum({"components": 3}), note="planner wall-clock only")
    median_speedup = statistics.median(speedups)
    h.target("partition_family_median", median_speedup, 2.0,
             enforced=not h.quick,
             note="partitioned exact vs monolithic exact, family median")


def bench_tracing(h: Harness) -> None:
    print("observability — disabled-tracer overhead + per-phase timings")
    from repro.obs import MemorySink, Tracer
    from repro.runtime import RunContext

    query, db = random_walk_query(cycle_graph(8), "n0", "n4")
    samples = 200 if h.quick else 1_000
    burn_in = 10 if h.quick else 25
    rounds = h.rounds * 2  # the <2% bound needs tighter timing than 5 rounds

    def run(context=None):
        return evaluate_forever_mcmc(
            query, db, samples=samples, burn_in=burn_in, rng=SEED,
            context=context)

    # Interleave the variants round-by-round and take the per-variant
    # minimum: frequency scaling then biases all the same way instead of
    # whichever variant happened to run first.
    base_best = disabled_best = profiled_best = float("inf")
    base = disabled = profiled = None
    for _ in range(rounds):
        start = time.perf_counter()
        base = run()
        base_best = min(base_best, time.perf_counter() - start)
        context = RunContext()  # constructed outside the timed region
        start = time.perf_counter()
        disabled = run(context)
        disabled_best = min(disabled_best, time.perf_counter() - start)
        # Profiling on: a live in-memory tracer (what `--trace` and the
        # service's per-job tracing use), ledger included.
        profiled_context = RunContext(tracer=Tracer(MemorySink()))
        start = time.perf_counter()
        profiled = run(profiled_context)
        profiled_best = min(profiled_best, time.perf_counter() - start)

    def traced():
        context = RunContext(tracer=Tracer(MemorySink()))
        result = run(context)
        context.finish()
        return result, context

    traced_s, (traced_result, traced_context) = timed(traced, h.rounds)
    phases = {
        name: timing.as_dict()
        for name, timing in traced_context.report().phases.items()
    }

    h.record("tracing_baseline", base_best,
             checksum({"positive": base.positive, "samples": base.samples}),
             samples=samples, burn_in=burn_in)
    h.record("tracing_disabled", disabled_best,
             checksum({"positive": disabled.positive,
                       "samples": disabled.samples}),
             samples=samples, burn_in=burn_in)
    h.record("tracing_enabled", traced_s,
             checksum({"positive": traced_result.positive,
                       "samples": traced_result.samples}),
             samples=samples, burn_in=burn_in, phases=phases)

    h.record("tracing_profiled", profiled_best,
             checksum({"positive": profiled.positive,
                       "samples": profiled.samples}),
             samples=samples, burn_in=burn_in)

    h.check("tracing_does_not_perturb_results",
            (base.positive, disabled.positive, profiled.positive,
             traced_result.positive)
            == (base.positive,) * 4,
            f"positives: baseline={base.positive} disabled={disabled.positive} "
            f"profiled={profiled.positive} traced={traced_result.positive}")
    h.check("traced_run_records_phases", "sample" in phases,
            f"phases recorded: {sorted(phases)}")
    # < 2% disabled-tracer overhead <=> speed ratio stays above 0.98.
    h.target("tracing_disabled_overhead",
             base_best / disabled_best if disabled_best else float("inf"),
             0.98, enforced=not h.quick,
             note="no-op tracer + RunContext vs bare evaluator; "
                  "target 0.98x = < 2% overhead")
    # < 3% profiling-on overhead <=> speed ratio stays above 0.97.
    h.target("tracing_profiled_overhead",
             base_best / profiled_best if profiled_best else float("inf"),
             0.97, enforced=not h.quick,
             note="live tracer + ledger (profiling on) vs bare evaluator; "
                  "target 0.97x = < 3% overhead")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller workloads, fewer rounds")
    parser.add_argument("--output", type=Path, default=None,
                        help="output path (default: BENCH_<date>.json in repo root)")
    args = parser.parse_args(argv)

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    h = Harness(quick=args.quick)
    print(f"run_benchmarks: quick={args.quick} rounds={h.rounds} cores={cores}")

    bench_chain_build(h)
    bench_thm43(h)
    bench_thm56(h, cores)
    bench_kernel(h)
    bench_determinism(h)
    bench_loadgen(h, cores)
    bench_supervisor(h, cores)
    bench_solver(h)
    bench_sparse(h)
    bench_partition(h)
    bench_tracing(h)

    report = {
        "date": datetime.date.today().isoformat(),
        "quick": args.quick,
        "seed": SEED,
        "cores": cores,
        "python": platform.python_version(),
        # Numbers are only comparable across runs on comparable hosts;
        # record enough of the host to tell.
        "host": {
            "python_version": platform.python_version(),
            "python_implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": os.cpu_count(),
            "usable_cores": cores,
        },
        "benchmarks": h.benchmarks,
        "targets": h.targets,
        "checks": h.checks,
        "passed": not h.failed,
    }
    output = args.output
    if output is None:
        output = Path(__file__).resolve().parent.parent / (
            f"BENCH_{report['date']}.json")
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if h.failed:
        print("FAILED: checksum drift or enforced speedup target missed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
