"""Experiment T1.E5 — Table 1 row 3, column "absolute approximation"
(Theorem 5.1: NP-hard).

Regenerates the non-inflationary reduction end-to-end:

1. Lemma 5.2 / Proposition 5.3 verification — the exact long-run
   probability is 1 for satisfiable formulas and 0 for unsatisfiable
   ones (a 0/1 law, so any absolute approximation with ε < 1/2 decides
   3-SAT);
2. the simulated convergence — trajectory occupancy of ``a ∈ done``
   rising to 1 (satisfiable) vs pinned at 0 (unsatisfiable);
3. the decision procedure against DPLL ground truth.
"""

from __future__ import annotations

from repro.reductions import (
    CNFFormula,
    build_thm51_instance,
    decide_sat_via_absolute_approximation,
    simulated_probability,
    thm51_exact_probability,
)

from benchmarks.conftest import format_table

SAT_FORMULAS = {
    "sat-a": CNFFormula(2, [(1, 2)]),
    "sat-b": CNFFormula(2, [(1,), (2,)]),
}
UNSAT_FORMULAS = {
    "unsat-a": CNFFormula(2, [(1,), (-1,)]),
    "unsat-b": CNFFormula(2, [(1, 2), (-1, 2), (1, -2), (-1, -2)]),
}


def test_lemma52_zero_one_law(benchmark, report):
    rows = []
    for name, formula in {**SAT_FORMULAS, **UNSAT_FORMULAS}.items():
        instance = build_thm51_instance(formula)
        result = thm51_exact_probability(instance)
        expected = instance.expected_probability()
        assert result.probability == expected
        rows.append(
            [
                name,
                formula.is_satisfiable(),
                str(result.probability),
                result.states_explored,
                result.details["leaf_sccs"],
            ]
        )

    benchmark.pedantic(
        lambda: thm51_exact_probability(build_thm51_instance(UNSAT_FORMULAS["unsat-a"])),
        rounds=2,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E5 — Lemma 5.2: exact long-run Pr[a ∈ done] is a 0/1 law",
            ["formula", "satisfiable", "exact p", "chain states", "leaf SCCs"],
            rows,
        )
    )


def test_simulated_convergence_series(benchmark, report):
    instance_sat = build_thm51_instance(SAT_FORMULAS["sat-b"])
    instance_unsat = build_thm51_instance(UNSAT_FORMULAS["unsat-a"])

    rows = []
    final_sat = 0.0
    for steps in (50, 200, 800, 3200):
        occupancy_sat = simulated_probability(instance_sat, steps, rng=51)
        occupancy_unsat = simulated_probability(instance_unsat, steps, rng=51)
        assert occupancy_unsat == 0.0
        final_sat = occupancy_sat
        rows.append([steps, f"{occupancy_sat:.4f}", f"{occupancy_unsat:.4f}"])
    assert final_sat > 0.9  # converging to the Lemma 5.2 value 1

    benchmark.pedantic(
        lambda: simulated_probability(instance_sat, 400, rng=51),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E5 — simulated occupancy of a ∈ done vs walk length",
            ["steps", "satisfiable instance", "unsatisfiable instance"],
            rows,
        )
    )


def test_sat_decision_procedure(benchmark, report):
    rows = []
    for name, formula in {**SAT_FORMULAS, **UNSAT_FORMULAS}.items():
        decided = decide_sat_via_absolute_approximation(formula, steps=1500, rng=3)
        truth = formula.is_satisfiable()
        assert decided == truth
        rows.append([name, truth, decided, "agree"])

    benchmark.pedantic(
        lambda: decide_sat_via_absolute_approximation(
            SAT_FORMULAS["sat-a"], steps=600, rng=3
        ),
        rounds=2,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E5 — deciding 3-SAT through an absolute ε < 1/2 approximation",
            ["formula", "DPLL satisfiable", "reduction verdict", "status"],
            rows,
        )
    )
