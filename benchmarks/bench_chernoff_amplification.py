"""Experiment A3 — Section 2.1 / Theorem 4.1: BPP error amplification.

The Chernoff majority-vote argument the paper uses to close Theorem 4.1:
a randomized decider with per-run error δ < 1/2, repeated N times with a
majority vote, is wrong with probability ≤ exp(−N(1−δ)β²/2).
Regenerated: the planned N for target errors Γ (logarithmic in 1/Γ) and
the measured majority-vote failure rate against the bound.
"""

from __future__ import annotations

import random

from repro.probability import (
    majority_vote_failure_probability,
    majority_vote_runs,
)

from benchmarks.conftest import format_table


def test_planned_runs_logarithmic(benchmark, report):
    per_run_error = 0.3
    rows = []
    previous = None
    for gamma in (1e-1, 1e-2, 1e-4, 1e-8):
        runs = majority_vote_runs(per_run_error, gamma)
        bound = majority_vote_failure_probability(per_run_error, runs)
        assert bound <= gamma
        if previous is not None:
            # halving log(Γ) at most doubles N (log scaling)
            assert runs <= 2 * previous + 2
        previous = runs
        rows.append([f"{gamma:.0e}", runs, f"{bound:.2e}"])

    benchmark.pedantic(
        lambda: majority_vote_runs(per_run_error, 1e-6), rounds=10, iterations=100
    )

    report(
        *format_table(
            "A3 — majority-vote amplification (per-run error 0.3)",
            ["target error Γ", "planned runs N", "Chernoff bound at N"],
            rows,
        )
    )


def test_measured_failure_rate_below_bound(benchmark, report):
    per_run_error = 0.35
    rng = random.Random(41)
    rows = []

    def failure_rate(runs: int, trials: int) -> float:
        wrong = 0
        for _ in range(trials):
            votes = sum(rng.random() >= per_run_error for _ in range(runs))
            wrong += votes <= runs // 2
        return wrong / trials

    for runs in (1, 5, 15, 41):
        measured = failure_rate(runs, trials=2000)
        bound = majority_vote_failure_probability(per_run_error, runs)
        assert measured <= bound + 0.05
        rows.append([runs, f"{measured:.4f}", f"{bound:.4f}"])

    benchmark.pedantic(lambda: failure_rate(15, 500), rounds=3, iterations=1)

    report(
        *format_table(
            "A3 — measured majority-vote failure rate vs Chernoff bound "
            "(per-run error 0.35, 2000 trials)",
            ["runs N", "measured failure", "Chernoff bound"],
            rows,
        )
    )
