"""Experiment T1.E3 — Table 1 rows 1–2, column "absolute approximation"
(Theorem 4.3: randomized absolute approximation in PTIME).

Regenerated series:

1. runtime of the sampler at fixed (ε, δ) as the database (graph) grows
   — polynomial, near-linear per sample;
2. measured additive error against the exact result at the
   Chernoff-planned sample count m = ln(1/δ)/(4ε²) — within ε;
3. the error-vs-samples convergence curve (∝ 1/√m).
"""

from __future__ import annotations

import math
import time

from repro.core import evaluate_inflationary_exact, evaluate_inflationary_sampling
from repro.probability import paper_sample_count
from repro.workloads import layered_dag, reachability_query

from benchmarks.conftest import format_table

#: Graph sizes of the runtime sweep (nodes ≈ layers × width + 1).
SIZES = ((2, 2), (3, 3), (4, 4), (5, 6), (6, 8))


def test_runtime_polynomial_in_database(benchmark, report):
    samples = 150
    rows = []
    timings = []
    for layers, width in SIZES:
        graph = layered_dag(layers, width, rng=layers * 10 + width)
        query, db = reachability_query(graph, "v0_0", "sink")
        start = time.perf_counter()
        result = evaluate_inflationary_sampling(query, db, samples=samples, rng=3)
        elapsed = time.perf_counter() - start
        timings.append((len(graph.nodes), elapsed))
        assert result.estimate == 1.0  # the sink is always reached
        rows.append(
            [
                len(graph.nodes),
                len(graph.edges),
                samples,
                f"{result.details['mean_steps_per_sample']:.1f}",
                f"{elapsed * 1e3:.0f} ms",
            ]
        )

    # Shape: time grows polynomially — compare growth against size ratio
    # cubed (a generous polynomial envelope, far under exponential).
    (n0, t0), (n1, t1) = timings[0], timings[-1]
    assert t1 / t0 < (n1 / n0) ** 4

    graph = layered_dag(*SIZES[1], rng=13)
    query, db = reachability_query(graph, "v0_0", "sink")
    benchmark.pedantic(
        lambda: evaluate_inflationary_sampling(query, db, samples=50, rng=3),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E3 — Theorem 4.3 sampler runtime vs database size (150 samples)",
            ["nodes", "edges", "samples", "mean steps/sample", "time"],
            rows,
        )
    )


def test_chernoff_guarantee(benchmark, report):
    graph = layered_dag(3, 2, rng=7)
    query, db = reachability_query(graph, "v0_0", "v2_0")
    exact = float(evaluate_inflationary_exact(query, db).probability)

    rows = []
    for epsilon in (0.1, 0.05):
        delta = 0.05
        planned = paper_sample_count(epsilon, delta)
        result = evaluate_inflationary_sampling(
            query, db, epsilon=epsilon, delta=delta, rng=11
        )
        error = abs(result.estimate - exact)
        assert error <= epsilon
        rows.append(
            [epsilon, delta, planned, f"{result.estimate:.4f}", f"{exact:.4f}", f"{error:.4f}"]
        )

    benchmark.pedantic(
        lambda: evaluate_inflationary_sampling(query, db, samples=300, rng=11),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E3 — Chernoff (ε, δ) guarantee, m = ln(1/δ)/(4ε²)",
            ["ε", "δ", "planned m", "estimate", "exact", "|error|"],
            rows,
        )
    )


def test_error_convergence_curve(benchmark, report):
    graph = layered_dag(3, 2, rng=7)
    query, db = reachability_query(graph, "v0_0", "v2_0")
    exact = float(evaluate_inflationary_exact(query, db).probability)

    rows = []
    errors = {}
    repeats = 12
    for samples in (25, 100, 400, 1600):
        total_error = 0.0
        for repeat in range(repeats):
            result = evaluate_inflationary_sampling(
                query, db, samples=samples, rng=1000 * samples + repeat
            )
            total_error += abs(result.estimate - exact)
        mean_error = total_error / repeats
        errors[samples] = mean_error
        rows.append(
            [samples, f"{mean_error:.4f}", f"{1.0 / math.sqrt(samples):.4f}"]
        )

    # Shape: quadrupling the samples should roughly halve the error.
    assert errors[1600] < errors[25]

    benchmark.pedantic(
        lambda: evaluate_inflationary_sampling(query, db, samples=100, rng=0),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E3 — mean |error| vs sample count (expected ∝ 1/√m)",
            ["samples m", "mean |error|", "1/√m reference"],
            rows,
        )
    )
