"""Experiment T1.E6 — Table 1 row 3, positive side (Theorem 5.6:
absolute approximation in time polynomial in input size and mixing time).

Regenerated series:

1. measured TV mixing times t(ε) across graph families — fast (complete)
   vs slow (lazy cycle, barbell) — with the spectral bounds alongside;
2. sampler cost: kernel applications per run = samples × t(ε), i.e.
   linear in the mixing time at fixed accuracy;
3. accuracy vs burn-in: an under-mixed sampler is biased, a t(ε)-mixed
   one lands within ε of the exact stationary answer;
4. the Section 5.1 convergence heuristic vs the exact mixing time.
"""

from __future__ import annotations

from repro.core import (
    adaptive_burn_in,
    evaluate_forever_exact,
    evaluate_forever_mcmc,
)
from repro.markov import (
    mixing_time,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    relaxation_time,
)
from repro.workloads import barbell_graph, complete_graph, cycle_graph, random_walk_query

from benchmarks.conftest import format_table


FAMILIES = {
    "complete-8": complete_graph(8),
    "cycle-8": cycle_graph(8),
    "cycle-16": cycle_graph(16),
    "barbell-4": barbell_graph(4),
}


def test_mixing_times_across_families(benchmark, report):
    rows = []
    measured = {}
    for name, graph in FAMILIES.items():
        chain = graph.to_markov_chain()
        t = mixing_time(chain, epsilon=0.1)
        measured[name] = t
        rows.append(
            [
                name,
                chain.size,
                t,
                f"{mixing_time_lower_bound(chain, 0.1):.1f}",
                f"{mixing_time_upper_bound(chain, 0.1):.1f}",
                f"{relaxation_time(chain):.1f}",
            ]
        )
    # Shape: the complete graph mixes essentially instantly; the longer
    # cycle is slower than the shorter one; the bottleneck barbell is
    # slower than the complete graph by a wide margin.
    assert measured["complete-8"] <= 2
    assert measured["cycle-16"] > measured["cycle-8"]
    assert measured["barbell-4"] > 5 * measured["complete-8"]

    benchmark.pedantic(
        lambda: mixing_time(FAMILIES["cycle-8"].to_markov_chain(), epsilon=0.1),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E6 — TV mixing times t(0.1) with spectral bounds",
            ["family", "states", "t(0.1)", "lower bound", "upper bound", "t_rel"],
            rows,
        )
    )


def test_sampler_cost_linear_in_mixing_time(benchmark, report):
    samples = 120
    rows = []
    costs = {}
    for name in ("complete-8", "cycle-8", "cycle-16"):
        graph = FAMILIES[name]
        query, db = random_walk_query(graph, graph.nodes[0], graph.nodes[1])
        t = mixing_time(graph.to_markov_chain(), epsilon=0.1)
        kernel_applications = samples * t
        costs[name] = kernel_applications
        exact = float(evaluate_forever_exact(query, db).probability)
        result = evaluate_forever_mcmc(query, db, samples=samples, burn_in=t, rng=56)
        rows.append(
            [
                name,
                t,
                samples,
                kernel_applications,
                f"{result.estimate:.3f}",
                f"{exact:.3f}",
            ]
        )
    assert costs["cycle-16"] > costs["cycle-8"] > costs["complete-8"]

    graph = FAMILIES["cycle-8"]
    query, db = random_walk_query(graph, graph.nodes[0], graph.nodes[1])
    benchmark.pedantic(
        lambda: evaluate_forever_mcmc(query, db, samples=60, burn_in=20, rng=56),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E6 — sampler cost = samples × t(ε) (polynomial in mixing time)",
            ["family", "t(0.1)", "samples", "kernel applications", "estimate", "exact"],
            rows,
        )
    )


def test_accuracy_vs_burn_in(benchmark, report):
    graph = cycle_graph(8)
    query, db = random_walk_query(graph, "n0", "n4")
    exact = float(evaluate_forever_exact(query, db).probability)
    t_mix = mixing_time(graph.to_markov_chain(), epsilon=0.05)

    rows = []
    errors = {}
    for burn_in in (0, 2, t_mix // 2, t_mix, 2 * t_mix):
        result = evaluate_forever_mcmc(query, db, samples=600, burn_in=burn_in, rng=7)
        error = abs(result.estimate - exact)
        errors[burn_in] = error
        rows.append([burn_in, f"{result.estimate:.4f}", f"{exact:.4f}", f"{error:.4f}"])
    # under-mixed estimates are badly biased; mixed ones are accurate
    assert errors[0] > 0.1
    assert errors[t_mix] < 0.05
    assert errors[2 * t_mix] < 0.05

    benchmark.pedantic(
        lambda: evaluate_forever_mcmc(query, db, samples=200, burn_in=t_mix, rng=7),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            f"T1.E6 — accuracy vs burn-in on cycle-8 (t(0.05) = {t_mix})",
            ["burn-in", "estimate", "exact", "|error|"],
            rows,
        )
    )


def test_adaptive_heuristic_vs_exact_mixing(benchmark, report):
    rows = []
    for name in ("complete-8", "cycle-8"):
        graph = FAMILIES[name]
        query, db = random_walk_query(graph, graph.nodes[0], graph.nodes[1])
        t = mixing_time(graph.to_markov_chain(), epsilon=0.1)
        heuristic = adaptive_burn_in(
            query, db, rng=9, walkers=64, window=12, tolerance=0.1
        )
        rows.append([name, t, heuristic])

    graph = FAMILIES["complete-8"]
    query, db = random_walk_query(graph, graph.nodes[0], graph.nodes[1])
    benchmark.pedantic(
        lambda: adaptive_burn_in(query, db, rng=9, walkers=32, window=10, tolerance=0.12),
        rounds=2,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E6 — Section 5.1 convergence heuristic vs exact t(0.1)",
            ["family", "exact t(0.1)", "heuristic burn-in"],
            rows,
        )
    )
