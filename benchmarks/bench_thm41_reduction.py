"""Experiment T1.E2 — Table 1 rows 1–2, column "relative approximation"
(Theorem 4.1: NP-hard).

Regenerates the reduction end-to-end:

1. Lemma 4.2 verification — for 3-CNF formulas F, the exact query
   probability equals ♯models(F)/2⁁n (≥ 2⁻ⁿ iff satisfiable, 0
   otherwise), on both reduction variants;
2. the decision procedure — SAT decided through (a stand-in for) a
   relative approximator, against DPLL ground truth;
3. the separation — an absolute (ε, δ) sampler on the same instances
   cannot distinguish p = 2⁻ⁿ from p = 0 until the sample count reaches
   the order of 2ⁿ, which is why the relative column is hard while the
   absolute one is easy.
"""

from __future__ import annotations

from fractions import Fraction

from repro.reductions import (
    build_thm41_instance,
    decide_sat_via_relative_approximation,
    random_3cnf,
    satisfiable_formula,
    unsatisfiable_formula,
)
from repro.reductions.thm41 import exact_probability, sampled_probability

from benchmarks.conftest import format_table


def test_lemma42_verification(benchmark, report):
    formulas = {
        "sat-canonical": satisfiable_formula(4),
        "unsat-canonical": unsatisfiable_formula(4),
        "random-1": random_3cnf(4, 5, rng=41),
        "random-2": random_3cnf(4, 8, rng=42),
    }

    rows = []
    for name, formula in formulas.items():
        for variant in ("2'", "2"):
            instance = build_thm41_instance(formula, variant)
            result = exact_probability(instance)
            expected = instance.expected_probability()
            assert result.probability == expected
            if formula.is_satisfiable():
                assert result.probability >= Fraction(1, 2**formula.num_variables)
            else:
                assert result.probability == 0
            rows.append(
                [
                    name,
                    variant,
                    formula.count_models(),
                    str(result.probability),
                    "ok",
                ]
            )

    benchmark.pedantic(
        lambda: exact_probability(build_thm41_instance(formulas["random-1"])),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E2 — Lemma 4.2: p = ♯models/2ⁿ on both reduction variants",
            ["formula", "variant", "♯models", "exact p", "p == ♯models/2ⁿ"],
            rows,
        )
    )


def test_sat_decision_procedure(benchmark, report):
    cases = [("sat-canonical", satisfiable_formula(3)), ("unsat-canonical", unsatisfiable_formula(3))]
    cases += [(f"random-{seed}", random_3cnf(3, 4 + seed, rng=seed)) for seed in range(4)]

    rows = []
    correct = 0
    trials = [formula for _name, formula in cases]
    for name, formula in cases:
        decided = decide_sat_via_relative_approximation(formula)
        truth = formula.is_satisfiable()
        correct += decided == truth
        rows.append([name, truth, decided, decided == truth])
    assert correct == len(rows)

    benchmark.pedantic(
        lambda: decide_sat_via_relative_approximation(trials[0]),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E2 — deciding 3-SAT through relative approximation (Thm 4.1)",
            ["formula", "DPLL satisfiable", "reduction verdict", "agree"],
            rows,
        )
    )


def test_absolute_sampler_blind_to_rare_positives(benchmark, report):
    """Samplers at practical sample counts return an estimate of 0 for
    satisfiable formulas with tiny p — fine for the absolute column,
    fatal for the relative one."""
    from repro.reductions import CNFFormula

    # unit clauses force the unique all-true model: p = 2^-6 = 1/64
    formula = CNFFormula(6, [(i,) for i in range(1, 7)])
    instance = build_thm41_instance(formula)
    p = float(instance.expected_probability())

    rows = []
    zero_at_small_counts = False
    for samples in (8, 32, 128, 512):
        result = sampled_probability(instance, samples=samples, rng=1)
        if samples <= 8 and result.estimate == 0.0:
            zero_at_small_counts = True
        rows.append(
            [
                samples,
                f"{result.estimate:.4f}",
                f"{p:.4f}",
                "yes" if result.estimate > 0 else "NO",
            ]
        )
    assert zero_at_small_counts, "tiny sample counts should miss the rare event"

    benchmark.pedantic(
        lambda: sampled_probability(instance, samples=64, rng=1),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E2 — absolute sampling vs rare positives (p = 1/64): "
            "relative information needs ~1/p samples",
            ["samples", "estimate", "true p", "detects p > 0"],
            rows,
        )
    )
