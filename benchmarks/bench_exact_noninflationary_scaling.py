"""Experiment T1.E4 — Table 1 row 3, column "exact computation"
(Proposition 5.4 / Theorem 5.5: (2-)EXPTIME).

Regenerated series:

1. the induced database-state Markov chain and the runtime of exact
   evaluation as the walker count grows — the state space is the
   *product* of per-walker positions, so it explodes exponentially in
   the number of independent walkers (the exact evaluator's honest
   exponential);
2. the irreducible fast path (Prop 5.4) vs the SCC-DAG general path
   (Thm 5.5) on the same graph family.
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    build_state_chain,
    evaluate_forever_exact,
)
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import cycle_graph, two_component_graph

from benchmarks.conftest import format_table


def _walk_step():
    return rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )


def _multi_walker_db(walkers: int, component_size: int):
    graph = two_component_graph(component_size, components=walkers)
    starts = [(f"g{c}_n0",) for c in range(walkers)]
    return Database({"C": Relation(("I",), starts), "E": graph.edge_relation()})


def test_state_space_exponential_in_walkers(benchmark, report):
    component_size = 3
    rows = []
    timings = {}
    for walkers in (1, 2, 3):
        db = _multi_walker_db(walkers, component_size)
        kernel = Interpretation({"C": _walk_step()})
        query = ForeverQuery(kernel, TupleIn("C", ("g0_n1",)))
        start = time.perf_counter()
        result = evaluate_forever_exact(query, db, max_states=100_000)
        elapsed = time.perf_counter() - start
        timings[walkers] = elapsed
        assert result.states_explored == component_size**walkers
        assert result.probability == Fraction(1, component_size)
        rows.append(
            [
                walkers,
                component_size**walkers,
                str(result.probability),
                f"{elapsed * 1e3:.1f} ms",
            ]
        )

    assert timings[3] > timings[1]

    db = _multi_walker_db(2, component_size)
    kernel = Interpretation({"C": _walk_step()})
    query = ForeverQuery(kernel, TupleIn("C", ("g0_n1",)))
    benchmark.pedantic(
        lambda: evaluate_forever_exact(query, db, max_states=100_000),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "T1.E4 — exact non-inflationary evaluation: state space is the "
            "product of independent walkers (3 positions each)",
            ["walkers", "chain states", "exact p", "time"],
            rows,
        )
    )


def test_irreducible_vs_scc_dag_path(benchmark, report):
    # Irreducible case: a walk on a lazy cycle (Prop 5.4).
    irreducible_rows = []
    for size in (4, 6, 8):
        graph = cycle_graph(size)
        db = Database(
            {"C": Relation(("I",), [("n0",)]), "E": graph.edge_relation()}
        )
        kernel = Interpretation({"C": _walk_step()})
        query = ForeverQuery(kernel, TupleIn("C", ("n1",)))
        start = time.perf_counter()
        result = evaluate_forever_exact(query, db)
        elapsed = time.perf_counter() - start
        assert result.method == "prop-5.4"
        assert result.probability == Fraction(1, size)
        irreducible_rows.append(
            [size, result.states_explored, "prop-5.4", str(result.probability), f"{elapsed * 1e3:.1f} ms"]
        )

    # Reducible case: a funnel into two absorbing components (Thm 5.5).
    reducible_rows = []
    for tail in (2, 4, 6):
        edges = [("s", "x0", 1), ("s", "y", 2), ("y", "y", 1)]
        for i in range(tail):
            edges.append((f"x{i}", f"x{(i + 1) % tail}", 1))
        db = Database(
            {
                "C": Relation(("I",), [("s",)]),
                "E": Relation(("I", "J", "P"), edges),
            }
        )
        kernel = Interpretation({"C": _walk_step()})
        query = ForeverQuery(kernel, TupleIn("C", ("y",)))
        start = time.perf_counter()
        result = evaluate_forever_exact(query, db)
        elapsed = time.perf_counter() - start
        assert result.method == "thm-5.5"
        assert result.probability == Fraction(2, 3)
        reducible_rows.append(
            [tail, result.states_explored, "thm-5.5", str(result.probability), f"{elapsed * 1e3:.1f} ms"]
        )

    graph = cycle_graph(6)
    db = Database({"C": Relation(("I",), [("n0",)]), "E": graph.edge_relation()})
    kernel = Interpretation({"C": _walk_step()})
    query = ForeverQuery(kernel, TupleIn("C", ("n1",)))
    benchmark.pedantic(
        lambda: evaluate_forever_exact(query, db), rounds=3, iterations=1
    )

    report(
        *format_table(
            "T1.E4 — irreducible fast path (Prop 5.4)",
            ["cycle size", "states", "method", "exact p", "time"],
            irreducible_rows,
        )
    )
    report(
        *format_table(
            "T1.E4 — reducible general path (Thm 5.5, absorption 2/3 into y)",
            ["tail length", "states", "method", "exact p", "time"],
            reducible_rows,
        )
    )
