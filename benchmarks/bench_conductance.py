"""Experiment A5 — conductance characterises fast mixing (Section 5.1).

The paper points to conductance as a technique for certifying mixing
times polynomial in the state count — the condition under which the
Theorem 5.6 sampler runs in PTIME.  Regenerated: exact conductance,
spectral gap, Cheeger sandwich, and measured mixing time across graph
families; low conductance (the barbell bottleneck) must coincide with
slow mixing.
"""

from __future__ import annotations

from repro.markov import cheeger_bounds, conductance, mixing_time
from repro.workloads import barbell_graph, complete_graph, cycle_graph

from benchmarks.conftest import format_table

FAMILIES = {
    "complete-8": complete_graph(8),
    "cycle-8": cycle_graph(8),
    "cycle-12": cycle_graph(12),
    "barbell-4": barbell_graph(4),
    "barbell-6": barbell_graph(6),
}


def test_conductance_vs_mixing(benchmark, report):
    rows = []
    measurements = {}
    for name, graph in FAMILIES.items():
        chain = graph.to_markov_chain()
        phi, _witness = conductance(chain)
        bounds = cheeger_bounds(chain)
        t = mixing_time(chain, epsilon=0.1)
        measurements[name] = (phi, t)
        assert bounds["cheeger_lower"] <= bounds["gap"] + 1e-9
        if bounds["reversible"]:
            assert bounds["gap"] <= bounds["cheeger_upper"] + 1e-9
        rows.append(
            [
                name,
                chain.size,
                f"{phi:.4f}",
                f"{bounds['gap']:.4f}",
                f"{bounds['cheeger_lower']:.4f}",
                f"{bounds['cheeger_upper']:.4f}",
                t,
            ]
        )

    # ordering: higher conductance -> faster mixing across the families
    assert measurements["complete-8"][0] > measurements["barbell-4"][0]
    assert measurements["complete-8"][1] < measurements["barbell-4"][1]
    assert measurements["barbell-6"][0] < measurements["barbell-4"][0]
    assert measurements["barbell-6"][1] > measurements["barbell-4"][1]

    benchmark.pedantic(
        lambda: conductance(FAMILIES["barbell-4"].to_markov_chain()),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "A5 — conductance Φ, spectral gap, Cheeger sandwich, and t(0.1)",
            ["family", "states", "Φ", "gap", "Φ²/2", "2Φ", "t(0.1)"],
            rows,
        )
    )
