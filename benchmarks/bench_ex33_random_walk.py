"""Experiment X1 — Example 3.3: random walk in a graph.

The forever-query encoding (repair-key over ``C ⋈ E``) must assign the
query event ``v ∈ C`` the stationary probability of node v in the
underlying graph walk.  Regenerates, per graph: the full stationary
distribution from the query engine vs the direct chain solver, plus the
MCMC estimate.
"""

from __future__ import annotations

from repro.core import evaluate_forever_exact, evaluate_forever_mcmc
from repro.markov import stationary_distribution
from repro.workloads import cycle_graph, erdos_renyi, random_walk_query

from benchmarks.conftest import format_table


def test_stationary_distribution_from_queries(benchmark, report):
    graph = erdos_renyi(5, 0.4, rng=33)
    pi = stationary_distribution(graph.to_markov_chain())

    rows = []
    for target in graph.nodes:
        query, db = random_walk_query(graph, "n0", target)
        result = evaluate_forever_exact(query, db)
        assert result.probability == pi.probability(target)
        rows.append(
            [
                target,
                str(result.probability),
                str(pi.probability(target)),
                "exact match",
            ]
        )

    query, db = random_walk_query(graph, "n0", "n1")
    benchmark.pedantic(
        lambda: evaluate_forever_exact(query, db), rounds=5, iterations=1
    )

    report(
        *format_table(
            "X1 — Example 3.3: query result vs stationary distribution "
            "(Erdős–Rényi, 5 nodes)",
            ["node v", "Pr[v ∈ C] (query)", "π(v) (chain)", "status"],
            rows,
        )
    )


def test_mcmc_against_exact(benchmark, report):
    graph = cycle_graph(6)
    rows = []
    for target in ("n0", "n3"):
        query, db = random_walk_query(graph, "n0", target)
        exact = float(evaluate_forever_exact(query, db).probability)
        estimate = evaluate_forever_mcmc(query, db, samples=500, burn_in=60, rng=33)
        assert abs(estimate.estimate - exact) < 0.08
        rows.append([target, f"{exact:.4f}", f"{estimate.estimate:.4f}"])

    query, db = random_walk_query(graph, "n0", "n3")
    benchmark.pedantic(
        lambda: evaluate_forever_mcmc(query, db, samples=100, burn_in=40, rng=33),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "X1 — Example 3.3: MCMC estimates on the lazy 6-cycle",
            ["node v", "exact", "MCMC estimate"],
            rows,
        )
    )
