"""Experiment T2 — Table 2 / Example 2.2: repair-key on the basketball
players relation.

Regenerates the four possible worlds of
``repair-key_{Player@Belief}(Table 2)`` with their exact probabilities
(17/20·8/15 etc.), checks them against the paper's numbers, and measures
enumeration and sampling costs.
"""

from __future__ import annotations

from repro.probability import make_rng
from repro.relational import repair_distribution, sample_repair
from repro.workloads import BASKETBALL_WORLD_PROBABILITIES, basketball_table

from benchmarks.conftest import format_table


def test_table2_worlds(benchmark, report):
    players = basketball_table()

    worlds = benchmark.pedantic(
        lambda: repair_distribution(players, key=("Player",), weight="Belief"),
        rounds=20,
        iterations=5,
    )

    rows = []
    for world, probability in sorted(worlds.items(), key=lambda item: -item[1]):
        teams = {row[0]: row[1] for row in world}
        expected = BASKETBALL_WORLD_PROBABILITIES[(teams["Bryant"], teams["Iverson"])]
        assert probability == expected
        rows.append(
            [
                teams["Bryant"],
                teams["Iverson"],
                str(probability),
                f"{float(probability):.4f}",
            ]
        )
    assert sum(p for _w, p in worlds.items()) == 1

    report(
        *format_table(
            "Table 2 / Example 2.2 — repair-key_{Player@Belief} possible worlds",
            ["Bryant plays for", "Iverson plays for", "exact", "float"],
            rows,
        )
    )


def test_table2_sampling_frequencies(benchmark, report):
    players = basketball_table()
    rng = make_rng(2010)
    trials = 2000

    def draw_many():
        counts: dict = {}
        for _ in range(trials):
            world = sample_repair(players, rng, key=("Player",), weight="Belief")
            teams = {row[0]: row[1] for row in world}
            key = (teams["Bryant"], teams["Iverson"])
            counts[key] = counts.get(key, 0) + 1
        return counts

    counts = benchmark.pedantic(draw_many, rounds=3, iterations=1)

    rows = []
    for key, expected in BASKETBALL_WORLD_PROBABILITIES.items():
        observed = counts.get(key, 0) / trials
        assert abs(observed - float(expected)) < 0.05
        rows.append([key[0], key[1], f"{float(expected):.4f}", f"{observed:.4f}"])
    report(
        *format_table(
            f"Table 2 — sampler frequencies over {trials} draws",
            ["Bryant plays for", "Iverson plays for", "exact", "observed"],
            rows,
        )
    )
