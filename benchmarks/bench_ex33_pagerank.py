"""Experiment X2 — Example 3.3 variant: PageRank as a forever-query.

The encoding arbitrates between "follow an out-edge" (weight 1 − α) and
"jump to a uniform node" (weight α) with keyless repair-keys; the query
result per node must match a direct power-iteration PageRank baseline.
"""

from __future__ import annotations

from fractions import Fraction

from repro.baselines import pagerank
from repro.core import evaluate_forever_exact
from repro.workloads import erdos_renyi, pagerank_query

from benchmarks.conftest import format_table


def test_pagerank_matches_power_iteration(benchmark, report):
    graph = erdos_renyi(5, 0.4, rng=17)

    rows = []
    for alpha in (Fraction(1, 10), Fraction(3, 20), Fraction(3, 10)):
        direct = pagerank(graph, float(alpha))
        worst_gap = 0.0
        for target in graph.nodes:
            query, db = pagerank_query(graph, alpha, "n0", target)
            result = evaluate_forever_exact(query, db)
            gap = abs(float(result.probability) - direct[target])
            worst_gap = max(worst_gap, gap)
        assert worst_gap < 1e-9
        top = max(direct, key=direct.get)
        rows.append(
            [
                f"{float(alpha):.2f}",
                top,
                f"{direct[top]:.4f}",
                f"{worst_gap:.2e}",
            ]
        )

    query, db = pagerank_query(graph, Fraction(3, 20), "n0", "n1")
    benchmark.pedantic(
        lambda: evaluate_forever_exact(query, db), rounds=3, iterations=1
    )

    report(
        *format_table(
            "X2 — PageRank via forever-query vs power iteration "
            "(Erdős–Rényi, 5 nodes)",
            ["α (jump)", "top node", "top score", "max |query − baseline|"],
            rows,
        )
    )


def test_dampening_rescues_reducible_graphs(benchmark, report):
    """Without the jump the walk is absorbed; with it, every node keeps
    positive long-run mass — the reason the variant exists."""
    from repro.workloads import WeightedGraph
    from repro.workloads import random_walk_query

    graph = WeightedGraph(
        ("a", "b", "t"),
        (("a", "b", 1), ("b", "a", 1), ("t", "a", 1), ("t", "t", 1)),
    )

    plain_query, plain_db = random_walk_query(graph, "a", "t")
    plain = evaluate_forever_exact(plain_query, plain_db)
    assert plain.probability == 0  # t is transient for the plain walk

    damped_query, damped_db = pagerank_query(graph, Fraction(1, 5), "a", "t")
    damped = evaluate_forever_exact(damped_query, damped_db)
    assert damped.probability > 0
    assert damped.details["irreducible"]

    benchmark.pedantic(
        lambda: evaluate_forever_exact(damped_query, damped_db),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "X2 — dampening makes the chain irreducible",
            ["encoding", "Pr[t ∈ C]", "irreducible"],
            [
                ["plain walk", str(plain.probability), plain.details["irreducible"]],
                ["PageRank α=1/5", f"{float(damped.probability):.4f}", damped.details["irreducible"]],
            ],
        )
    )
