"""Experiment T1 — Table 1: the complexity overview, regenerated.

The paper's Table 1 is a claims grid, not a measurements table; this
bench regenerates it with each cell backed by an executable witness run
right here on small instances:

* "exact computation" cells — the exact evaluators are exercised and
  their exponential growth observed (♯P-/EXPTIME-hardness witnessed by
  the evaluator doubling its work per added c-table variable / walker);
* "relative approximation" cells — the Theorem 4.1 reduction decides
  3-SAT through the evaluator (NP-hardness witness);
* inflationary "absolute approximation" cell — the Theorem 4.3 sampler
  meets its (ε, δ) guarantee in polynomial time (PTIME witness);
* non-inflationary "absolute approximation" cell — the Theorem 5.1
  reduction's 0/1 law (NP-hardness witness) *and* the Theorem 5.6
  sampler meeting its guarantee given the mixing time (the positive
  side).

The printed grid mirrors the paper's rows and columns, annotated with
the measured evidence.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import evaluate_forever_exact, evaluate_forever_mcmc
from repro.core.evaluation import evaluate_inflationary_exact, evaluate_inflationary_sampling
from repro.reductions import (
    CNFFormula,
    build_thm41_instance,
    build_thm51_instance,
    random_3cnf,
    thm41_exact_probability,
    thm51_exact_probability,
)
from repro.workloads import cycle_graph, example_36_graph, random_walk_query, reachability_query

from benchmarks.conftest import format_table


def _exact_cell() -> str:
    """Rows 1–2 "exact": the evaluator is a ♯SAT counter."""
    formula = random_3cnf(4, 6, rng=1)
    instance = build_thm41_instance(formula)
    result = thm41_exact_probability(instance)
    assert result.probability == Fraction(formula.count_models(), 16)
    return f"♯P-hard: evaluator counts models ({formula.count_models()}/16 exact)"

def _relative_cell() -> str:
    """Rows 1–2 "relative approx": decides 3-SAT (Thm 4.1)."""
    sat = CNFFormula(3, [(1, 2, 3)])
    unsat = CNFFormula(3, [(s1, s2, s3) for s1 in (1, -1) for s2 in (2, -2) for s3 in (3, -3)])
    p_sat = thm41_exact_probability(build_thm41_instance(sat)).probability
    p_unsat = thm41_exact_probability(build_thm41_instance(unsat)).probability
    assert p_sat > 0 and p_unsat == 0
    return "NP-hard: p>0 iff SAT (verified)"

def _absolute_inflationary_cell() -> str:
    """Rows 1–2 "absolute approx": PTIME sampling (Thm 4.3)."""
    query, db = reachability_query(example_36_graph(), "a", "b")
    exact = float(evaluate_inflationary_exact(query, db).probability)
    result = evaluate_inflationary_sampling(query, db, epsilon=0.1, delta=0.1, rng=2)
    error = abs(result.estimate - exact)
    assert error <= 0.1
    return f"PTIME: |err|={error:.3f} ≤ ε=0.1 at m={result.samples}"

def _absolute_noninflationary_hard_cell() -> str:
    """Row 3 "absolute approx", negative side (Thm 5.1)."""
    sat = CNFFormula(2, [(1, 2)])
    unsat = CNFFormula(2, [(1,), (-1,)])
    p_sat = thm51_exact_probability(build_thm51_instance(sat)).probability
    p_unsat = thm51_exact_probability(build_thm51_instance(unsat)).probability
    assert p_sat == 1 and p_unsat == 0
    return "NP-hard: 0/1 law verified"

def _absolute_noninflationary_easy_cell() -> str:
    """Row 3 "absolute approx", positive side (Thm 5.6)."""
    query, db = random_walk_query(cycle_graph(5), "n0", "n2")
    exact = float(evaluate_forever_exact(query, db).probability)
    result = evaluate_forever_mcmc(query, db, epsilon=0.2, delta=0.1, rng=3)
    error = abs(result.estimate - exact)
    assert error <= 0.2
    return f"PTIME in t(ε): |err|={error:.3f} ≤ 0.2, burn-in {result.details['burn_in']}"

def _noninflationary_exact_cell() -> str:
    """Row 3 "exact": chain construction + Gaussian elimination."""
    query, db = random_walk_query(cycle_graph(6), "n0", "n3")
    result = evaluate_forever_exact(query, db)
    assert result.probability == Fraction(1, 6)
    return f"in (2-)EXPTIME: chain of {result.states_explored} states solved exactly"


def test_regenerate_table1(benchmark, report):
    cells = benchmark.pedantic(
        lambda: {
            "exact12": _exact_cell(),
            "rel12": _relative_cell(),
            "abs12": _absolute_inflationary_cell(),
            "hard3": _absolute_noninflationary_hard_cell(),
            "easy3": _absolute_noninflationary_easy_cell(),
            "exact3": _noninflationary_exact_cell(),
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            "(linear) datalog, no prob. rules",
            cells["exact12"] + "; in PSPACE",
            cells["rel12"],
            cells["abs12"],
        ],
        [
            "inflationary fixpoint + repair-key",
            cells["exact12"] + "; in PSPACE",
            cells["rel12"],
            cells["abs12"],
        ],
        [
            "non-inflationary fixpoint + repair-key",
            cells["exact3"],
            cells["rel12"],
            cells["hard3"] + "; " + cells["easy3"],
        ],
    ]
    report(
        *format_table(
            "Table 1 (regenerated) — complexity of query evaluation, "
            "each cell backed by a measured witness",
            ["language", "exact computation", "relative approximation", "absolute approximation"],
            rows,
        )
    )
