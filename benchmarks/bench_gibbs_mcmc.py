"""Experiment A6 — MCMC as a Markov-chain application (the paper's
Section 1 motivation, made concrete).

Random-scan Gibbs sampling over Bayesian networks, run through the same
machinery as the query languages: the sampler's chain is verified
against the network's joint distribution with exact rational equality,
its mixing time is measured as the network grows, and the burned-in
estimator is compared against exact marginals and plain ancestral
sampling.
"""

from __future__ import annotations

import random
import time

from repro.baselines import sampled_marginal
from repro.markov import is_ergodic, mixing_time, stationary_distribution
from repro.workloads import random_network
from repro.workloads.gibbs import (
    gibbs_chain,
    gibbs_marginal_estimate,
    joint_distribution,
)

from benchmarks.conftest import format_table


def test_stationary_equals_joint(benchmark, report):
    rows = []
    for seed in (1, 2, 3):
        network = random_network(3, max_in_degree=2, rng=seed)
        chain = gibbs_chain(network)
        assert is_ergodic(chain)
        pi = stationary_distribution(chain)
        joint = joint_distribution(network)
        assert pi == joint  # exact rational equality
        rows.append([f"random-{seed}", chain.size, "exact match"])

    network = random_network(3, max_in_degree=2, rng=1)
    benchmark.pedantic(lambda: gibbs_chain(network), rounds=3, iterations=1)

    report(
        *format_table(
            "A6 — Gibbs chain stationary distribution vs network joint",
            ["network", "chain states", "π == joint"],
            rows,
        )
    )


def test_mixing_time_vs_network_size(benchmark, report):
    rows = []
    times = {}
    for size in (2, 3, 4, 5):
        network = random_network(size, max_in_degree=2, rng=size + 20)
        chain = gibbs_chain(network)
        t = mixing_time(chain, epsilon=0.1)
        times[size] = t
        rows.append([size, chain.size, t])
    assert all(t >= 1 for t in times.values())

    network = random_network(4, max_in_degree=2, rng=24)
    benchmark.pedantic(
        lambda: mixing_time(gibbs_chain(network), epsilon=0.1),
        rounds=2,
        iterations=1,
    )

    report(
        *format_table(
            "A6 — Gibbs mixing time t(0.1) vs network size (states = 2ⁿ)",
            ["nodes", "chain states", "t(0.1)"],
            rows,
        )
    )


def test_estimator_accuracy(benchmark, report):
    rows = []
    for seed in (5, 6):
        network = random_network(5, max_in_degree=2, rng=seed)
        target = network.nodes[-1]
        conditions = {target: 1}
        exact = float(network.marginal_probability(conditions))

        t0 = time.perf_counter()
        gibbs = gibbs_marginal_estimate(
            network, conditions, samples=2000, burn_in=60,
            rng=random.Random(seed), thinning=3,
        )
        gibbs_time = time.perf_counter() - t0

        ancestral = sampled_marginal(network, conditions, samples=2000, rng=seed)

        assert abs(gibbs - exact) < 0.05
        assert abs(ancestral - exact) < 0.05
        rows.append(
            [
                f"random-{seed}",
                f"{exact:.4f}",
                f"{gibbs:.4f}",
                f"{ancestral:.4f}",
                f"{gibbs_time * 1e3:.0f} ms",
            ]
        )

    network = random_network(5, max_in_degree=2, rng=5)
    benchmark.pedantic(
        lambda: gibbs_marginal_estimate(
            network, {network.nodes[-1]: 1}, samples=500, burn_in=30,
            rng=random.Random(1), thinning=2,
        ),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "A6 — marginal estimation: Gibbs (burned-in, thinned) vs "
            "ancestral sampling vs exact (2000 samples each)",
            ["network", "exact", "Gibbs", "ancestral", "Gibbs time"],
            rows,
        )
    )
