"""Experiment X5 — Example 3.10: Bayesian-network inference in
probabilistic datalog.

The K+1-rule program's marginals must match direct enumeration exactly;
runtime is swept over network size for both the exact evaluator
(exponential — it enumerates the joint) and the Theorem 4.3 sampler
(polynomial: one ancestral sample per run).
"""

from __future__ import annotations

import time

from repro.baselines import enumerate_marginal
from repro.core import TupleIn
from repro.datalog import evaluate_datalog_exact, evaluate_datalog_sampling
from repro.workloads import random_network, sprinkler_network

from benchmarks.conftest import format_table


def test_sprinkler_marginals(benchmark, report):
    network = sprinkler_network()
    cases = [
        {"rain": 1},
        {"grass": 1},
        {"rain": 1, "grass": 1},
        {"sprinkler": 1, "grass": 0},
    ]

    rows = []
    for conditions in cases:
        program, edb = network.to_datalog(conditions=conditions)
        result = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
        expected = enumerate_marginal(network, conditions)
        assert result.probability == expected
        label = " ∧ ".join(f"{n}={v}" for n, v in sorted(conditions.items()))
        rows.append([label, str(result.probability), f"{float(expected):.4f}"])

    program, edb = network.to_datalog(conditions={"grass": 1})
    benchmark.pedantic(
        lambda: evaluate_datalog_exact(program, edb, TupleIn("q", ())),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "X5 — Example 3.10 on the sprinkler network: datalog vs enumeration",
            ["marginal", "datalog (exact)", "float"],
            rows,
        )
    )


def test_runtime_vs_network_size(benchmark, report):
    rows = []
    exact_times = {}
    for size in (3, 4, 5, 6):
        network = random_network(size, max_in_degree=2, rng=size)
        conditions = {network.nodes[-1]: 1}
        program, edb = network.to_datalog(conditions=conditions)

        t0 = time.perf_counter()
        exact = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
        exact_time = time.perf_counter() - t0
        exact_times[size] = exact_time
        assert exact.probability == enumerate_marginal(network, conditions)

        t0 = time.perf_counter()
        sampled = evaluate_datalog_sampling(
            program, edb, TupleIn("q", ()), samples=300, rng=10
        )
        sample_time = time.perf_counter() - t0
        assert abs(sampled.estimate - float(exact.probability)) < 0.1

        rows.append(
            [
                size,
                exact.states_explored,
                f"{exact_time * 1e3:.0f} ms",
                f"{sample_time * 1e3:.0f} ms",
                f"{float(exact.probability):.4f}",
                f"{sampled.estimate:.4f}",
            ]
        )

    # exact inference cost grows steeply with network size
    assert exact_times[6] > exact_times[3]

    network = random_network(4, max_in_degree=2, rng=4)
    program, edb = network.to_datalog(conditions={network.nodes[-1]: 1})
    benchmark.pedantic(
        lambda: evaluate_datalog_sampling(
            program, edb, TupleIn("q", ()), samples=100, rng=10
        ),
        rounds=3,
        iterations=1,
    )

    report(
        *format_table(
            "X5 — exact vs sampled inference over random networks (K ≤ 2)",
            ["nodes", "exact states", "exact time", "sample time (300)", "exact p", "p̂"],
            rows,
        )
    )
