#!/usr/bin/env python
"""CI smoke for the sparse certified rung (see ``docs/sparse.md``).

Two layers, both gated against the exact gambler's-ruin closed form:

1. **Library, full size** (default 10^4 states): a drifted birth-death
   chain is solved through :func:`repro.sparse.solve_long_run` to a
   certified ``1e-9``.  At this size the bottleneck in CI would be the
   relational transition evaluation, not the solver, so the full-size
   chain enters through :func:`sparse_chain_from_markov`; the solver and
   certificate machinery are exactly what the CLI dispatches to.
2. **CLI, kernel-streamed** (default 1200 states): the same workload
   expressed as a ``.ra`` program streams state-by-state off the
   columnar kernel with ``--backend sparse``, and a budget-starved
   ``--fallback sparse`` run demonstrates the recorded downgrade onto
   the sparse rung.

Exits nonzero on any violated certificate, wrong answer, or missing
downgrade.  Run under ``PYTHONHASHSEED=random`` in CI: nothing here may
depend on hash ordering.

Usage::

    PYTHONPATH=src python benchmarks/sparse_smoke.py
    PYTHONPATH=src python benchmarks/sparse_smoke.py --states 100000
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from fractions import Fraction
from pathlib import Path

DOWN = Fraction(55, 100)
EPSILON = 1e-9


def ruin_probability(n: int, k: int, down: Fraction) -> Fraction:
    """Closed-form P[hit 0 before n | start k] with down-drift ``down``."""
    r = down / (1 - down)
    return (r ** k - r ** n) / (1 - r ** n)


def library_smoke(states: int) -> None:
    from repro.markov.chain import chain_from_edges
    from repro.sparse import solve_long_run, sparse_chain_from_markov

    edges = []
    for i in range(1, states):
        edges.append((i, i - 1, DOWN))
        edges.append((i, i + 1, 1 - DOWN))
    edges.append((0, 0, Fraction(1)))
    edges.append((states, states, Fraction(1)))
    chain = chain_from_edges(edges)
    start = states // 2
    sparse = sparse_chain_from_markov(chain, start, event=lambda s: s == 0)

    begin = time.perf_counter()
    value, certificate, structure = solve_long_run(sparse, epsilon=EPSILON)
    elapsed = time.perf_counter() - begin

    exact = float(ruin_probability(states, start, DOWN))
    error = abs(value - exact)
    assert certificate.satisfies(), (
        f"certificate dissatisfied: bound={certificate.bound:.3e}")
    assert error <= certificate.bound <= EPSILON, (
        f"|answer - exact| = {error:.3e}, bound = {certificate.bound:.3e}")
    print(f"library ok: {structure['states']} states solved in {elapsed:.2f}s "
          f"({certificate.solver}, {certificate.iterations} iters), "
          f"|answer - exact| = {error:.3e} <= bound = "
          f"{certificate.bound:.3e} <= {EPSILON:.0e}")


def write_workload(directory: Path, states: int) -> dict[str, str]:
    rows = []
    for i in range(1, states):
        rows.append([f"s{i}", f"s{i - 1}", 55])
        rows.append([f"s{i}", f"s{i + 1}", 45])
    rows.append(["s0", "s0", 1])
    rows.append([f"s{states}", f"s{states}", 1])
    db = directory / "walk.db.json"
    db.write_text(json.dumps({"relations": {
        "C": {"columns": ["I"], "rows": [[f"s{states // 2}"]]},
        "E": {"columns": ["I", "J", "P"], "rows": rows},
    }}))
    program = directory / "walk.ra"
    program.write_text(
        "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n")
    return {"db": str(db), "program": str(program)}


def run_cli(argv: list[str]) -> dict:
    src = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=600,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
    )
    if proc.returncode != 0:
        raise RuntimeError(f"CLI failed ({proc.returncode}): {proc.stderr}")
    return json.loads(proc.stdout)


def cli_smoke(states: int) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        paths = write_workload(Path(tmp), states)
        base = [
            "forever", paths["program"], "--db", paths["db"],
            "--event", "C(s0)", "--json",
        ]

        begin = time.perf_counter()
        payload = run_cli(base + ["--backend", "sparse",
                                  "--epsilon", str(EPSILON)])
        elapsed = time.perf_counter() - begin
        exact = float(ruin_probability(states, states // 2, DOWN))
        certificate = payload["certificate"]
        error = abs(payload["probability_float"] - exact)
        assert payload["mode"].startswith("sparse certified"), payload["mode"]
        assert certificate["satisfied"], certificate
        assert error <= certificate["bound"] <= EPSILON, (error, certificate)
        print(f"cli ok: {states + 1} states streamed off the kernel in "
              f"{elapsed:.2f}s, |answer - exact| = {error:.3e} <= bound = "
              f"{certificate['bound']:.3e}")

        # A budget the exact rung cannot meet must *downgrade* onto the
        # sparse rung, with the reason on the run report.  The sparse
        # rung gets a 25x state allowance (DegradationPolicy
        # sparse_state_factor), so a budget of states/25 + 1 starves
        # exact while leaving sparse feasible.
        budget = states // 25 + 1
        payload = run_cli(base + ["--fallback", "sparse",
                                  "--max-states", str(budget)])
        downgrades = payload.get("downgrades") or []
        assert [(d["from"], d["to"]) for d in downgrades] == [
            ("exact", "sparse")], downgrades
        assert f"max_states={budget}" in downgrades[0]["reason"], downgrades
        print(f"cli fallback ok: downgraded exact -> sparse "
              f"({downgrades[0]['reason']})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--states", type=int, default=10_000,
                        help="library-path chain size (default 10^4)")
    parser.add_argument("--cli-states", type=int, default=1_200,
                        help="kernel-streamed CLI chain size")
    args = parser.parse_args(argv)

    library_smoke(args.states)
    cli_smoke(args.cli_states)
    print("sparse smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
