"""Bayesian inference in probabilistic datalog (Example 3.10).

Encodes the classic rain/sprinkler/wet-grass network as the paper's
K+1-rule datalog program, answers several marginal queries exactly and
by sampling, and repeats the experiment on a random network, always
cross-checking against direct enumeration.

Run with::

    python examples/bayesian_inference.py
"""

from __future__ import annotations

from repro import TupleIn, evaluate_datalog_exact, evaluate_datalog_sampling
from repro.baselines import enumerate_marginal
from repro.workloads import random_network, sprinkler_network


def show_program() -> None:
    network = sprinkler_network()
    program, _edb = network.to_datalog(conditions={"grass": 1})
    print("The Example 3.10 program for the sprinkler network:")
    for rule in program:
        print(f"   {rule!r}")
    print()


def sprinkler_queries() -> None:
    network = sprinkler_network()
    cases = [
        ({"rain": 1}, "it rains"),
        ({"grass": 1}, "the grass is wet"),
        ({"rain": 1, "grass": 1}, "it rains and the grass is wet"),
        ({"sprinkler": 1, "rain": 1}, "sprinkler on while raining"),
    ]
    print("Marginals on the sprinkler network:")
    for conditions, description in cases:
        program, edb = network.to_datalog(conditions=conditions)
        exact = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
        direct = enumerate_marginal(network, conditions)
        assert exact.probability == direct
        sampled = evaluate_datalog_sampling(
            program, edb, TupleIn("q", ()), samples=2000, rng=10
        )
        print(
            f"   Pr[{description}] = {exact.probability} "
            f"= {float(exact.probability):.4f}   (sampled ≈ {sampled.estimate:.4f})"
        )
    print()


def random_network_queries() -> None:
    network = random_network(6, max_in_degree=2, rng=2024)
    target = network.nodes[-1]
    print(f"Random 6-node network (K ≤ 2): querying Pr[{target} = 1]")
    program, edb = network.to_datalog(conditions={target: 1})
    exact = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
    direct = enumerate_marginal(network, {target: 1})
    assert exact.probability == direct
    print(f"   datalog exact   : {float(exact.probability):.6f}")
    print(f"   enumeration     : {float(direct):.6f}")
    sampled = evaluate_datalog_sampling(
        program, edb, TupleIn("q", ()), epsilon=0.02, delta=0.05, rng=7
    )
    print(
        f"   Theorem 4.3     : {sampled.estimate:.6f} "
        f"({sampled.samples} samples for ε=0.02, δ=0.05)"
    )


if __name__ == "__main__":
    show_program()
    sprinkler_queries()
    random_network_queries()
