"""Quickstart: the probabilistic query languages in five minutes.

Walks through the paper's core constructs on its own running examples:

1. ``repair-key`` possible worlds on Table 2 (Example 2.2);
2. a forever-query random walk and its exact long-run answer
   (Example 3.3, Proposition 5.4);
3. inflationary probabilistic reachability, exact (Proposition 4.4)
   and sampled (Theorem 4.3);
4. the same query in probabilistic datalog (Example 3.9).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import (
    TupleIn,
    cycle_graph,
    evaluate_datalog_exact,
    evaluate_forever_exact,
    evaluate_inflationary_exact,
    evaluate_inflationary_sampling,
    random_walk_query,
    reachability_program,
    reachability_query,
)
from repro.relational import repair_distribution
from repro.workloads import basketball_table, example_36_graph


def demo_repair_key() -> None:
    print("1) repair-key on Table 2 (Example 2.2)")
    players = basketball_table()
    worlds = repair_distribution(players, key=("Player",), weight="Belief")
    for world, probability in sorted(worlds.items(), key=lambda item: -item[1]):
        teams = {row[0]: row[1] for row in world}
        print(
            f"   Bryant → {teams['Bryant']:<18} Iverson → {teams['Iverson']:<20}"
            f" p = {probability} = {float(probability):.4f}"
        )
    print()


def demo_forever_query() -> None:
    print("2) forever-query: random walk on a lazy 4-cycle (Example 3.3)")
    graph = cycle_graph(4)
    query, db = random_walk_query(graph, start="n0", target="n2")
    result = evaluate_forever_exact(query, db)
    print(f"   Pr[n2 ∈ C] in the long run = {result.probability}")
    print(f"   (chain of {result.states_explored} database states, {result.method})")
    print()


def demo_inflationary() -> None:
    print("3) inflationary reachability (Examples 3.5 / 3.6)")
    graph = example_36_graph()  # E = {(a,b,1/2), (a,c,1/2)}
    query, db = reachability_query(graph, "a", "b")
    exact = evaluate_inflationary_exact(query, db)
    print(f"   exact  Pr[b ∈ C] = {exact.probability}  (paper: 1/2)")
    sampled = evaluate_inflationary_sampling(query, db, epsilon=0.05, delta=0.05, rng=1)
    print(
        f"   sampled Pr[b ∈ C] ≈ {sampled.estimate:.4f} "
        f"({sampled.samples} samples, ε=0.05, δ=0.05 — Theorem 4.3)"
    )
    print()


def demo_datalog() -> None:
    print("4) probabilistic datalog (Example 3.9)")
    graph = example_36_graph()
    program, edb = reachability_program(graph, "a")
    print("   program:")
    for rule in program:
        print(f"     {rule!r}")
    result = evaluate_datalog_exact(program, edb, TupleIn("c", ("b",)))
    print(f"   exact Pr[b ∈ c] = {result.probability}")
    assert result.probability == Fraction(1, 2)


if __name__ == "__main__":
    demo_repair_key()
    demo_forever_query()
    demo_inflationary()
    demo_datalog()
