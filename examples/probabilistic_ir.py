"""Probabilistic information retrieval in probabilistic datalog.

The paper's related work credits Fuhr's probabilistic datalog (SIGIR
1995) as the IR ancestor of the language family.  This example builds a
tiny retrieval system in the reproduction's richer language:

* ground facts ``indexed(doc, term)`` carry uncertain indexing — a
  pc-table marks each (doc, term) pair present with its indexing
  confidence;
* hyperlinks propagate relevance: a document linking to a relevant
  document is somewhat relevant too (a probabilistic recursion the
  1995 language could not re-randomise);
* the query event asks whether a document is (transitively) about all
  query terms; ranking documents by that probability is the retrieval
  output.

Run with::

    python examples/probabilistic_ir.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import TupleIn, evaluate_datalog_exact, parse_program
from repro.ctables import CTable, PCDatabase, boolean_variable
from repro.ctables.conditions import var_eq
from repro.relational import Database, Relation

#: (document, term, indexing confidence)
INDEX = [
    ("d1", "markov", Fraction(9, 10)),
    ("d1", "chains", Fraction(8, 10)),
    ("d2", "markov", Fraction(6, 10)),
    ("d2", "datalog", Fraction(9, 10)),
    ("d3", "datalog", Fraction(7, 10)),
    ("d3", "chains", Fraction(3, 10)),
]

#: (source, target, trust weight) hyperlinks
LINKS = [
    ("d3", "d1", 1),
    ("d2", "d1", 1),
    ("d2", "d3", 1),
]

#: Probability that a link transfers aboutness.
LINK_TRANSFER = Fraction(1, 2)

PROGRAM = """
    % a document is about a term if its (uncertain) index says so
    about(D, T) :- indexed(D, T).
    % ... or if it links to a document about the term and the link
    % fires (linkok is an uncertain fact per link)
    about(D, T) :- link(D, E), linkok(D, E), about(E, T).
"""


def build_instance() -> tuple:
    program = parse_program(PROGRAM)

    # uncertain index: one boolean variable per (doc, term) pair
    index_entries = []
    variables = {}
    for doc, term, confidence in INDEX:
        name = f"ix_{doc}_{term}"
        variables[name] = boolean_variable(confidence)
        index_entries.append(((doc, term), var_eq(name, 1)))

    # uncertain link transfer: one boolean variable per link
    link_entries = []
    for source, target, _weight in LINKS:
        name = f"ln_{source}_{target}"
        variables[name] = boolean_variable(LINK_TRANSFER)
        link_entries.append(((source, target), var_eq(name, 1)))

    pc = PCDatabase(
        tables={
            "indexed": CTable(("D", "T"), index_entries),
            "linkok": CTable(("D", "E"), link_entries),
        },
        variables=variables,
    )
    edb = Database({"link": Relation(("D", "E"), [(s, t) for s, t, _w in LINKS])})
    return program, edb, pc


def score(program, edb, pc, doc: str, terms: list[str]) -> Fraction:
    """Pr[doc is about every query term]."""
    event = TupleIn("about", (doc, terms[0]))
    for term in terms[1:]:
        event = event & TupleIn("about", (doc, term))
    return evaluate_datalog_exact(program, edb, event, pc_tables=pc).probability


def main() -> None:
    program, edb, pc = build_instance()
    print("Program:")
    for rule in program:
        print(f"   {rule!r}")
    print(f"\nIndex confidences: {[(d, t, str(c)) for d, t, c in INDEX]}")
    print(f"Link transfer probability: {LINK_TRANSFER}\n")

    for query_terms in (["markov"], ["markov", "chains"], ["datalog"]):
        print(f"Query {query_terms}:")
        ranking = []
        for doc in ("d1", "d2", "d3"):
            probability = score(program, edb, pc, doc, query_terms)
            ranking.append((probability, doc))
        for probability, doc in sorted(ranking, reverse=True):
            print(f"   {doc}   {float(probability):.4f}   ({probability})")
        print()


if __name__ == "__main__":
    main()
