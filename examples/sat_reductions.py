"""The hardness constructions as executable programs (Theorems 4.1, 5.1).

Mechanises both 3-SAT reductions:

* Theorem 4.1 — a linear datalog program over a probabilistic c-table
  whose query probability is ♯models(F)/2ⁿ, so exact evaluation is a
  model counter and any relative approximation decides SAT;
* Theorem 5.1 — a non-inflationary program whose long-run probability is
  exactly 1 or 0 depending on satisfiability, so even an absolute
  approximation with ε < 1/2 decides SAT.

Run with::

    python examples/sat_reductions.py
"""

from __future__ import annotations

from repro.reductions import (
    CNFFormula,
    build_thm41_instance,
    build_thm51_instance,
    decide_sat_via_absolute_approximation,
    random_3cnf,
    simulated_probability,
    thm41_exact_probability,
    thm51_exact_probability,
)


def theorem_41_demo() -> None:
    print("Theorem 4.1: query evaluation counts satisfying assignments")
    formulas = {
        "(x1 ∨ x2 ∨ x3)": CNFFormula(3, [(1, 2, 3)]),
        "x1 ∧ ¬x1 (unsat)": CNFFormula(3, [(1,), (-1,)]),
        "random 4-var 3-CNF": random_3cnf(4, 7, rng=99),
    }
    for name, formula in formulas.items():
        instance = build_thm41_instance(formula)
        print("   reduction program:") if name == "(x1 ∨ x2 ∨ x3)" else None
        if name == "(x1 ∨ x2 ∨ x3)":
            for rule in instance.program:
                print(f"      {rule!r}")
        result = thm41_exact_probability(instance)
        models = formula.count_models()
        n = formula.num_variables
        print(
            f"   {name:<20} ♯models = {models:<3} "
            f"query p = {result.probability} (= {models}/2^{n})  "
            f"⇒ {'SAT' if result.probability > 0 else 'UNSAT'}"
        )
    print()


def theorem_51_demo() -> None:
    print("Theorem 5.1: the non-inflationary 0/1 law")
    sat = CNFFormula(2, [(1, 2)])
    unsat = CNFFormula(2, [(1,), (-1,)])
    for name, formula in (("satisfiable", sat), ("unsatisfiable", unsat)):
        instance = build_thm51_instance(formula)
        exact = thm51_exact_probability(instance)
        print(
            f"   {name:<13} exact long-run Pr[a ∈ done] = {exact.probability} "
            f"({exact.states_explored} chain states, {exact.details['leaf_sccs']} leaf SCCs)"
        )
        for steps in (100, 1000):
            occupancy = simulated_probability(instance, steps, rng=5)
            print(f"      simulated occupancy after {steps:>5} steps: {occupancy:.3f}")
    verdict_sat = decide_sat_via_absolute_approximation(sat, steps=1000, rng=1)
    verdict_unsat = decide_sat_via_absolute_approximation(unsat, steps=1000, rng=1)
    print(f"   decision via ε<1/2 absolute approximation: sat → {verdict_sat}, unsat → {verdict_unsat}")


if __name__ == "__main__":
    theorem_41_demo()
    theorem_51_demo()
