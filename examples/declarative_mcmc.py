"""Declarative MCMC: programming a sampler in the query language.

The paper's motivation (Section 1): datalog-like languages for Markov
chains let MCMC be programmed at a declarative level.  This example
builds a Metropolis-style chain *as data* — states are database rows,
the proposal/acceptance structure is encoded in the edge weights — and
uses the non-inflationary machinery to

1. verify ergodicity of the induced chain,
2. compute its exact stationary distribution (the target),
3. measure the mixing time and draw properly burned-in samples
   (Theorem 5.6), and
4. compare sample frequencies with the target.

The target here is a Boltzmann-style distribution over a small energy
landscape on a ring, with Metropolis transition weights
min(1, exp(E(i) − E(j))) between ring neighbours.

Run with::

    python examples/declarative_mcmc.py
"""

from __future__ import annotations

import math
from collections import Counter
from fractions import Fraction

from repro import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    build_state_chain,
    evaluate_forever_exact,
    mixing_time,
    simulate_trajectory,
)
from repro.markov import stationary_distribution_float
from repro.probability import make_rng
from repro.relational import Database, Relation, join, project, rel, rename, repair_key

#: Energy landscape on a ring of 6 sites (lower energy = more mass).
ENERGIES = {"s0": 0.0, "s1": 1.0, "s2": 2.0, "s3": 0.5, "s4": 1.5, "s5": 0.2}
#: Laziness keeps the chain aperiodic.
LAZINESS = 1.0


def metropolis_edges() -> list[tuple[str, str, Fraction]]:
    """Ring moves with Metropolis acceptance odds as edge weights."""
    sites = sorted(ENERGIES)
    edges = []
    for index, site in enumerate(sites):
        edges.append((site, site, Fraction(LAZINESS).limit_denominator(10**6)))
        for neighbour in (sites[(index + 1) % len(sites)], sites[index - 1]):
            accept = min(1.0, math.exp(ENERGIES[site] - ENERGIES[neighbour]))
            edges.append(
                (site, neighbour, Fraction(accept).limit_denominator(10**6))
            )
    return edges


def build_query() -> tuple[ForeverQuery, Database]:
    """The sampler as a forever-query: one repair-key step per tick."""
    rows = [(s, t, w) for s, t, w in metropolis_edges()]
    db = Database(
        {
            "C": Relation(("I",), [("s1",)]),  # arbitrary start site
            "E": Relation(("I", "J", "P"), rows),
        }
    )
    step = rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )
    kernel = Interpretation({"C": step})
    return ForeverQuery(kernel, TupleIn("C", ("s0",))), db


def main() -> None:
    query, db = build_query()
    chain = build_state_chain(query.kernel, db)
    print(f"Induced chain over database states: {chain.size} states")

    target = stationary_distribution_float(chain)
    by_site = {next(iter(state["C"]))[0]: p for state, p in target.items()}
    print("Exact stationary (target) distribution:")
    for site in sorted(ENERGIES):
        print(
            f"   {site}  E = {ENERGIES[site]:<4}  π = {by_site[site]:.4f}"
        )

    exact = evaluate_forever_exact(query, db)
    print(f"\nQuery event Pr[walk at s0] = {float(exact.probability):.4f}")

    t_mix = mixing_time(chain, epsilon=0.05)
    print(f"Mixing time t(0.05) = {t_mix} steps")

    # Draw samples: one long trajectory, keeping every t_mix-th state
    # after a burn-in (a standard thinned MCMC run).
    rng = make_rng(7)
    samples = 3000
    trajectory = simulate_trajectory(query, db, t_mix * (samples // 10), rng)
    thinned = trajectory[t_mix :: max(1, t_mix // 3)]
    counts = Counter(next(iter(state["C"]))[0] for state in thinned)
    total = sum(counts.values())
    print(f"\nThinned MCMC frequencies over {total} kept samples:")
    worst = 0.0
    for site in sorted(ENERGIES):
        frequency = counts.get(site, 0) / total
        worst = max(worst, abs(frequency - by_site[site]))
        print(f"   {site}  sampled {frequency:.4f}   target {by_site[site]:.4f}")
    print(f"max |sampled − target| = {worst:.4f}")


if __name__ == "__main__":
    main()
