"""Random walks and PageRank as declarative forever-queries (Example 3.3).

Builds a small weighted web graph, expresses (a) the plain random walk
and (b) the α-dampened PageRank walk as forever-queries, evaluates them
exactly through the Markov-chain semantics, and cross-checks the
PageRank scores against classical power iteration.  Also reports the
chain's mixing time and an MCMC estimate (Theorem 5.6).

Run with::

    python examples/random_walk_pagerank.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import (
    build_state_chain,
    evaluate_forever_exact,
    evaluate_forever_mcmc,
    mixing_time,
    pagerank_query,
    random_walk_query,
)
from repro.baselines import pagerank
from repro.workloads import WeightedGraph

#: A little web graph: hub pages, a popular sink-ish page, a loner.
WEB = WeightedGraph(
    nodes=("home", "docs", "blog", "about", "legal"),
    edges=(
        ("home", "docs", 3),
        ("home", "blog", 2),
        ("home", "about", 1),
        ("docs", "home", 1),
        ("docs", "blog", 1),
        ("blog", "home", 2),
        ("blog", "docs", 2),
        ("about", "legal", 1),
        ("legal", "home", 1),
    ),
)

ALPHA = Fraction(3, 20)  # the classic 0.15 jump probability


def plain_walk() -> None:
    print("Plain random walk (stationary long-run probabilities):")
    for page in WEB.nodes:
        query, db = random_walk_query(WEB, "home", page)
        result = evaluate_forever_exact(query, db)
        print(f"   {page:<6} {float(result.probability):.4f}  ({result.probability})")

    query, db = random_walk_query(WEB, "home", "docs")
    chain = build_state_chain(query.kernel, db)
    t_mix = mixing_time(chain, epsilon=0.1)
    print(f"   induced database-state chain: {chain.size} states, t(0.1) = {t_mix}")

    estimate = evaluate_forever_mcmc(query, db, epsilon=0.1, delta=0.1, rng=42)
    print(
        f"   MCMC check for 'docs': {estimate.estimate:.4f} "
        f"(burn-in {estimate.details['burn_in']}, {estimate.samples} samples)\n"
    )


def pagerank_walk() -> None:
    print(f"PageRank walk (α = {float(ALPHA)}):")
    baseline = pagerank(WEB, float(ALPHA))
    print(f"   {'page':<6} {'query':>8} {'power-iter':>11}")
    for page in WEB.nodes:
        query, db = pagerank_query(WEB, ALPHA, "home", page)
        result = evaluate_forever_exact(query, db)
        print(
            f"   {page:<6} {float(result.probability):>8.4f} {baseline[page]:>11.4f}"
        )
    ranking = sorted(baseline, key=baseline.get, reverse=True)
    print(f"   ranking: {' > '.join(ranking)}")


if __name__ == "__main__":
    plain_walk()
    pagerank_walk()
